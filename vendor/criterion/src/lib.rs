//! Offline stand-in for the crates.io
//! [`criterion`](https://crates.io/crates/criterion) crate (0.5 API
//! surface), vendored because this workspace must build without network
//! access.
//!
//! It provides the subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Results are printed as `bench: <name> ... <mean time>` lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A benchmark identifier: `group/function/parameter`-style label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark id by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Convert to a concrete [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Top-level benchmark driver (the stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a stand-alone benchmark function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().label, DEFAULT_SAMPLES, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), samples: DEFAULT_SAMPLES }
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.samples, f);
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (a no-op in this stand-in; consumes the group to
    /// mirror criterion's API).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples, mean: Duration::ZERO };
    f(&mut bencher);
    println!("bench: {label:<60} {:>12.3?} (mean of {samples} samples)", bencher.mean);
}

/// Collect benchmark functions into a runnable group function (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate the bench `main` that runs each group (stand-in for
/// `criterion::criterion_main!`). Ignores the `--bench`/filter arguments
/// cargo passes to `harness = false` targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_ids_compose() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| {
            b.iter(|| black_box(1 + 1));
        });
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("f", 3), |b| {
            b.iter(|| black_box(2 * 2));
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
            b.iter(|| black_box(n + 1));
        });
        group.finish();
    }

    #[test]
    fn macros_expand() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("a", |b| {
                b.iter(|| black_box(0));
            });
        }
        criterion_group!(benches, bench_a);
        benches();
    }
}
