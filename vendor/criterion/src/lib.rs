//! Offline stand-in for the crates.io
//! [`criterion`](https://crates.io/crates/criterion) crate (0.5 API
//! surface), vendored because this workspace must build without network
//! access.
//!
//! It provides the subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Results are printed as `bench: <name> ... <mean time>` lines.
//!
//! # Named baselines
//!
//! Real criterion's `--save-baseline` / `--baseline` flags are emulated
//! through environment variables (cargo's `harness = false` bench targets
//! receive unpredictable CLI args, so the environment is the reliable
//! channel):
//!
//! * `DR_BENCH_SAVE_BASELINE=<path>` — after the run, append every mean to
//!   `<path>` as tab-separated `label<TAB>nanoseconds` lines. Appending
//!   (with last-occurrence-wins parsing) keeps a multi-target
//!   `cargo bench` run from overwriting one bench binary's means with
//!   another's; delete the file first for a clean rewrite.
//! * `DR_BENCH_BASELINE=<path>` — after the run, load `<path>` and print a
//!   mean-ratio comparison table (current mean ÷ baseline mean) for every
//!   benchmark present in both.
//! * `DR_BENCH_FAIL_RATIO=<float>` — with `DR_BENCH_BASELINE`, exit with a
//!   non-zero status when any ratio exceeds the threshold (CI regression
//!   gate; e.g. `5` fails on a >5x slowdown). Benchmarks missing on either
//!   side (renamed label, stale baseline) also fail the gate — a silently
//!   shrinking comparison would otherwise rot it.
//! * `DR_BENCH_ONLY=<prefix>[,<prefix>...]` — run only the benchmarks whose
//!   label starts with one of the given prefixes (e.g. a group name), and
//!   restrict the baseline comparison to the same subset. This is how CI
//!   gates a specific group at a tighter ratio than the blanket run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Means recorded during this process run, in execution order.
static RESULTS: Mutex<Vec<(String, Duration)>> = Mutex::new(Vec::new());

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A benchmark identifier: `group/function/parameter`-style label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark id by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Convert to a concrete [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Top-level benchmark driver (the stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a stand-alone benchmark function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().label, DEFAULT_SAMPLES, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), samples: DEFAULT_SAMPLES }
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.samples, f);
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (a no-op in this stand-in; consumes the group to
    /// mirror criterion's API).
    pub fn finish(self) {}
}

/// True when `label` passes the `DR_BENCH_ONLY` filter (comma-separated
/// label prefixes; unset or empty = everything runs).
fn label_selected(label: &str) -> bool {
    match std::env::var("DR_BENCH_ONLY") {
        Ok(filter) if !filter.trim().is_empty() => {
            filter.split(',').any(|prefix| label.starts_with(prefix.trim()))
        }
        _ => true,
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    if !label_selected(label) {
        return;
    }
    let mut bencher = Bencher { samples, mean: Duration::ZERO };
    f(&mut bencher);
    println!("bench: {label:<60} {:>12.3?} (mean of {samples} samples)", bencher.mean);
    RESULTS.lock().expect("results lock").push((label.to_string(), bencher.mean));
}

/// Parse a `label<TAB>nanoseconds` baseline file. A label appearing more
/// than once keeps its *last* occurrence, so append-mode refreshes
/// supersede older entries.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        let Some((label, nanos)) = line.split_once('\t') else { continue };
        let Ok(nanos) = nanos.trim().parse::<f64>() else { continue };
        match out.iter_mut().find(|(l, _)| l == label) {
            Some(entry) => entry.1 = nanos,
            None => out.push((label.to_string(), nanos)),
        }
    }
    out
}

/// Post-run baseline handling: save and/or compare the recorded means
/// according to the `DR_BENCH_*` environment variables (see the crate
/// docs). Called by [`criterion_main!`]; with `DR_BENCH_FAIL_RATIO` set, a
/// regression beyond the threshold — or a benchmark missing from either
/// side of the comparison — terminates the process with a non-zero status.
pub fn finish_run() {
    use std::io::Write;

    let results = RESULTS.lock().expect("results lock");

    if let Ok(path) = std::env::var("DR_BENCH_SAVE_BASELINE") {
        let mut out = String::new();
        for (label, mean) in results.iter() {
            out.push_str(&format!("{label}\t{}\n", mean.as_nanos()));
        }
        // Append: a multi-target `cargo bench` run invokes one process per
        // bench binary, and each must not clobber the previous one's means.
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(out.as_bytes()));
        match written {
            Ok(()) => println!("baseline: saved {} means to {path}", results.len()),
            Err(e) => {
                eprintln!("baseline: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let Ok(path) = std::env::var("DR_BENCH_BASELINE") else { return };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("baseline: failed to read {path}: {e}");
            std::process::exit(1);
        }
    };
    // A DR_BENCH_ONLY run only produced the selected labels; compare
    // against the same subset of the baseline so the rest of the file does
    // not read as "not run" failures.
    let baseline: Vec<(String, f64)> =
        parse_baseline(&text).into_iter().filter(|(l, _)| label_selected(l)).collect();
    let fail_ratio: Option<f64> = std::env::var("DR_BENCH_FAIL_RATIO")
        .ok()
        .map(|s| s.parse().expect("DR_BENCH_FAIL_RATIO must be a number"));

    println!("\nbaseline comparison vs {path} (ratio = current / baseline):");
    let mut regressions = Vec::new();
    let mut unmatched = Vec::new();
    for (label, mean) in results.iter() {
        let Some((_, base_nanos)) = baseline.iter().find(|(l, _)| l == label) else {
            println!("  {label:<60} {:>12.3?}  (no baseline entry)", mean);
            unmatched.push(label.clone());
            continue;
        };
        let ratio = mean.as_nanos() as f64 / base_nanos.max(1.0);
        let flag = match fail_ratio {
            Some(limit) if ratio > limit => {
                regressions.push((label.clone(), ratio));
                "  REGRESSION"
            }
            _ => "",
        };
        println!(
            "  {label:<60} {:>12.3?}  {ratio:>7.2}x vs {:.3?}{flag}",
            mean,
            Duration::from_nanos(*base_nanos as u64)
        );
    }
    // Baseline entries no current benchmark produced (renamed or deleted
    // benches) shrink the comparison without failing it; surface them.
    for (label, _) in &baseline {
        if !results.iter().any(|(l, _)| l == label) {
            println!("  {label:<60}    (not run)  (baseline entry has no current result)");
            unmatched.push(label.clone());
        }
    }
    if let Some(limit) = fail_ratio {
        if regressions.is_empty() && unmatched.is_empty() {
            println!("baseline: all ratios within the {limit}x gate");
        } else {
            if !regressions.is_empty() {
                eprintln!(
                    "baseline: {} benchmark(s) regressed beyond {limit}x: {}",
                    regressions.len(),
                    regressions
                        .iter()
                        .map(|(l, r)| format!("{l} ({r:.2}x)"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            if !unmatched.is_empty() {
                eprintln!(
                    "baseline: {} label(s) missing on one side of the comparison \
                     (stale baseline or renamed bench — refresh {path}): {}",
                    unmatched.len(),
                    unmatched.join(", ")
                );
            }
            std::process::exit(2);
        }
    }
}

/// Collect benchmark functions into a runnable group function (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate the bench `main` that runs each group (stand-in for
/// `criterion::criterion_main!`). Ignores the `--bench`/filter arguments
/// cargo passes to `harness = false` targets. After all groups finish, the
/// `DR_BENCH_*` baseline handling of [`finish_run`] runs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finish_run();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_ids_compose() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| {
            b.iter(|| black_box(1 + 1));
        });
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("f", 3), |b| {
            b.iter(|| black_box(2 * 2));
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
            b.iter(|| black_box(n + 1));
        });
        group.finish();
    }

    #[test]
    fn baseline_files_parse() {
        let parsed = parse_baseline("a/b\t1200\nmalformed line\nc\t3.5\n");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ("a/b".to_string(), 1200.0));
        assert_eq!(parsed[1], ("c".to_string(), 3.5));
        assert!(parse_baseline("").is_empty());
        // Append-mode refreshes: the last occurrence of a label wins.
        let appended = parse_baseline("a\t100\nb\t200\na\t150\n");
        assert_eq!(appended, vec![("a".to_string(), 150.0), ("b".to_string(), 200.0)]);
    }

    #[test]
    fn results_are_recorded_for_baselines() {
        let mut c = Criterion::default();
        c.bench_function("recorded-bench", |b| {
            b.iter(|| black_box(1 + 1));
        });
        let results = RESULTS.lock().expect("results lock");
        assert!(results.iter().any(|(label, _)| label == "recorded-bench"));
    }

    #[test]
    fn macros_expand() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("a", |b| {
                b.iter(|| black_box(0));
            });
        }
        criterion_group!(benches, bench_a);
        benches();
    }
}
