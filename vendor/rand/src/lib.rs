//! Offline stand-in for the crates.io [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface), vendored because this workspace must build
//! without network access.
//!
//! Only the subset used by the workspace is provided: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`, and [`seq::SliceRandom`]'s `choose`
//! and `shuffle`. The generator is xoshiro256++ (seeded through SplitMix64),
//! so streams are deterministic for a given seed — which is all the
//! workloads need — but the exact values differ from upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be deterministically seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core + extension random-number-generator interface (the subset of
/// `rand::Rng` this workspace uses).
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value from the "standard" distribution of `T` (uniform over
    /// the unit interval for floats, uniform over all values for integers).
    fn gen<T>(&mut self) -> T
    where
        T: StandardSample,
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that supports uniform sampling of `T`.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Sampling from the "standard" distribution (the stand-in for
/// `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draw one standard-distributed value.
    fn standard_sample<R: Rng>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Samplable distributions (the stand-in for `rand::distributions`, plus
/// the `Normal` sampler that upstream ships in `rand_distr`).
///
/// Only what the workspace's jitter timelines need: the
/// [`Distribution`](distributions::Distribution) trait and a Box–Muller
/// normal (upstream ships `Normal` in `rand_distr`; uniform draws go
/// through `Rng::gen_range` as everywhere else in the workspace).
pub mod distributions {
    use super::{unit_f64, Rng};

    /// Types that can sample values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// Normal (Gaussian) distribution, sampled via Box–Muller.
    ///
    /// Each sample consumes exactly two `u64`s from the generator, so
    /// seeded streams stay reproducible regardless of which half of the
    /// Box–Muller pair would be cheaper to cache.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Normal {
        mean: f64,
        std_dev: f64,
    }

    impl Normal {
        /// A normal distribution with the given mean and standard
        /// deviation. Panics when `std_dev` is negative or non-finite.
        pub fn new(mean: f64, std_dev: f64) -> Normal {
            assert!(
                std_dev.is_finite() && std_dev >= 0.0,
                "Normal::new requires a finite non-negative std_dev, got {std_dev}"
            );
            Normal { mean, std_dev }
        }

        /// The mean.
        pub fn mean(&self) -> f64 {
            self.mean
        }

        /// The standard deviation.
        pub fn std_dev(&self) -> f64 {
            self.std_dev
        }
    }

    impl Distribution<f64> for Normal {
        fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
            // Box–Muller; clamp u1 away from 0 so ln() stays finite.
            let u1 = unit_f64(rng.next_u64()).max(f64::MIN_POSITIVE);
            let u2 = unit_f64(rng.next_u64());
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            self.mean + self.std_dev * z
        }
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    /// Deterministic for a given seed; not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread the seed over the full 256-bit state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices (the stand-in for
    /// `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type of the sequence.
        type Item;

        /// Uniformly pick one element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distributions_sample_sanely() {
        use super::distributions::{Distribution, Normal};
        let mut rng = StdRng::seed_from_u64(11);
        let normal = Normal::new(100.0, 10.0);
        let samples: Vec<f64> = (0..4000).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 10.0).abs() < 1.0, "std dev {}", var.sqrt());
        assert_eq!(normal.mean(), 100.0);
        assert_eq!(normal.std_dev(), 10.0);
        // Deterministic for a seed.
        let mut a = StdRng::seed_from_u64(12);
        let mut b = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            assert_eq!(normal.sample(&mut a), normal.sample(&mut b));
        }
        // Zero-sigma degenerates to the mean.
        assert_eq!(Normal::new(3.0, 0.0).sample(&mut a), 3.0);
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..16).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
