//! Offline stand-in for the crates.io
//! [`proptest`](https://crates.io/crates/proptest) crate (1.x API surface),
//! vendored because this workspace must build without network access.
//!
//! It implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / `&str`-regex /
//! collection strategies, the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), and the `prop_assert*` macros. Unlike real
//! proptest there is no shrinking: a failing case panics with the generated
//! inputs left to the assertion message, and case generation is
//! deterministic per test (seeded from the test's name) so failures
//! reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Per-test configuration (the stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// `&str` strategies generate strings matching the pattern, as in real
/// proptest's regex string strategies. Only the subset of regex syntax the
/// workspace uses is supported: literal characters, `[a-z0-9_]`-style
/// classes, and the `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close =
                    chars[i..].iter().position(|&c| c == ']').unwrap_or_else(|| {
                        panic!("unclosed character class in pattern {pattern:?}")
                    }) + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "invalid class range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in pattern {pattern:?}");
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                i += 1;
                vec![c]
            }
        };
        assert!(!alphabet.is_empty(), "empty character class in pattern {pattern:?}");

        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("quantifier lower bound"),
                    n.trim().parse::<usize>().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("exact quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && matches!(chars[i], '?' | '*' | '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };

        let count = if lo == hi { lo } else { rng.gen_range(lo..hi + 1) };
        for _ in 0..count {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

/// Collection strategies (the stand-in for `proptest::collection`).
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size` (half-open, as in `0..8`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range for vec strategy");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derive a deterministic per-test seed from the test's name so each
/// property explores a distinct but reproducible stream of cases.
pub fn seed_for_test(name: &str) -> u64 {
    // FNV-1a.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Construct the RNG used by one property test.
pub fn rng_for_test(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for_test(name))
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Module-style access to strategy constructors (`prop::collection::vec`),
    /// mirroring real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a boolean property inside [`proptest!`] (panics on failure, since
/// this stand-in has no shrinking machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => {
        assert!($($tokens)*)
    };
}

/// Assert equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => {
        assert_eq!($($tokens)*)
    };
}

/// Assert inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => {
        assert_ne!($($tokens)*)
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&$strategy, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pairs() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 10u32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, f in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(p in pairs().prop_map(|(a, b)| (b, a))) {
            prop_assert!(p.0 >= 10 && p.1 < 10);
            prop_assert_ne!(p.0, p.1);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn string_pattern_subset(s in "[a-z][a-z0-9]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7);
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
            prop_assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn per_test_seeds_differ() {
        assert_ne!(crate::seed_for_test("a"), crate::seed_for_test("b"));
    }
}
