//! Deterministic fault injection for the simulated wire.
//!
//! The base simulator delivers every message exactly once, in FIFO order
//! per link — an idealization the paper's soft-state arguments (§8) never
//! rely on. A [`FaultPlan`] makes the wire adversarial in a reproducible
//! way: per-link probabilistic drop, duplication, reordering (an extra
//! random delay applied to individual messages), and timed burst outages,
//! all driven by one seeded RNG so a given `(plan, workload)` pair replays
//! identically.
//!
//! Faults are applied at *delivery* time by the [`Simulator`]: a message
//! still pays its transmission and propagation delay (and is counted in
//! [`Metrics`](crate::Metrics) as sent), then the plan decides whether the
//! copy that arrives is dropped, delayed further, or accompanied by a
//! duplicate. Self-deliveries (timers, injections, `send_self`) are never
//! faulted — only real wire traffic is.
//!
//! A simulator with **no** plan installed never consults an RNG and
//! schedules exactly the events it always did, so fault-free runs are
//! byte-identical to runs of older builds.
//!
//! [`Simulator`]: crate::Simulator

use crate::time::{SimDuration, SimTime};
use dr_types::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The fault behavior of one directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Probability that an arriving message is silently discarded.
    pub drop: f64,
    /// Probability that an arriving message is delivered twice (the
    /// duplicate arrives a random extra delay later).
    pub duplicate: f64,
    /// Probability that an arriving message is held back by a random extra
    /// delay, letting later traffic on the link overtake it.
    pub reorder: f64,
    /// Maximum extra delay for reordered messages and duplicates; the
    /// actual delay is sampled uniformly from `(0, max_extra_delay]`.
    pub max_extra_delay: SimDuration,
    /// Timed outage windows `[start, end)` during which every message on
    /// the link is dropped.
    pub bursts: Vec<(SimTime, SimTime)>,
}

impl LinkFaults {
    /// A fault-free link (all probabilities zero, no outages).
    pub fn none() -> LinkFaults {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            max_extra_delay: SimDuration::from_millis(50),
            bursts: Vec::new(),
        }
    }

    /// Set the drop probability.
    pub fn with_drop(mut self, p: f64) -> LinkFaults {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range: {p}");
        self.drop = p;
        self
    }

    /// Set the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> LinkFaults {
        assert!((0.0..=1.0).contains(&p), "duplicate probability out of range: {p}");
        self.duplicate = p;
        self
    }

    /// Set the reorder probability and the maximum extra delay applied to
    /// reordered messages (also used for duplicate offsets).
    pub fn with_reorder(mut self, p: f64, max_extra_delay: SimDuration) -> LinkFaults {
        assert!((0.0..=1.0).contains(&p), "reorder probability out of range: {p}");
        assert!(max_extra_delay > SimDuration::ZERO, "reorder delay must be positive");
        self.reorder = p;
        self.max_extra_delay = max_extra_delay;
        self
    }

    /// Add a burst outage window `[start, end)`.
    pub fn with_burst(mut self, start: SimTime, end: SimTime) -> LinkFaults {
        assert!(start < end, "burst window must be non-empty");
        self.bursts.push((start, end));
        self
    }

    /// True when a burst outage covers `at`.
    pub fn burst_active(&self, at: SimTime) -> bool {
        self.bursts.iter().any(|(s, e)| at >= *s && at < *e)
    }

    /// True when this link can never perturb a message.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0 && self.bursts.is_empty()
    }
}

impl Default for LinkFaults {
    fn default() -> LinkFaults {
        LinkFaults::none()
    }
}

/// A seeded, deterministic description of how the wire misbehaves.
///
/// The plan holds a default [`LinkFaults`] applied to every directed link
/// plus per-link overrides. Install it with
/// [`Simulator::set_fault_plan`](crate::Simulator::set_fault_plan).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    default: LinkFaults,
    per_link: HashMap<(NodeId, NodeId), LinkFaults>,
}

impl FaultPlan {
    /// A plan with the given RNG seed and no faults anywhere.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, default: LinkFaults::none(), per_link: HashMap::new() }
    }

    /// Apply `faults` to every directed link (per-link overrides still win).
    pub fn uniform(mut self, faults: LinkFaults) -> FaultPlan {
        self.default = faults;
        self
    }

    /// Override the faults of the directed link `from → to`.
    pub fn link(mut self, from: NodeId, to: NodeId, faults: LinkFaults) -> FaultPlan {
        self.per_link.insert((from, to), faults);
        self
    }

    /// Override the faults of both directions between `a` and `b`.
    pub fn link_bidirectional(self, a: NodeId, b: NodeId, faults: LinkFaults) -> FaultPlan {
        self.link(a, b, faults.clone()).link(b, a, faults)
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults governing the directed link `from → to`.
    pub fn faults_for(&self, from: NodeId, to: NodeId) -> &LinkFaults {
        self.per_link.get(&(from, to)).unwrap_or(&self.default)
    }

    /// True when no link anywhere can perturb a message (the plan is
    /// behaviorally inert).
    pub fn is_inert(&self) -> bool {
        self.default.is_none() && self.per_link.values().all(LinkFaults::is_none)
    }
}

/// What the fault layer decided to do with one arriving message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Silently discard.
    Drop,
    /// Hold the message back; deliver after the extra delay.
    Delay(SimDuration),
    /// Deliver now and also deliver a duplicate after the extra delay.
    Duplicate(SimDuration),
}

/// The runtime state of an installed plan: the plan plus its RNG.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultState { plan, rng }
    }

    /// Decide the fate of a message arriving on `from → to` at `now`.
    ///
    /// Consults the RNG only for fault classes with non-zero probability,
    /// so an inert plan perturbs neither delivery nor the random stream.
    pub(crate) fn on_arrival(&mut self, from: NodeId, to: NodeId, now: SimTime) -> FaultAction {
        let f = self.plan.faults_for(from, to);
        if f.burst_active(now) {
            return FaultAction::Drop;
        }
        if f.drop > 0.0 && self.rng.gen_bool(f.drop) {
            return FaultAction::Drop;
        }
        if f.reorder > 0.0 && self.rng.gen_bool(f.reorder) {
            return FaultAction::Delay(self.sample_extra(f.max_extra_delay));
        }
        if f.duplicate > 0.0 && self.rng.gen_bool(f.duplicate) {
            return FaultAction::Duplicate(self.sample_extra(f.max_extra_delay));
        }
        FaultAction::Deliver
    }

    fn sample_extra(&mut self, max: SimDuration) -> SimDuration {
        let max_us = max.as_micros().max(1);
        SimDuration::from_micros(self.rng.gen_range(1..max_us + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn defaults_are_inert() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_inert());
        assert!(plan.faults_for(n(0), n(1)).is_none());
        assert_eq!(plan.seed(), 7);
    }

    #[test]
    fn per_link_overrides_win_over_default() {
        let plan = FaultPlan::new(1).uniform(LinkFaults::none().with_drop(0.1)).link(
            n(0),
            n(1),
            LinkFaults::none(),
        );
        assert_eq!(plan.faults_for(n(0), n(1)).drop, 0.0);
        assert_eq!(plan.faults_for(n(1), n(0)).drop, 0.1);
        assert!(!plan.is_inert());
    }

    #[test]
    fn bidirectional_override_covers_both_directions() {
        let plan =
            FaultPlan::new(1).link_bidirectional(n(2), n(3), LinkFaults::none().with_drop(0.5));
        assert_eq!(plan.faults_for(n(2), n(3)).drop, 0.5);
        assert_eq!(plan.faults_for(n(3), n(2)).drop, 0.5);
    }

    #[test]
    fn burst_windows_are_half_open() {
        let f = LinkFaults::none()
            .with_burst(SimTime::from_secs(10), SimTime::from_secs(20))
            .with_burst(SimTime::from_secs(30), SimTime::from_secs(31));
        assert!(!f.burst_active(SimTime::from_secs(9)));
        assert!(f.burst_active(SimTime::from_secs(10)));
        assert!(f.burst_active(SimTime::from_secs(19)));
        assert!(!f.burst_active(SimTime::from_secs(20)));
        assert!(f.burst_active(SimTime::from_secs(30)));
        assert!(!f.is_none());
    }

    #[test]
    fn inert_state_always_delivers_without_consuming_rng() {
        let mut state = FaultState::new(FaultPlan::new(42));
        let before = format!("{:?}", state.rng);
        for i in 0..50 {
            assert_eq!(state.on_arrival(n(0), n(1), SimTime::from_millis(i)), FaultAction::Deliver);
        }
        assert_eq!(format!("{:?}", state.rng), before, "inert plan must not touch the RNG");
    }

    #[test]
    fn full_drop_always_drops() {
        let plan = FaultPlan::new(3).uniform(LinkFaults::none().with_drop(1.0));
        let mut state = FaultState::new(plan);
        for _ in 0..20 {
            assert_eq!(state.on_arrival(n(0), n(1), SimTime::ZERO), FaultAction::Drop);
        }
    }

    #[test]
    fn decisions_replay_for_a_seed() {
        let plan = || {
            FaultPlan::new(9).uniform(
                LinkFaults::none()
                    .with_drop(0.3)
                    .with_duplicate(0.3)
                    .with_reorder(0.3, SimDuration::from_millis(20)),
            )
        };
        let mut a = FaultState::new(plan());
        let mut b = FaultState::new(plan());
        for i in 0..200 {
            let t = SimTime::from_millis(i);
            assert_eq!(a.on_arrival(n(0), n(1), t), b.on_arrival(n(0), n(1), t));
        }
    }

    #[test]
    fn extra_delays_stay_within_bounds() {
        let plan = FaultPlan::new(5)
            .uniform(LinkFaults::none().with_reorder(1.0, SimDuration::from_millis(10)));
        let mut state = FaultState::new(plan);
        for _ in 0..100 {
            match state.on_arrival(n(0), n(1), SimTime::ZERO) {
                FaultAction::Delay(d) => {
                    assert!(d > SimDuration::ZERO && d <= SimDuration::from_millis(10), "{d:?}");
                }
                other => panic!("expected Delay, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "drop probability out of range")]
    fn out_of_range_probability_panics() {
        let _ = LinkFaults::none().with_drop(1.5);
    }
}
