//! Network topology: nodes, links and their parameters.
//!
//! A [`Topology`] is a directed graph. Undirected networks (every topology in
//! the paper) are represented by inserting both directions with
//! [`Topology::add_bidirectional`]. Each link carries a propagation latency,
//! a bandwidth, and an application-level cost (the metric routing queries
//! optimise — by default the latency in milliseconds).

use crate::time::SimDuration;
use dr_types::{Cost, NodeId};
use std::collections::{BTreeMap, BinaryHeap};

/// Parameters of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes per second (used for transmission delay and the
    /// FIFO queueing model).
    pub bandwidth_bps: f64,
    /// Application-level cost of the link (the routing metric).
    pub cost: Cost,
}

impl LinkParams {
    /// A link with the given latency in milliseconds, 10 Mbps bandwidth (the
    /// paper's per-node capacity) and cost equal to the latency.
    pub fn with_latency_ms(ms: f64) -> LinkParams {
        LinkParams {
            latency: SimDuration::from_millis_f64(ms),
            bandwidth_bps: 10_000_000.0 / 8.0, // 10 Mbps in bytes/s
            cost: Cost::new(ms),
        }
    }

    /// Same link with a different routing cost.
    pub fn with_cost(mut self, cost: Cost) -> LinkParams {
        self.cost = cost;
        self
    }

    /// Same link with a different bandwidth (bytes per second).
    pub fn with_bandwidth_bps(mut self, bps: f64) -> LinkParams {
        self.bandwidth_bps = bps;
        self
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams::with_latency_ms(1.0)
    }
}

/// A directed graph with per-link parameters.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    num_nodes: usize,
    /// adjacency: source → (destination → params)
    links: BTreeMap<NodeId, BTreeMap<NodeId, LinkParams>>,
}

impl Topology {
    /// An empty topology with `num_nodes` nodes and no links.
    pub fn new(num_nodes: usize) -> Topology {
        Topology { num_nodes, links: BTreeMap::new() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes as u32).map(NodeId::new)
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.values().map(|m| m.len()).sum()
    }

    /// Add (or replace) a directed link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, params: LinkParams) {
        if from.index() >= self.num_nodes || to.index() >= self.num_nodes {
            self.num_nodes = self.num_nodes.max(from.index().max(to.index()) + 1);
        }
        self.links.entry(from).or_default().insert(to, params);
    }

    /// Add both directions of an undirected link.
    pub fn add_bidirectional(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.add_link(a, b, params);
        self.add_link(b, a, params);
    }

    /// The parameters of the directed link `from → to`, if present.
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<&LinkParams> {
        self.links.get(&from).and_then(|m| m.get(&to))
    }

    /// Mutable access to a directed link's parameters.
    pub fn link_mut(&mut self, from: NodeId, to: NodeId) -> Option<&mut LinkParams> {
        self.links.get_mut(&from).and_then(|m| m.get_mut(&to))
    }

    /// True when the directed link exists.
    pub fn has_link(&self, from: NodeId, to: NodeId) -> bool {
        self.link(from, to).is_some()
    }

    /// The out-neighbors of a node with link parameters.
    pub fn neighbors(&self, node: NodeId) -> Vec<(NodeId, LinkParams)> {
        self.links.get(&node).map(|m| m.iter().map(|(d, p)| (*d, *p)).collect()).unwrap_or_default()
    }

    /// The out-degree of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.links.get(&node).map(|m| m.len()).unwrap_or(0)
    }

    /// Average out-degree across all nodes.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        self.num_links() as f64 / self.num_nodes as f64
    }

    /// Single-source shortest-path latencies (Dijkstra over link latency in
    /// milliseconds). Unreachable nodes are absent from the result.
    pub fn latency_distances(&self, source: NodeId) -> BTreeMap<NodeId, f64> {
        self.dijkstra(source, |p| p.latency.as_millis_f64())
    }

    /// Single-source shortest-path costs (Dijkstra over the `cost` metric).
    pub fn cost_distances(&self, source: NodeId) -> BTreeMap<NodeId, f64> {
        self.dijkstra(source, |p| p.cost.value())
    }

    fn dijkstra(
        &self,
        source: NodeId,
        weight: impl Fn(&LinkParams) -> f64,
    ) -> BTreeMap<NodeId, f64> {
        use std::cmp::Reverse;
        #[derive(PartialEq)]
        struct Entry(f64, NodeId);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal)
            }
        }

        let mut dist: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(source, 0.0);
        heap.push(Reverse(Entry(0.0, source)));
        while let Some(Reverse(Entry(d, node))) = heap.pop() {
            if dist.get(&node).map(|&cur| d > cur).unwrap_or(false) {
                continue;
            }
            for (next, params) in self.neighbors(node) {
                let w = weight(&params);
                if !w.is_finite() {
                    continue;
                }
                let nd = d + w;
                if dist.get(&next).map(|&cur| nd < cur).unwrap_or(true) {
                    dist.insert(next, nd);
                    heap.push(Reverse(Entry(nd, next)));
                }
            }
        }
        dist
    }

    /// The network diameter measured as the largest finite shortest-path
    /// latency between any pair of nodes, in milliseconds (the metric of the
    /// paper's Figure 5).
    pub fn diameter_latency_ms(&self) -> f64 {
        let mut max = 0.0f64;
        for src in self.nodes() {
            for (_, d) in self.latency_distances(src) {
                if d > max {
                    max = d;
                }
            }
        }
        max
    }

    /// True when every node can reach every other node.
    pub fn is_strongly_connected(&self) -> bool {
        if self.num_nodes == 0 {
            return true;
        }
        for src in self.nodes() {
            if self.latency_distances(src).len() != self.num_nodes {
                return false;
            }
        }
        true
    }

    /// Average link latency in milliseconds across all directed links (the
    /// paper's AvgLinkRTT is twice this for symmetric links when interpreted
    /// as one-way latency; the workloads crate stores RTT/2 as latency so
    /// this doubles back to RTT).
    pub fn average_link_latency_ms(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for m in self.links.values() {
            for p in m.values() {
                total += p.latency.as_millis_f64();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Iterate over every directed link.
    pub fn all_links(&self) -> impl Iterator<Item = (NodeId, NodeId, &LinkParams)> {
        self.links.iter().flat_map(|(s, m)| m.iter().map(move |(d, p)| (*s, *d, p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn line_topology(k: usize, latency_ms: f64) -> Topology {
        let mut t = Topology::new(k);
        for i in 0..k - 1 {
            t.add_bidirectional(
                n(i as u32),
                n(i as u32 + 1),
                LinkParams::with_latency_ms(latency_ms),
            );
        }
        t
    }

    #[test]
    fn add_and_query_links() {
        let mut t = Topology::new(3);
        t.add_link(n(0), n(1), LinkParams::with_latency_ms(5.0));
        assert!(t.has_link(n(0), n(1)));
        assert!(!t.has_link(n(1), n(0)));
        t.add_bidirectional(n(1), n(2), LinkParams::with_latency_ms(2.0));
        assert!(t.has_link(n(2), n(1)));
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.degree(n(1)), 1);
        assert_eq!(t.neighbors(n(1)).len(), 1);
        assert_eq!(t.neighbors(n(9)).len(), 0);
        assert!((t.average_degree() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adding_out_of_range_link_grows_node_count() {
        let mut t = Topology::new(2);
        t.add_link(n(0), n(5), LinkParams::default());
        assert_eq!(t.num_nodes(), 6);
    }

    #[test]
    fn link_params_builders() {
        let p = LinkParams::with_latency_ms(10.0).with_cost(Cost::new(3.0)).with_bandwidth_bps(1e6);
        assert_eq!(p.latency, SimDuration::from_millis(10));
        assert_eq!(p.cost, Cost::new(3.0));
        assert_eq!(p.bandwidth_bps, 1e6);
    }

    #[test]
    fn dijkstra_latency_distances() {
        let t = line_topology(4, 10.0);
        let d = t.latency_distances(n(0));
        assert_eq!(d[&n(0)], 0.0);
        assert_eq!(d[&n(1)], 10.0);
        assert_eq!(d[&n(3)], 30.0);
        // diameter of the line = 30 ms
        assert_eq!(t.diameter_latency_ms(), 30.0);
    }

    #[test]
    fn dijkstra_prefers_cheaper_multi_hop_route() {
        let mut t = Topology::new(3);
        t.add_bidirectional(n(0), n(2), LinkParams::with_latency_ms(50.0));
        t.add_bidirectional(n(0), n(1), LinkParams::with_latency_ms(10.0));
        t.add_bidirectional(n(1), n(2), LinkParams::with_latency_ms(10.0));
        let d = t.latency_distances(n(0));
        assert_eq!(d[&n(2)], 20.0);
    }

    #[test]
    fn cost_distances_use_cost_metric() {
        let mut t = Topology::new(3);
        // low latency but high cost direct link
        t.add_bidirectional(
            n(0),
            n(2),
            LinkParams::with_latency_ms(1.0).with_cost(Cost::new(100.0)),
        );
        t.add_bidirectional(n(0), n(1), LinkParams::with_latency_ms(10.0));
        t.add_bidirectional(n(1), n(2), LinkParams::with_latency_ms(10.0));
        let d = t.cost_distances(n(0));
        assert_eq!(d[&n(2)], 20.0);
        // infinite-cost links are skipped
        let mut t2 = Topology::new(2);
        t2.add_link(n(0), n(1), LinkParams::with_latency_ms(1.0).with_cost(Cost::INFINITY));
        assert!(!t2.cost_distances(n(0)).contains_key(&n(1)));
    }

    #[test]
    fn connectivity_detection() {
        let t = line_topology(5, 1.0);
        assert!(t.is_strongly_connected());
        let mut t2 = Topology::new(4);
        t2.add_bidirectional(n(0), n(1), LinkParams::default());
        t2.add_bidirectional(n(2), n(3), LinkParams::default());
        assert!(!t2.is_strongly_connected());
        assert!(Topology::new(0).is_strongly_connected());
    }

    #[test]
    fn average_link_latency() {
        let mut t = Topology::new(3);
        t.add_link(n(0), n(1), LinkParams::with_latency_ms(10.0));
        t.add_link(n(1), n(2), LinkParams::with_latency_ms(20.0));
        assert!((t.average_link_latency_ms() - 15.0).abs() < 1e-9);
        assert_eq!(Topology::new(2).average_link_latency_ms(), 0.0);
    }

    #[test]
    fn all_links_iterates_every_direction() {
        let t = line_topology(3, 1.0);
        assert_eq!(t.all_links().count(), 4);
    }

    #[test]
    fn link_mut_updates_in_place() {
        let mut t = line_topology(2, 1.0);
        t.link_mut(n(0), n(1)).unwrap().cost = Cost::new(99.0);
        assert_eq!(t.link(n(0), n(1)).unwrap().cost, Cost::new(99.0));
        // the reverse direction is a separate link
        assert_eq!(t.link(n(1), n(0)).unwrap().cost, Cost::new(1.0));
        assert!(t.link_mut(n(0), n(9)).is_none());
    }
}
