//! # dr-netsim
//!
//! A deterministic discrete-event network simulator: the substrate on which
//! both the declarative query processors (`dr-core`) and the hand-coded
//! baseline protocols (`dr-baselines`) run.
//!
//! The paper evaluates its system in two environments: an event-driven
//! simulator "that simulates bandwidth and latency bottlenecks" over GT-ITM
//! transit-stub topologies (§9.1), and a PlanetLab deployment (§9.2). This
//! crate reproduces the first directly and provides the substitution for the
//! second (an emulated overlay whose link RTTs fluctuate and whose nodes
//! churn — see `dr-workloads`).
//!
//! Key pieces:
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time.
//! * [`Topology`] — the directed graph of nodes and links with per-link
//!   latency, bandwidth and application-level cost.
//! * [`Simulator`] — the event loop: message delivery with latency +
//!   transmission delay + FIFO link queuing, timers, link-metric updates,
//!   node failure and rejoin.
//! * [`NodeApp`] — the trait a per-node protocol implementation provides.
//! * [`TimelineEvent`] / [`EventSource`] — declarative world-event
//!   timelines (fail/join, link changes, injections) that schedules from
//!   `dr-workloads` expand into and the scenario layer in `dr-core` runs.
//! * [`Metrics`] — per-node byte/message accounting and time-bucketed
//!   bandwidth series (the paper's "per-node communication overhead").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod metrics;
pub mod sim;
pub mod time;
pub mod timeline;
pub mod topology;

pub use fault::{FaultPlan, LinkFaults};
pub use metrics::Metrics;
pub use sim::{Context, LinkEvent, NodeApp, SimConfig, Simulator};
pub use time::{SimDuration, SimTime};
pub use timeline::{EventSource, TimelineEvent};
pub use topology::{LinkParams, Topology};
