//! Simulated time.
//!
//! All latencies and timestamps in the simulator are integer microseconds,
//! which keeps event ordering exact and the simulation deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Construct from fractional milliseconds (rounded to whole
    /// microseconds; negative inputs clamp to zero).
    pub fn from_millis_f64(ms: f64) -> SimDuration {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds in this duration (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply by an integer factor.
    pub const fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(SimDuration::from_millis(50).as_secs_f64(), 0.05);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(1);
        assert_eq!(t2, SimTime::from_secs(1));
        assert_eq!(
            SimTime::from_millis(15) - SimTime::from_millis(10),
            SimDuration::from_millis(5)
        );
        // saturating subtraction
        assert_eq!(SimTime::from_millis(5) - SimTime::from_millis(10), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(2).times(3), SimDuration::from_millis(6));
        assert_eq!(
            SimDuration::from_millis(2) + SimDuration::from_millis(3),
            SimDuration::from_millis(5)
        );
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(30);
        assert_eq!(late.since(early), SimDuration::from_millis(20));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_micros(2500).to_string(), "2.500ms");
    }
}
