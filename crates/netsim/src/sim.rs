//! The discrete-event simulator core.
//!
//! A [`Simulator`] owns one application instance (a [`NodeApp`]) per network
//! node plus the *world*: simulated clock, topology, per-link FIFO queues,
//! the event queue, liveness flags, and [`Metrics`]. Applications interact
//! with the world exclusively through the [`Context`] passed to their
//! callbacks — sending messages, setting timers, and reading their neighbor
//! table — which keeps them deterministic and easy to test.
//!
//! The model matches the paper's simulator (§9.1): messages experience a
//! per-link propagation latency plus a transmission delay (`size /
//! bandwidth`) and FIFO queueing on each directed link; node failures are
//! detected by neighbors after a configurable detection delay (the paper
//! excludes detection time from its recovery-time metric, and so do we).

use crate::fault::{FaultAction, FaultPlan, FaultState};
use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkParams, Topology};
use dr_types::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Something a node observes about one of its adjacent links (the paper's
/// neighbor-table updates: "link failures, new links, or link metric
/// changes", §2).
#[derive(Debug, Clone, PartialEq)]
pub enum LinkEvent {
    /// The metric / latency of the link to `neighbor` changed.
    MetricChanged {
        /// The other endpoint.
        neighbor: NodeId,
        /// The new link parameters.
        params: LinkParams,
    },
    /// The neighbor failed or the link went down.
    NeighborDown {
        /// The other endpoint.
        neighbor: NodeId,
    },
    /// The neighbor (re)joined.
    NeighborUp {
        /// The other endpoint.
        neighbor: NodeId,
        /// The link parameters after the rejoin.
        params: LinkParams,
    },
}

/// Per-node application logic driven by the simulator.
pub trait NodeApp: Sized {
    /// The message type exchanged between nodes.
    type Message: Clone;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Message>) {}

    /// Called when a node rejoins after a failure. Defaults to `on_start`.
    fn on_join(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.on_start(ctx);
    }

    /// Called when a message from `from` arrives.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Message>,
        from: NodeId,
        msg: Self::Message,
    );

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Message>, _timer: u64) {}

    /// Called when an adjacent link changes (failure, rejoin, metric change).
    fn on_link_event(&mut self, _ctx: &mut Context<'_, Self::Message>, _event: LinkEvent) {}
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// How long after a node fails its neighbors notice (via the routing
    /// infrastructure's periodic pings).
    pub failure_detection_delay: SimDuration,
    /// Bucket width of the bandwidth time series in [`Metrics`].
    pub metrics_bucket: SimDuration,
    /// Hard cap on processed events (guards against runaway protocols).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            failure_detection_delay: SimDuration::from_millis(100),
            metrics_bucket: SimDuration::from_secs(1),
            max_events: u64::MAX,
        }
    }
}

/// The kinds of scheduled events.
#[derive(Debug, Clone)]
enum EventKind<M> {
    /// `faulted` marks copies re-queued by the fault layer (a duplicate or
    /// a delayed original) so faults are applied at most once per arrival.
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: M,
        faulted: bool,
    },
    Timer {
        node: NodeId,
        id: u64,
    },
    LinkNotify {
        node: NodeId,
        event: LinkEvent,
    },
    LinkMetricChange {
        from: NodeId,
        to: NodeId,
        params: LinkParams,
    },
    NodeFail {
        node: NodeId,
    },
    NodeJoin {
        node: NodeId,
    },
    Partition {
        side: Vec<NodeId>,
    },
    Heal,
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The world state shared by all nodes (everything except the applications
/// themselves).
struct World<M> {
    now: SimTime,
    topology: Topology,
    node_up: Vec<bool>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    metrics: Metrics,
    config: SimConfig,
    next_seq: u64,
    next_timer: u64,
    /// Per directed link: when the link becomes free for the next
    /// transmission (FIFO queueing).
    link_busy_until: HashMap<(NodeId, NodeId), SimTime>,
    events_processed: u64,
    /// The installed fault plan plus its RNG, if any. `None` means the wire
    /// is perfect and no RNG is ever consulted.
    faults: Option<FaultState>,
    /// When a partition is active: which side each node is on. Messages
    /// crossing the cut are dropped as fault drops.
    partition: Option<Vec<bool>>,
}

impl<M> World<M> {
    fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
    }
}

/// The per-callback handle a [`NodeApp`] uses to interact with the world.
pub struct Context<'a, M> {
    node: NodeId,
    world: &'a mut World<M>,
}

impl<'a, M: Clone> Context<'a, M> {
    /// The node this callback runs on.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The node's current neighbor table: outgoing links and their
    /// parameters, restricted to live neighbors.
    pub fn neighbors(&self) -> Vec<(NodeId, LinkParams)> {
        self.world
            .topology
            .neighbors(self.node)
            .into_iter()
            .filter(|(n, _)| self.world.node_up.get(n.index()).copied().unwrap_or(false))
            .collect()
    }

    /// The parameters of the link to `neighbor`, if it exists.
    pub fn link_to(&self, neighbor: NodeId) -> Option<LinkParams> {
        self.world.topology.link(self.node, neighbor).copied()
    }

    /// Send `msg` of `bytes` wire size to `neighbor`.
    ///
    /// The message is dropped (and counted as such) when there is no link,
    /// the neighbor is down, or the sender itself is down. Delivery time is
    /// `max(now, link free) + bytes/bandwidth + latency`.
    pub fn send(&mut self, neighbor: NodeId, msg: M, bytes: usize) {
        let now = self.world.now;
        let from = self.node;
        let Some(params) = self.world.topology.link(from, neighbor).copied() else {
            self.world.metrics.record_drop_no_link();
            return;
        };
        let up = |n: NodeId, w: &World<M>| w.node_up.get(n.index()).copied().unwrap_or(false);
        if !up(from, self.world) || !up(neighbor, self.world) {
            self.world.metrics.record_drop_node_down();
            return;
        }
        self.world.metrics.record_send(now, from, bytes);
        let tx = SimDuration::from_millis_f64(bytes as f64 / params.bandwidth_bps * 1000.0);
        let busy =
            self.world.link_busy_until.get(&(from, neighbor)).copied().unwrap_or(SimTime::ZERO);
        let start = if busy > now { busy } else { now };
        let free_at = start + tx;
        self.world.link_busy_until.insert((from, neighbor), free_at);
        let arrival = free_at + params.latency;
        self.world.push(arrival, EventKind::Deliver { to: neighbor, from, msg, faulted: false });
    }

    /// Deliver `msg` to this node itself after `delay` (a local, free event —
    /// no bandwidth is charged). Useful for periodic local processing.
    pub fn send_self(&mut self, msg: M, delay: SimDuration) {
        let time = self.world.now + delay;
        let node = self.node;
        self.world.push(time, EventKind::Deliver { to: node, from: node, msg, faulted: false });
    }

    /// Arm a timer that fires after `delay`; returns its id.
    pub fn set_timer(&mut self, delay: SimDuration) -> u64 {
        let id = self.world.next_timer;
        self.world.next_timer += 1;
        let time = self.world.now + delay;
        let node = self.node;
        self.world.push(time, EventKind::Timer { node, id });
        id
    }
}

/// The discrete-event simulator.
pub struct Simulator<A: NodeApp> {
    apps: Vec<A>,
    world: World<A::Message>,
    started: bool,
}

impl<A: NodeApp> Simulator<A> {
    /// Create a simulator over `topology` with one application per node.
    ///
    /// Panics when `apps.len() != topology.num_nodes()` — that is a harness
    /// bug, not a runtime condition.
    pub fn new(topology: Topology, apps: Vec<A>, config: SimConfig) -> Simulator<A> {
        assert_eq!(
            apps.len(),
            topology.num_nodes(),
            "one application instance per topology node is required"
        );
        let num_nodes = topology.num_nodes();
        Simulator {
            apps,
            world: World {
                now: SimTime::ZERO,
                node_up: vec![true; num_nodes],
                metrics: Metrics::new(num_nodes, config.metrics_bucket),
                queue: BinaryHeap::new(),
                config,
                topology,
                next_seq: 0,
                next_timer: 0,
                link_busy_until: HashMap::new(),
                events_processed: 0,
                faults: None,
                partition: None,
            },
            started: false,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The simulator configuration (detection delay, metrics bucket, event
    /// cap). Probes that reason about failure detection — the §9.1
    /// recovery-time definition excludes the detection delay — read it from
    /// here instead of assuming the default.
    pub fn config(&self) -> &SimConfig {
        &self.world.config
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.world.metrics
    }

    /// Mutable metrics access (e.g. to reset between experiment phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.world.metrics
    }

    /// The topology (reflecting any link-metric changes applied so far).
    pub fn topology(&self) -> &Topology {
        &self.world.topology
    }

    /// Immutable access to a node's application.
    pub fn app(&self, node: NodeId) -> &A {
        &self.apps[node.index()]
    }

    /// Mutable access to a node's application (for harness-side injection
    /// between events).
    pub fn app_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.apps[node.index()]
    }

    /// Iterate over all applications.
    pub fn apps(&self) -> impl Iterator<Item = &A> {
        self.apps.iter()
    }

    /// True when `node` is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.world.node_up.get(node.index()).copied().unwrap_or(false)
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.world.events_processed
    }

    /// Schedule delivery of `msg` to `to` at absolute time `at` (external
    /// injection, e.g. issuing a query). No bandwidth is charged; `from` is
    /// recorded as the node itself.
    pub fn inject(&mut self, at: SimTime, to: NodeId, msg: A::Message) {
        self.world.push(at, EventKind::Deliver { to, from: to, msg, faulted: false });
    }

    /// Install a [`FaultPlan`]: from now on, arriving wire messages are
    /// subject to the plan's per-link drop/duplicate/reorder/burst faults.
    /// Self-deliveries (timers, injections, `send_self`) are never faulted.
    ///
    /// Installing an [inert](FaultPlan::is_inert) plan — or none at all —
    /// leaves delivery behavior bit-for-bit identical to a fault-free run.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.world.faults = Some(FaultState::new(plan));
    }

    /// Schedule a partition at time `at`: nodes in `side` are severed from
    /// the rest of the network. Messages crossing the cut are dropped (and
    /// counted as fault drops); each live endpoint of a cut link observes
    /// `NeighborDown` after the failure-detection delay, so both sides
    /// reconverge independently. A new partition replaces any active one.
    pub fn schedule_partition(&mut self, at: SimTime, side: Vec<NodeId>) {
        self.world.push(at, EventKind::Partition { side });
    }

    /// Schedule the end of the active partition at time `at`: cut links
    /// carry traffic again and their endpoints observe `NeighborUp` after
    /// the failure-detection delay. A no-op if no partition is active.
    pub fn schedule_heal(&mut self, at: SimTime) {
        self.world.push(at, EventKind::Heal);
    }

    /// True while a partition is active.
    pub fn is_partitioned(&self) -> bool {
        self.world.partition.is_some()
    }

    /// Schedule a change of the directed link `from → to` to `params` at
    /// time `at`. The owning endpoint (`from`) is notified via
    /// [`NodeApp::on_link_event`].
    pub fn schedule_link_metric_change(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        params: LinkParams,
    ) {
        self.world.push(at, EventKind::LinkMetricChange { from, to, params });
    }

    /// Schedule a fail-stop failure of `node` at time `at`.
    pub fn schedule_node_fail(&mut self, at: SimTime, node: NodeId) {
        self.world.push(at, EventKind::NodeFail { node });
    }

    /// Schedule `node` rejoining at time `at`.
    pub fn schedule_node_join(&mut self, at: SimTime, node: NodeId) {
        self.world.push(at, EventKind::NodeJoin { node });
    }

    /// Invoke `on_start` on every node (at the current simulated time).
    /// Called automatically by [`run_until`](Self::run_until) if needed.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.apps.len() {
            let node = NodeId::from(i);
            let mut ctx = Context { node, world: &mut self.world };
            self.apps[i].on_start(&mut ctx);
        }
    }

    /// Process a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.world.queue.pop() else {
            return false;
        };
        self.world.now = event.time;
        self.world.events_processed += 1;
        self.dispatch(event.kind);
        true
    }

    /// Run until the event queue is empty or simulated time exceeds `until`.
    /// Events scheduled after `until` remain queued.
    pub fn run_until(&mut self, until: SimTime) {
        self.start();
        while let Some(Reverse(ev)) = self.world.queue.peek() {
            if ev.time > until {
                break;
            }
            if self.world.events_processed >= self.world.config.max_events {
                break;
            }
            self.step();
        }
        if self.world.now < until {
            self.world.now = until;
        }
    }

    /// Run until the event queue drains completely.
    pub fn run_to_quiescence(&mut self) {
        self.start();
        while self.world.events_processed < self.world.config.max_events && self.step() {}
    }

    fn dispatch(&mut self, kind: EventKind<A::Message>) {
        match kind {
            EventKind::Deliver { to, from, msg, faulted } => {
                if !self.is_up(to) {
                    self.world.metrics.record_drop_node_down();
                    return;
                }
                // Self-deliveries (timers, injections, send_self) bypass the
                // wire entirely and are never faulted.
                if from != to {
                    if let Some(side) = &self.world.partition {
                        let cut = side.get(from.index()) != side.get(to.index());
                        if cut {
                            self.world.metrics.record_drop_fault();
                            return;
                        }
                    }
                    if !faulted {
                        if let Some(faults) = &mut self.world.faults {
                            let now = self.world.now;
                            match faults.on_arrival(from, to, now) {
                                FaultAction::Deliver => {}
                                FaultAction::Drop => {
                                    self.world.metrics.record_drop_fault();
                                    return;
                                }
                                FaultAction::Delay(extra) => {
                                    self.world.push(
                                        now + extra,
                                        EventKind::Deliver { to, from, msg, faulted: true },
                                    );
                                    return;
                                }
                                FaultAction::Duplicate(extra) => {
                                    self.world.push(
                                        now + extra,
                                        EventKind::Deliver {
                                            to,
                                            from,
                                            msg: msg.clone(),
                                            faulted: true,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                let mut ctx = Context { node: to, world: &mut self.world };
                self.apps[to.index()].on_message(&mut ctx, from, msg);
            }
            EventKind::Timer { node, id } => {
                if !self.is_up(node) {
                    return;
                }
                let mut ctx = Context { node, world: &mut self.world };
                self.apps[node.index()].on_timer(&mut ctx, id);
            }
            EventKind::LinkNotify { node, event } => {
                if !self.is_up(node) {
                    return;
                }
                let mut ctx = Context { node, world: &mut self.world };
                self.apps[node.index()].on_link_event(&mut ctx, event);
            }
            EventKind::LinkMetricChange { from, to, params } => {
                if let Some(p) = self.world.topology.link_mut(from, to) {
                    *p = params;
                }
                if self.is_up(from) && self.is_up(to) {
                    let now = self.world.now;
                    self.world.push(
                        now,
                        EventKind::LinkNotify {
                            node: from,
                            event: LinkEvent::MetricChanged { neighbor: to, params },
                        },
                    );
                }
            }
            EventKind::NodeFail { node } => {
                if let Some(up) = self.world.node_up.get_mut(node.index()) {
                    if !*up {
                        return;
                    }
                    *up = false;
                }
                // Neighbors with a link *to* the failed node detect the
                // failure after the detection delay.
                let detect_at = self.world.now + self.world.config.failure_detection_delay;
                let notify: Vec<NodeId> = self
                    .world
                    .topology
                    .all_links()
                    .filter(|(_, to, _)| *to == node)
                    .map(|(from, _, _)| from)
                    .collect();
                for neighbor in notify {
                    self.world.push(
                        detect_at,
                        EventKind::LinkNotify {
                            node: neighbor,
                            event: LinkEvent::NeighborDown { neighbor: node },
                        },
                    );
                }
            }
            EventKind::NodeJoin { node } => {
                if let Some(up) = self.world.node_up.get_mut(node.index()) {
                    if *up {
                        return;
                    }
                    *up = true;
                }
                // The node restarts its application logic...
                let mut ctx = Context { node, world: &mut self.world };
                self.apps[node.index()].on_join(&mut ctx);
                // ...and neighbors learn the link is back.
                let detect_at = self.world.now + self.world.config.failure_detection_delay;
                let notify: Vec<(NodeId, LinkParams)> = self
                    .world
                    .topology
                    .all_links()
                    .filter(|(_, to, _)| *to == node)
                    .map(|(from, _, p)| (from, *p))
                    .collect();
                for (neighbor, params) in notify {
                    self.world.push(
                        detect_at,
                        EventKind::LinkNotify {
                            node: neighbor,
                            event: LinkEvent::NeighborUp { neighbor: node, params },
                        },
                    );
                }
            }
            EventKind::Partition { side } => {
                let mut membership = vec![false; self.world.topology.num_nodes()];
                for node in side {
                    if let Some(slot) = membership.get_mut(node.index()) {
                        *slot = true;
                    }
                }
                self.world.partition = Some(membership);
                // Each live endpoint of a cut link detects its neighbor as
                // down after the detection delay, so both sides drop the
                // severed adjacencies from their routing state.
                let detect_at = self.world.now + self.world.config.failure_detection_delay;
                for (owner, neighbor) in self.cut_links() {
                    if self.is_up(owner) {
                        self.world.push(
                            detect_at,
                            EventKind::LinkNotify {
                                node: owner,
                                event: LinkEvent::NeighborDown { neighbor },
                            },
                        );
                    }
                }
            }
            EventKind::Heal => {
                let cut = self.cut_links();
                if self.world.partition.take().is_none() {
                    return;
                }
                let detect_at = self.world.now + self.world.config.failure_detection_delay;
                for (owner, neighbor) in cut {
                    if !self.is_up(owner) || !self.is_up(neighbor) {
                        continue;
                    }
                    let Some(params) = self.world.topology.link(owner, neighbor).copied() else {
                        continue;
                    };
                    self.world.push(
                        detect_at,
                        EventKind::LinkNotify {
                            node: owner,
                            event: LinkEvent::NeighborUp { neighbor, params },
                        },
                    );
                }
            }
        }
    }

    /// The directed links whose endpoints sit on opposite sides of the
    /// active partition, as `(owner, neighbor)` pairs. Empty when no
    /// partition is active.
    fn cut_links(&self) -> Vec<(NodeId, NodeId)> {
        let Some(side) = &self.world.partition else {
            return Vec::new();
        };
        self.world
            .topology
            .all_links()
            .filter(|(from, to, _)| side.get(from.index()) != side.get(to.index()))
            .map(|(from, to, _)| (from, to))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkParams;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A flooding app: on start, node 0 sends a counter to all neighbors;
    /// every node records what it received and forwards counter-1 while
    /// positive.
    #[derive(Default)]
    struct Flood {
        received: Vec<(NodeId, u32)>,
        link_events: Vec<LinkEvent>,
        timers_fired: usize,
    }

    impl NodeApp for Flood {
        type Message = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.id() == n(0) {
                let neighbors = ctx.neighbors();
                for (nb, _) in neighbors {
                    ctx.send(nb, 3, 100);
                }
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            self.received.push((from, msg));
            if msg > 0 {
                for (nb, _) in ctx.neighbors() {
                    if nb != from {
                        ctx.send(nb, msg - 1, 100);
                    }
                }
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, _timer: u64) {
            self.timers_fired += 1;
        }

        fn on_link_event(&mut self, _ctx: &mut Context<'_, u32>, event: LinkEvent) {
            self.link_events.push(event);
        }
    }

    fn line(k: usize, ms: f64) -> Topology {
        let mut t = Topology::new(k);
        for i in 0..k - 1 {
            t.add_bidirectional(n(i as u32), n(i as u32 + 1), LinkParams::with_latency_ms(ms));
        }
        t
    }

    fn make_sim(k: usize, ms: f64) -> Simulator<Flood> {
        let topo = line(k, ms);
        let apps = (0..k).map(|_| Flood::default()).collect();
        Simulator::new(topo, apps, SimConfig::default())
    }

    #[test]
    fn messages_propagate_with_latency() {
        let mut sim = make_sim(4, 10.0);
        sim.run_to_quiescence();
        // node 1 got the initial 3, node 2 got 2, node 3 got 1
        assert_eq!(sim.app(n(1)).received, vec![(n(0), 3)]);
        assert_eq!(sim.app(n(2)).received, vec![(n(1), 2)]);
        assert_eq!(sim.app(n(3)).received, vec![(n(2), 1)]);
        // message to node 3 traversed three 10 ms links (plus tiny tx delay)
        let t = sim.now().as_millis_f64();
        assert!((30.0..32.0).contains(&t), "final time {t} out of range");
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn metrics_account_bytes_per_node() {
        let mut sim = make_sim(3, 1.0);
        sim.run_to_quiescence();
        // node 0 sent one 100-byte message, node 1 forwarded one; node 2's
        // only neighbor is the sender, so it forwards nothing.
        assert_eq!(sim.metrics().bytes_sent_by(n(0)), 100);
        assert_eq!(sim.metrics().bytes_sent_by(n(1)), 100);
        assert_eq!(sim.metrics().bytes_sent_by(n(2)), 0);
        assert_eq!(sim.metrics().total_messages(), 2);
        assert!((sim.metrics().per_node_overhead_kb() - 200.0 / 3.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn run_until_stops_at_time_boundary() {
        let mut sim = make_sim(4, 10.0);
        sim.run_until(SimTime::from_millis(15));
        // only the first hop has been delivered
        assert_eq!(sim.app(n(1)).received.len(), 1);
        assert_eq!(sim.app(n(2)).received.len(), 0);
        assert_eq!(sim.now(), SimTime::from_millis(15));
        // continue to the end
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.app(n(3)).received.len(), 1);
    }

    #[test]
    fn failed_nodes_do_not_receive_and_neighbors_are_notified() {
        let mut sim = make_sim(4, 10.0);
        sim.schedule_node_fail(SimTime::from_millis(5), n(2));
        sim.run_to_quiescence();
        // node 2 fails before the flood reaches it
        assert!(sim.app(n(2)).received.is_empty());
        assert!(sim.app(n(3)).received.is_empty());
        assert!(!sim.is_up(n(2)));
        // node 1 sees node 2 as down, so it never forwards past it
        assert_eq!(sim.metrics().total_messages(), 1);
        // neighbors 1 and 3 observe NeighborDown
        assert!(sim
            .app(n(1))
            .link_events
            .iter()
            .any(|e| matches!(e, LinkEvent::NeighborDown { neighbor } if *neighbor == n(2))));
        assert!(sim
            .app(n(3))
            .link_events
            .iter()
            .any(|e| matches!(e, LinkEvent::NeighborDown { neighbor } if *neighbor == n(2))));
    }

    #[test]
    fn rejoin_restores_liveness_and_notifies() {
        let mut sim = make_sim(3, 1.0);
        sim.schedule_node_fail(SimTime::from_millis(2), n(2));
        sim.schedule_node_join(SimTime::from_millis(50), n(2));
        sim.run_to_quiescence();
        assert!(sim.is_up(n(2)));
        assert!(sim
            .app(n(1))
            .link_events
            .iter()
            .any(|e| matches!(e, LinkEvent::NeighborUp { neighbor, .. } if *neighbor == n(2))));
        // duplicate fail/join events are idempotent
        let mut sim2 = make_sim(2, 1.0);
        sim2.schedule_node_fail(SimTime::from_millis(1), n(1));
        sim2.schedule_node_fail(SimTime::from_millis(2), n(1));
        sim2.schedule_node_join(SimTime::from_millis(3), n(1));
        sim2.schedule_node_join(SimTime::from_millis(4), n(1));
        sim2.run_to_quiescence();
        assert!(sim2.is_up(n(1)));
    }

    #[test]
    fn link_metric_change_notifies_owner() {
        let mut sim = make_sim(2, 1.0);
        sim.schedule_link_metric_change(
            SimTime::from_millis(5),
            n(0),
            n(1),
            LinkParams::with_latency_ms(42.0),
        );
        sim.run_to_quiescence();
        assert_eq!(sim.topology().link(n(0), n(1)).unwrap().latency, SimDuration::from_millis(42));
        assert!(sim.app(n(0)).link_events.iter().any(|e| matches!(
            e,
            LinkEvent::MetricChanged { neighbor, params } if *neighbor == n(1) && params.latency == SimDuration::from_millis(42)
        )));
        // the reverse direction is untouched
        assert_eq!(sim.topology().link(n(1), n(0)).unwrap().latency, SimDuration::from_millis(1));
    }

    #[test]
    fn timers_fire_for_live_nodes_only() {
        struct TimerApp {
            fired: usize,
        }
        impl NodeApp for TimerApp {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(10));
                ctx.set_timer(SimDuration::from_millis(20));
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Context<'_, ()>, _: u64) {
                self.fired += 1;
            }
        }
        let mut topo = Topology::new(2);
        topo.add_bidirectional(n(0), n(1), LinkParams::default());
        let mut sim = Simulator::new(
            topo,
            vec![TimerApp { fired: 0 }, TimerApp { fired: 0 }],
            SimConfig::default(),
        );
        sim.schedule_node_fail(SimTime::from_millis(15), n(1));
        sim.run_to_quiescence();
        assert_eq!(sim.app(n(0)).fired, 2);
        assert_eq!(sim.app(n(1)).fired, 1); // second timer suppressed by failure
    }

    #[test]
    fn inject_delivers_external_messages() {
        let mut sim = make_sim(2, 1.0);
        sim.inject(SimTime::from_millis(100), n(1), 0);
        sim.run_to_quiescence();
        assert!(sim.app(n(1)).received.contains(&(n(1), 0)));
        // injection charges no bandwidth
        assert_eq!(sim.metrics().bytes_sent_by(n(1)), 0);
    }

    #[test]
    fn send_self_schedules_local_delivery() {
        struct SelfApp {
            got: Vec<u32>,
        }
        impl NodeApp for SelfApp {
            type Message = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send_self(7, SimDuration::from_millis(3));
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
                assert_eq!(from, ctx.id());
                self.got.push(msg);
            }
        }
        let mut topo = Topology::new(1);
        topo.add_link(n(0), n(0), LinkParams::default());
        let mut sim =
            Simulator::new(Topology::new(1), vec![SelfApp { got: vec![] }], SimConfig::default());
        let _ = topo;
        sim.run_to_quiescence();
        assert_eq!(sim.app(n(0)).got, vec![7]);
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    #[test]
    fn transmission_delay_and_fifo_queueing() {
        // 1 Mbps link (=125000 B/s): a 12500-byte message takes 100 ms to
        // transmit. Two back-to-back messages queue.
        struct Burst;
        impl NodeApp for Burst {
            type Message = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.id() == n(0) {
                    ctx.send(n(1), 1, 12_500);
                    ctx.send(n(1), 2, 12_500);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
        }
        let mut topo = Topology::new(2);
        topo.add_bidirectional(
            n(0),
            n(1),
            LinkParams::with_latency_ms(10.0).with_bandwidth_bps(125_000.0),
        );
        let mut sim = Simulator::new(topo, vec![Burst, Burst], SimConfig::default());
        sim.run_to_quiescence();
        // first arrives at 100 (tx) + 10 (lat) = 110 ms; second at 200 + 10 = 210 ms
        assert_eq!(sim.now(), SimTime::from_millis(210));
    }

    #[test]
    fn send_to_missing_link_is_dropped() {
        struct Lonely;
        impl NodeApp for Lonely {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.send(n(5), (), 10);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
        }
        let mut sim = Simulator::new(Topology::new(1), vec![Lonely], SimConfig::default());
        sim.run_to_quiescence();
        assert_eq!(sim.metrics().dropped_messages(), 1);
        assert_eq!(sim.metrics().total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "one application instance per topology node")]
    fn mismatched_app_count_panics() {
        let _ = Simulator::new(Topology::new(3), vec![Flood::default()], SimConfig::default());
    }

    #[test]
    fn full_drop_fault_black_holes_the_link() {
        use crate::fault::{FaultPlan, LinkFaults};
        let mut sim = make_sim(2, 1.0);
        sim.set_fault_plan(FaultPlan::new(1).uniform(LinkFaults::none().with_drop(1.0)));
        sim.run_to_quiescence();
        // node 0's flood message was sent but eaten at delivery time.
        assert_eq!(sim.metrics().total_messages(), 1);
        assert!(sim.app(n(1)).received.is_empty());
        assert_eq!(sim.metrics().dropped_fault(), 1);
        assert_eq!(sim.metrics().dropped_messages(), 1);
    }

    #[test]
    fn inert_fault_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let mut plain = make_sim(4, 10.0);
        plain.run_to_quiescence();
        let mut faulty = make_sim(4, 10.0);
        faulty.set_fault_plan(FaultPlan::new(123));
        faulty.run_to_quiescence();
        assert_eq!(plain.now(), faulty.now());
        assert_eq!(plain.events_processed(), faulty.events_processed());
        for i in 0..4 {
            assert_eq!(plain.app(n(i)).received, faulty.app(n(i)).received);
        }
        assert_eq!(faulty.metrics().dropped_fault(), 0);
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        use crate::fault::{FaultPlan, LinkFaults};
        let mut sim = make_sim(2, 1.0);
        sim.set_fault_plan(FaultPlan::new(2).uniform(LinkFaults::none().with_duplicate(1.0)));
        sim.run_to_quiescence();
        // the single flood message arrives twice; the duplicate is itself
        // not re-duplicated (faults apply once per wire arrival).
        assert_eq!(sim.app(n(1)).received, vec![(n(0), 3), (n(0), 3)]);
        assert_eq!(sim.metrics().total_messages(), 1);
    }

    #[test]
    fn reorder_fault_lets_later_traffic_overtake() {
        use crate::fault::{FaultPlan, LinkFaults};
        // A 1.0 reorder probability delays every message by a random extra
        // amount; delivery still happens, just later.
        let mut sim = make_sim(2, 1.0);
        sim.set_fault_plan(
            FaultPlan::new(3)
                .uniform(LinkFaults::none().with_reorder(1.0, SimDuration::from_millis(30))),
        );
        sim.run_to_quiescence();
        assert_eq!(sim.app(n(1)).received, vec![(n(0), 3)]);
        // latency 1 ms + extra delay in (0, 30] ms
        let t = sim.now().as_millis_f64();
        assert!(t > 1.0 && t <= 32.0, "delayed delivery time {t} out of range");
    }

    #[test]
    fn burst_outage_drops_only_inside_the_window() {
        use crate::fault::{FaultPlan, LinkFaults};
        let mut sim = make_sim(2, 1.0);
        sim.set_fault_plan(FaultPlan::new(4).uniform(
            LinkFaults::none().with_burst(SimTime::from_millis(100), SimTime::from_millis(200)),
        ));
        sim.inject(SimTime::from_millis(50), n(0), 1); // triggers a forward at ~51 ms: delivered
        sim.inject(SimTime::from_millis(150), n(0), 1); // forward lands in the outage: dropped
        sim.run_to_quiescence();
        // the start-of-run flood message and the pre-outage forward arrive;
        // only the forward inside the window is eaten.
        assert_eq!(sim.app(n(1)).received.len(), 2);
        assert_eq!(sim.metrics().dropped_fault(), 1);
    }

    #[test]
    fn partition_severs_cut_and_heal_restores() {
        let mut sim = make_sim(4, 1.0);
        // cut {0,1} | {2,3} before the flood starts; heal later.
        sim.schedule_partition(SimTime::ZERO, vec![n(0), n(1)]);
        sim.schedule_heal(SimTime::from_secs(1));
        sim.run_until(SimTime::from_millis(500));
        assert!(sim.is_partitioned());
        // flood reached node 1 but died at the 1-2 cut
        assert_eq!(sim.app(n(1)).received, vec![(n(0), 3)]);
        assert!(sim.app(n(2)).received.is_empty());
        assert_eq!(sim.metrics().dropped_fault(), 1);
        // both endpoints of the cut link observed NeighborDown
        assert!(sim
            .app(n(1))
            .link_events
            .iter()
            .any(|e| matches!(e, LinkEvent::NeighborDown { neighbor } if *neighbor == n(2))));
        assert!(sim
            .app(n(2))
            .link_events
            .iter()
            .any(|e| matches!(e, LinkEvent::NeighborDown { neighbor } if *neighbor == n(1))));
        sim.run_to_quiescence();
        assert!(!sim.is_partitioned());
        // after the heal both endpoints observe NeighborUp
        assert!(sim
            .app(n(1))
            .link_events
            .iter()
            .any(|e| matches!(e, LinkEvent::NeighborUp { neighbor, .. } if *neighbor == n(2))));
        assert!(sim
            .app(n(2))
            .link_events
            .iter()
            .any(|e| matches!(e, LinkEvent::NeighborUp { neighbor, .. } if *neighbor == n(1))));
        // intra-side traffic was never faulted
        assert_eq!(sim.metrics().dropped_no_link(), 0);
        assert_eq!(sim.metrics().dropped_node_down(), 0);
    }

    #[test]
    fn heal_without_partition_is_a_noop() {
        let mut sim = make_sim(2, 1.0);
        sim.schedule_heal(SimTime::from_millis(1));
        sim.run_to_quiescence();
        assert!(!sim.is_partitioned());
        assert_eq!(sim.app(n(1)).received.len(), 1);
    }

    #[test]
    fn max_events_caps_runaway_protocols() {
        // Two nodes ping-ponging forever.
        struct PingPong;
        impl NodeApp for PingPong {
            type Message = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.id() == n(0) {
                    ctx.send(n(1), 0, 10);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
                ctx.send(from, msg + 1, 10);
            }
        }
        let mut topo = Topology::new(2);
        topo.add_bidirectional(n(0), n(1), LinkParams::default());
        let cfg = SimConfig { max_events: 500, ..SimConfig::default() };
        let mut sim = Simulator::new(topo, vec![PingPong, PingPong], cfg);
        sim.run_to_quiescence();
        assert!(sim.events_processed() <= 500);
    }
}
