//! Measurement of communication overhead.
//!
//! The paper's two simulation metrics are *convergence latency* and
//! *per-node communication overhead* ("the number of KB transferred on
//! average per node during the query execution", §9.1); its PlanetLab
//! experiments additionally plot *bandwidth per node over time* (Fig. 11).
//! [`Metrics`] supports all three: per-node totals, and a time-bucketed
//! series of bytes sent.

use crate::time::{SimDuration, SimTime};
use dr_types::NodeId;
use std::collections::BTreeMap;

/// Byte and message accounting for a simulation run.
#[derive(Debug, Clone)]
pub struct Metrics {
    bytes_sent: Vec<u64>,
    messages_sent: Vec<u64>,
    dropped_no_link: u64,
    dropped_fault: u64,
    dropped_node_down: u64,
    bucket_width: SimDuration,
    /// bucket index → total bytes sent by all nodes during that bucket.
    bytes_per_bucket: BTreeMap<u64, u64>,
}

impl Metrics {
    /// Create metrics for `num_nodes` nodes with the given bandwidth-series
    /// bucket width.
    pub fn new(num_nodes: usize, bucket_width: SimDuration) -> Metrics {
        Metrics {
            bytes_sent: vec![0; num_nodes],
            messages_sent: vec![0; num_nodes],
            dropped_no_link: 0,
            dropped_fault: 0,
            dropped_node_down: 0,
            bucket_width: if bucket_width == SimDuration::ZERO {
                SimDuration::from_secs(1)
            } else {
                bucket_width
            },
            bytes_per_bucket: BTreeMap::new(),
        }
    }

    /// Record that `from` sent `bytes` at `time`.
    pub fn record_send(&mut self, time: SimTime, from: NodeId, bytes: usize) {
        if let Some(slot) = self.bytes_sent.get_mut(from.index()) {
            *slot += bytes as u64;
        }
        if let Some(slot) = self.messages_sent.get_mut(from.index()) {
            *slot += 1;
        }
        let bucket = time.as_micros() / self.bucket_width.as_micros();
        *self.bytes_per_bucket.entry(bucket).or_insert(0) += bytes as u64;
    }

    /// Record a message dropped because no link exists between the
    /// endpoints.
    pub fn record_drop_no_link(&mut self) {
        self.dropped_no_link += 1;
    }

    /// Record a message dropped by the fault-injection layer (probabilistic
    /// loss, burst outage, or partition cut).
    pub fn record_drop_fault(&mut self) {
        self.dropped_fault += 1;
    }

    /// Record a message dropped because an endpoint was down.
    pub fn record_drop_node_down(&mut self) {
        self.dropped_node_down += 1;
    }

    /// Total bytes sent by one node.
    pub fn bytes_sent_by(&self, node: NodeId) -> u64 {
        self.bytes_sent.get(node.index()).copied().unwrap_or(0)
    }

    /// Total messages sent by one node.
    pub fn messages_sent_by(&self, node: NodeId) -> u64 {
        self.messages_sent.get(node.index()).copied().unwrap_or(0)
    }

    /// Total bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }

    /// Total messages sent across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.messages_sent.iter().sum()
    }

    /// Messages dropped, all causes combined.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped_no_link + self.dropped_fault + self.dropped_node_down
    }

    /// Messages dropped because no link existed between the endpoints.
    pub fn dropped_no_link(&self) -> u64 {
        self.dropped_no_link
    }

    /// Messages dropped by the fault-injection layer.
    pub fn dropped_fault(&self) -> u64 {
        self.dropped_fault
    }

    /// Messages dropped because an endpoint was down.
    pub fn dropped_node_down(&self) -> u64 {
        self.dropped_node_down
    }

    /// The paper's per-node communication overhead, in kilobytes: average
    /// bytes sent per node / 1024.
    pub fn per_node_overhead_kb(&self) -> f64 {
        if self.bytes_sent.is_empty() {
            return 0.0;
        }
        self.total_bytes() as f64 / self.bytes_sent.len() as f64 / 1024.0
    }

    /// Per-node bandwidth series: (bucket start time, bytes per second per
    /// node during the bucket). Empty buckets are omitted.
    pub fn per_node_bandwidth_series(&self) -> Vec<(SimTime, f64)> {
        let nodes = self.bytes_sent.len().max(1) as f64;
        let width_s = self.bucket_width.as_secs_f64();
        self.bytes_per_bucket
            .iter()
            .map(|(bucket, bytes)| {
                let start = SimTime::from_micros(bucket * self.bucket_width.as_micros());
                (start, *bytes as f64 / nodes / width_s)
            })
            .collect()
    }

    /// Bytes sent across all nodes between two instants (bucket resolution:
    /// buckets whose start lies in `[from, to)` are counted).
    pub fn bytes_between(&self, from: SimTime, to: SimTime) -> u64 {
        self.bytes_per_bucket
            .iter()
            .filter(|(bucket, _)| {
                let start = **bucket * self.bucket_width.as_micros();
                start >= from.as_micros() && start < to.as_micros()
            })
            .map(|(_, b)| *b)
            .sum()
    }

    /// Reset byte/message counters (used between experiment phases that share
    /// one simulator instance).
    pub fn reset(&mut self) {
        for b in &mut self.bytes_sent {
            *b = 0;
        }
        for m in &mut self.messages_sent {
            *m = 0;
        }
        self.dropped_no_link = 0;
        self.dropped_fault = 0;
        self.dropped_node_down = 0;
        self.bytes_per_bucket.clear();
    }

    /// Number of nodes being tracked.
    pub fn num_nodes(&self) -> usize {
        self.bytes_sent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn records_per_node_totals() {
        let mut m = Metrics::new(3, SimDuration::from_secs(1));
        m.record_send(SimTime::from_millis(100), n(0), 1000);
        m.record_send(SimTime::from_millis(200), n(0), 500);
        m.record_send(SimTime::from_millis(300), n(1), 2000);
        assert_eq!(m.bytes_sent_by(n(0)), 1500);
        assert_eq!(m.bytes_sent_by(n(1)), 2000);
        assert_eq!(m.bytes_sent_by(n(2)), 0);
        assert_eq!(m.messages_sent_by(n(0)), 2);
        assert_eq!(m.total_bytes(), 3500);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.num_nodes(), 3);
    }

    #[test]
    fn per_node_overhead_matches_definition() {
        let mut m = Metrics::new(4, SimDuration::from_secs(1));
        m.record_send(SimTime::ZERO, n(0), 4096);
        m.record_send(SimTime::ZERO, n(1), 4096);
        // (4096 + 4096) / 4 nodes / 1024 = 2 KB
        assert!((m.per_node_overhead_kb() - 2.0).abs() < 1e-9);
        assert_eq!(Metrics::new(0, SimDuration::from_secs(1)).per_node_overhead_kb(), 0.0);
    }

    #[test]
    fn bandwidth_series_buckets_by_time() {
        let mut m = Metrics::new(2, SimDuration::from_secs(1));
        m.record_send(SimTime::from_millis(100), n(0), 1000);
        m.record_send(SimTime::from_millis(900), n(1), 1000);
        m.record_send(SimTime::from_millis(1500), n(0), 4000);
        let series = m.per_node_bandwidth_series();
        assert_eq!(series.len(), 2);
        // bucket 0: 2000 bytes / 2 nodes / 1s = 1000 B/s
        assert_eq!(series[0].0, SimTime::ZERO);
        assert!((series[0].1 - 1000.0).abs() < 1e-9);
        // bucket 1: 4000 / 2 / 1 = 2000 B/s
        assert_eq!(series[1].0, SimTime::from_secs(1));
        assert!((series[1].1 - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_between_uses_bucket_starts() {
        let mut m = Metrics::new(1, SimDuration::from_secs(1));
        m.record_send(SimTime::from_millis(500), n(0), 100);
        m.record_send(SimTime::from_millis(2500), n(0), 200);
        assert_eq!(m.bytes_between(SimTime::ZERO, SimTime::from_secs(1)), 100);
        assert_eq!(m.bytes_between(SimTime::from_secs(2), SimTime::from_secs(3)), 200);
        assert_eq!(m.bytes_between(SimTime::ZERO, SimTime::from_secs(10)), 300);
    }

    #[test]
    fn drops_and_reset() {
        let mut m = Metrics::new(2, SimDuration::from_secs(1));
        m.record_send(SimTime::ZERO, n(0), 10);
        m.record_drop_no_link();
        m.record_drop_fault();
        m.record_drop_fault();
        m.record_drop_node_down();
        assert_eq!(m.dropped_no_link(), 1);
        assert_eq!(m.dropped_fault(), 2);
        assert_eq!(m.dropped_node_down(), 1);
        assert_eq!(m.dropped_messages(), 4, "total is the sum of the three causes");
        m.reset();
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.dropped_messages(), 0);
        assert_eq!(m.dropped_no_link(), 0);
        assert_eq!(m.dropped_fault(), 0);
        assert_eq!(m.dropped_node_down(), 0);
        assert!(m.per_node_bandwidth_series().is_empty());
    }

    #[test]
    fn zero_bucket_width_is_normalised() {
        let m = Metrics::new(1, SimDuration::ZERO);
        // does not panic and produces sane series
        assert!(m.per_node_bandwidth_series().is_empty());
    }

    #[test]
    fn out_of_range_node_is_ignored() {
        let mut m = Metrics::new(1, SimDuration::from_secs(1));
        m.record_send(SimTime::ZERO, n(5), 10);
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.bytes_sent_by(n(5)), 0);
    }
}
