//! Declarative event timelines.
//!
//! The paper's evaluation choreographies (§9) all perturb a running
//! deployment with the same vocabulary of world events: node fail-stop
//! failures and rejoins (§9.2.4 churn), link-metric changes (§9.2.3 RTT
//! refreshes), and externally injected application messages (query
//! issuance). A [`TimelineEvent`] names one such perturbation at an
//! absolute simulated time; an [`EventSource`] is anything that expands
//! into a batch of them — a churn schedule, an RTT-measurement schedule, a
//! jitter process, or a hand-written `Vec`.
//!
//! Timelines are *data*: they can be generated up front from a seed,
//! inspected, merged, recorded in a report, and finally [`scheduled`]
//! (`TimelineEvent::schedule`) onto a [`Simulator`]. The scenario layer in
//! `dr-core` composes them with typed probes; the hand-driven alternative
//! (calling `schedule_node_fail` & friends in an ad-hoc loop) remains
//! available for low-level tests.
//!
//! [`scheduled`]: TimelineEvent::schedule

use crate::sim::{NodeApp, Simulator};
use crate::time::SimTime;
use crate::topology::{LinkParams, Topology};
use dr_types::NodeId;

/// One world event at an absolute simulated time.
///
/// Generic over the application message type `M` so that protocol-specific
/// injections (e.g. `dr-core`'s `NetMsg::Install`) ride the same timeline
/// as protocol-agnostic fail/join/link events.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent<M> {
    /// `node` fail-stops at `at` (neighbors detect it after the simulator's
    /// failure-detection delay).
    NodeFail {
        /// When the failure happens.
        at: SimTime,
        /// The failing node.
        node: NodeId,
    },
    /// `node` rejoins at `at`.
    NodeJoin {
        /// When the rejoin happens.
        at: SimTime,
        /// The rejoining node.
        node: NodeId,
    },
    /// The directed link `from → to` changes to `params` at `at`.
    LinkChange {
        /// When the change happens.
        at: SimTime,
        /// The owning endpoint (notified via `on_link_event`).
        from: NodeId,
        /// The other endpoint.
        to: NodeId,
        /// The new link parameters.
        params: LinkParams,
    },
    /// `msg` is delivered to `node` at `at` (external injection; no
    /// bandwidth is charged).
    Inject {
        /// When the message is delivered.
        at: SimTime,
        /// The receiving node.
        node: NodeId,
        /// The injected message.
        msg: M,
    },
    /// The network partitions at `at`: nodes in `side` are severed from the
    /// rest, cross-cut traffic is dropped, and cut-link endpoints observe
    /// `NeighborDown` after the detection delay.
    Partition {
        /// When the partition happens.
        at: SimTime,
        /// The nodes on one side of the cut.
        side: Vec<NodeId>,
    },
    /// The active partition heals at `at`: cut links carry traffic again
    /// and their endpoints observe `NeighborUp`.
    Heal {
        /// When the heal happens.
        at: SimTime,
    },
}

impl<M: Clone> TimelineEvent<M> {
    /// When the event happens.
    pub fn time(&self) -> SimTime {
        match self {
            TimelineEvent::NodeFail { at, .. }
            | TimelineEvent::NodeJoin { at, .. }
            | TimelineEvent::LinkChange { at, .. }
            | TimelineEvent::Inject { at, .. }
            | TimelineEvent::Partition { at, .. }
            | TimelineEvent::Heal { at } => *at,
        }
    }

    /// Push the event onto a simulator's queue.
    pub fn schedule<A: NodeApp<Message = M>>(&self, sim: &mut Simulator<A>) {
        match self {
            TimelineEvent::NodeFail { at, node } => sim.schedule_node_fail(*at, *node),
            TimelineEvent::NodeJoin { at, node } => sim.schedule_node_join(*at, *node),
            TimelineEvent::LinkChange { at, from, to, params } => {
                sim.schedule_link_metric_change(*at, *from, *to, *params)
            }
            TimelineEvent::Inject { at, node, msg } => sim.inject(*at, *node, msg.clone()),
            TimelineEvent::Partition { at, side } => sim.schedule_partition(*at, side.clone()),
            TimelineEvent::Heal { at } => sim.schedule_heal(*at),
        }
    }

    /// A short human-readable description (used by scenario reports).
    pub fn summary(&self) -> String {
        match self {
            TimelineEvent::NodeFail { node, .. } => format!("fail {node}"),
            TimelineEvent::NodeJoin { node, .. } => format!("join {node}"),
            TimelineEvent::LinkChange { from, to, params, .. } => {
                format!("link {from}->{to} cost {}", params.cost)
            }
            TimelineEvent::Inject { node, .. } => format!("inject {node}"),
            TimelineEvent::Partition { side, .. } => {
                format!("partition {} nodes", side.len())
            }
            TimelineEvent::Heal { .. } => "heal".to_string(),
        }
    }
}

/// Anything that expands into timeline events over a given topology.
///
/// Implementations live next to the schedule types themselves
/// (`dr-workloads`' `ChurnSchedule`, `LinkRttSchedule`,
/// `LinkJitterSchedule`); the topology argument lets link-level sources
/// enumerate the links they perturb. Sources must be deterministic: the
/// same source over the same topology yields the same events, so scenario
/// runs are reproducible from their seeds.
pub trait EventSource<M> {
    /// The events this source contributes, in chronological order.
    fn events_for(&self, topology: &Topology) -> Vec<TimelineEvent<M>>;
}

impl<M: Clone> EventSource<M> for Vec<TimelineEvent<M>> {
    fn events_for(&self, _topology: &Topology) -> Vec<TimelineEvent<M>> {
        self.clone()
    }
}

impl<M: Clone> EventSource<M> for [TimelineEvent<M>] {
    fn events_for(&self, _topology: &Topology) -> Vec<TimelineEvent<M>> {
        self.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Context, SimConfig};
    use crate::time::SimDuration;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[derive(Default)]
    struct Recorder {
        got: Vec<u32>,
    }

    impl NodeApp for Recorder {
        type Message = u32;
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, msg: u32) {
            self.got.push(msg);
        }
    }

    fn two_node_sim() -> Simulator<Recorder> {
        let mut topo = Topology::new(2);
        topo.add_bidirectional(n(0), n(1), LinkParams::with_latency_ms(1.0));
        Simulator::new(topo, vec![Recorder::default(), Recorder::default()], SimConfig::default())
    }

    #[test]
    fn events_schedule_onto_the_simulator() {
        let mut sim = two_node_sim();
        let events: Vec<TimelineEvent<u32>> = vec![
            TimelineEvent::Inject { at: SimTime::from_millis(5), node: n(1), msg: 7 },
            TimelineEvent::LinkChange {
                at: SimTime::from_millis(10),
                from: n(0),
                to: n(1),
                params: LinkParams::with_latency_ms(42.0),
            },
            TimelineEvent::NodeFail { at: SimTime::from_millis(20), node: n(1) },
            TimelineEvent::NodeJoin { at: SimTime::from_millis(30), node: n(1) },
        ];
        for e in &events {
            e.schedule(&mut sim);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.app(n(1)).got, vec![7]);
        assert_eq!(sim.topology().link(n(0), n(1)).unwrap().latency, SimDuration::from_millis(42));
        assert!(sim.is_up(n(1)));
    }

    #[test]
    fn time_and_summary_cover_every_variant() {
        let e: TimelineEvent<u32> =
            TimelineEvent::NodeFail { at: SimTime::from_secs(3), node: n(2) };
        assert_eq!(e.time(), SimTime::from_secs(3));
        assert!(e.summary().contains("fail"));
        let e: TimelineEvent<u32> = TimelineEvent::NodeJoin { at: SimTime::ZERO, node: n(2) };
        assert!(e.summary().contains("join"));
        let e: TimelineEvent<u32> = TimelineEvent::LinkChange {
            at: SimTime::ZERO,
            from: n(0),
            to: n(1),
            params: LinkParams::default(),
        };
        assert!(e.summary().contains("link"));
        let e: TimelineEvent<u32> = TimelineEvent::Inject { at: SimTime::ZERO, node: n(0), msg: 1 };
        assert!(e.summary().contains("inject"));
    }

    #[test]
    fn vec_is_an_event_source() {
        let events: Vec<TimelineEvent<u32>> =
            vec![TimelineEvent::NodeFail { at: SimTime::ZERO, node: n(0) }];
        let topo = Topology::new(1);
        assert_eq!(EventSource::events_for(&events, &topo), events);
        assert_eq!(EventSource::events_for(events.as_slice(), &topo), events);
    }
}
