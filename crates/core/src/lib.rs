//! # dr-core
//!
//! The distributed declarative routing engine — the paper's primary
//! contribution. Every network node runs a [`QueryProcessor`] (the
//! counterpart of the paper's per-node PIER instance): it keeps a neighbor
//! table fed by the routing infrastructure, accepts routing protocols
//! expressed as Datalog queries, executes them as distributed dataflows by
//! exchanging tuples with neighboring processors, and installs the results
//! in a forwarding table.
//!
//! The moving parts:
//!
//! * [`localize`] — turns a parsed [`dr_datalog::Program`] into per-node
//!   dataflows: rules whose body atoms live at different addresses are split
//!   into a local join at an *anchor* node plus tuple-shipping "clouds"
//!   (paper §3.3, Figure 2).
//! * [`query`] — a [`QuerySpec`] bundles the localized program with runtime
//!   options (aggregate selections, result sharing, lifetime); a
//!   [`QueryLibrary`] is the catalog of specs every node knows about, so
//!   that query dissemination only needs to flood an identifier.
//! * [`processor`] — the [`QueryProcessor`] node application: batching,
//!   semi-naïve incremental recomputation on base-table updates (paper §8),
//!   aggregate selections (§7.1), multi-query sharing through the
//!   `bestPathCache` table (§7.3), and forwarding-state installation.
//! * [`harness`] — glue for experiments: build a simulator over a topology,
//!   issue queries from chosen nodes, wait for convergence, and extract
//!   routes, costs and communication statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod localize;
pub mod processor;
pub mod query;

pub use harness::{ConvergenceReport, RoutingHarness};
pub use localize::{LocalizedProgram, LocalizedRule, ShipSpec};
pub use processor::{NetMsg, ProcessorConfig, QueryProcessor};
pub use query::{QueryId, QueryLibrary, QuerySpec};
