//! # dr-core
//!
//! The distributed declarative routing engine — the paper's primary
//! contribution. Every network node runs a [`QueryProcessor`] (the
//! counterpart of the paper's per-node PIER instance): it keeps a neighbor
//! table fed by the routing infrastructure, accepts routing protocols
//! expressed as Datalog queries, executes them as distributed dataflows by
//! exchanging tuples with neighboring processors, and installs the results
//! in a forwarding table.
//!
//! The moving parts:
//!
//! * [`localize`] — turns a parsed [`dr_datalog::Program`] into per-node
//!   dataflows: rules whose body atoms live at different addresses are split
//!   into a local join at an *anchor* node plus tuple-shipping "clouds"
//!   (paper §3.3, Figure 2).
//! * [`query`] — a [`QuerySpec`] bundles the localized program with runtime
//!   options (aggregate selections, result sharing, lifetime); a
//!   [`QueryLibrary`] is the catalog of specs every node knows about, so
//!   that query dissemination only needs to flood an identifier.
//! * [`processor`] — the [`QueryProcessor`] node application: batching,
//!   semi-naïve incremental recomputation on base-table updates (paper §8),
//!   aggregate selections (§7.1), multi-query sharing through the
//!   `bestPathCache` table (§7.3), and forwarding-state installation.
//! * [`harness`] — glue for experiments: build a simulator over a topology,
//!   issue queries through the fluent [`IssueBuilder`], and observe typed
//!   results, convergence, and communication statistics through
//!   [`QueryHandle`]s.
//! * [`scenario`] — declarative experiment descriptions: a
//!   [`ScenarioBuilder`] composes a topology, an event timeline (query
//!   issuance, churn, link dynamics, injections), and typed [`Probe`]s,
//!   and [`Scenario::run`] plays it out into a [`ScenarioReport`].
//!
//! # Example
//!
//! Issue the paper's Best-Path query (rules NR1/NR2/BPR1/BPR2) over a
//! three-node line and read the routes back as typed [`dr_types::RouteEntry`]
//! values:
//!
//! ```
//! use dr_core::harness::RoutingHarness;
//! use dr_datalog::parse_program;
//! use dr_netsim::{LinkParams, SimTime, Topology};
//! use dr_types::{Cost, NodeId};
//!
//! let program = parse_program(
//!     r#"
//!     #key(link, 0, 1).
//!     #key(path, 0, 1, 2).
//!     #key(bestPathCost, 0, 1).
//!     #key(bestPath, 0, 1).
//!     NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
//!     NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
//!          C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
//!     BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
//!     BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
//!     Query: bestPath(@S,D,P,C).
//!     "#,
//! )?;
//!
//! // 0 -- 1 -- 2, unit costs.
//! let mut topology = Topology::new(3);
//! for i in 0..2u32 {
//!     topology.add_bidirectional(
//!         NodeId::new(i),
//!         NodeId::new(i + 1),
//!         LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
//!     );
//! }
//!
//! let mut harness = RoutingHarness::new(topology);
//! let handle = harness.issue(program).from(NodeId::new(0)).at(SimTime::ZERO).submit()?;
//! harness.run_until(SimTime::from_secs(30));
//!
//! let routes = handle.finite_results(&harness)?; // Vec<RouteEntry>
//! assert_eq!(routes.len(), 6); // all ordered pairs of the line
//! let end_to_end = routes.iter().find(|r| r.src == NodeId::new(0) && r.dst == NodeId::new(2));
//! assert_eq!(end_to_end.map(|r| r.cost), Some(Cost::new(2.0)));
//! # Ok::<(), dr_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod localize;
pub mod processor;
pub mod query;
pub mod scenario;

pub use dr_provenance::{
    diff_explanations, DerivationStep, DerivationTree, ExplanationDiff, ProvId, ProvRecord,
    ProvRef, ProvStore,
};
pub use harness::{
    ExplainError, IssueBuilder, QueryHandle, ResultCursor, ResultsDelta, RoutingHarness, Sample,
};
pub use localize::{LocalizedProgram, LocalizedRule, ShipSpec};
pub use processor::{
    NetMsg, ProcessorConfig, ProcessorStats, ProvTag, QueryProcessor, ReliabilityConfig,
    StateFootprint,
};
pub use query::{QueryId, QueryLibrary, QuerySpec};
pub use scenario::{
    Probe, QueryDef, QueryReport, Scenario, ScenarioBuilder, ScenarioReport, ScenarioRun,
};
