//! Declarative scenarios: one builder chain per experiment.
//!
//! The paper's entire evaluation (§9, Figs. 5–15, Tabs. 1–4) repeats one
//! choreography with different topologies, event schedules, and
//! measurements: build a topology, issue one or more queries, perturb the
//! world while time advances, and sample what the deployment computes. A
//! [`Scenario`] captures that choreography as *data*:
//!
//! * a topology,
//! * an **event timeline** — query issuance at chosen times
//!   ([`QueryDef`]), plus any [`dr_netsim::timeline::TimelineEvent`]s:
//!   node fail/join (churn schedules), link-metric changes (RTT
//!   measurement/jitter schedules from `dr-workloads`), and ad-hoc
//!   [`NetMsg`] injections, and
//! * **typed probes** ([`Probe`]) — result-set samples with convergence
//!   detection, the churn-aware AvgPathRTT series, reported AvgLinkRTT,
//!   per-path recovery times (the §9.1 definition: failure *detection*
//!   delay is excluded), path-change counting, the netsim bandwidth
//!   time-series, a per-node-overhead series, and processor counters.
//!
//! [`Scenario::run`] executes the timeline deterministically and returns a
//! [`ScenarioReport`]; [`Scenario::execute`] additionally hands back the
//! harness and the typed [`QueryHandle`]s for follow-on inspection
//! (forwarding tables, per-node stores). Same builder + same seeds ⇒ the
//! same report, byte for byte.
//!
//! # Example
//!
//! Heal a failed node on a triangle and measure the recovery:
//!
//! ```
//! use dr_core::scenario::{Probe, QueryDef, ScenarioBuilder};
//! use dr_datalog::parse_program;
//! use dr_netsim::{LinkParams, SimDuration, SimTime, Topology};
//! use dr_types::{Cost, NodeId};
//!
//! let program = parse_program(
//!     r#"
//!     #key(link, 0, 1).
//!     #key(path, 0, 1, 2).
//!     #key(bestPathCost, 0, 1).
//!     #key(bestPath, 0, 1).
//!     NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
//!     NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
//!          C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
//!     NR3: path(@S,D,P,C) :- link(@S,W,C1), path(@S,D,P,C2),
//!          f_inPath(P,W) = true, C1 = infinity, C = infinity.
//!     BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
//!     BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
//!     Query: bestPath(@S,D,P,C).
//!     "#,
//! )?;
//!
//! // Triangle: cheap route 0-1-2, expensive direct edge 0-2.
//! let mut topology = Topology::new(3);
//! let link = |ms: f64, c: f64| LinkParams::with_latency_ms(ms).with_cost(Cost::new(c));
//! topology.add_bidirectional(NodeId::new(0), NodeId::new(1), link(5.0, 1.0));
//! topology.add_bidirectional(NodeId::new(1), NodeId::new(2), link(5.0, 1.0));
//! topology.add_bidirectional(NodeId::new(0), NodeId::new(2), link(5.0, 5.0));
//!
//! let report = ScenarioBuilder::over(topology)
//!     .query(QueryDef::new(program).named("triangle-best-path"))
//!     .fail(SimTime::from_secs(20), NodeId::new(1))
//!     .sample_every(SimDuration::from_secs(1))
//!     .until(SimTime::from_secs(40))
//!     .probe(Probe::Recovery)
//!     .run()?;
//!
//! assert!(report.queries[0].converged_at.is_some());
//! // The 0 -> 2 route healed onto the direct edge; the reported recovery
//! // time excludes the failure-detection delay (§9.1).
//! let healed = report.recoveries.iter().find(|r| r.dst == NodeId::new(2)).unwrap();
//! assert!(healed.recovery_s >= 0.0);
//! # Ok::<(), dr_types::Error>(())
//! ```

use crate::harness::{average_cost_of, converged_at, QueryHandle, RoutingHarness, Sample};
use crate::processor::{NetMsg, ProcessorStats, ReliabilityConfig};
use dr_datalog::ast::Program;
use dr_netsim::timeline::{EventSource, TimelineEvent};
use dr_netsim::{FaultPlan, LinkParams, SimDuration, SimTime, Topology};
use dr_types::view::CostView;
use dr_types::{Error, NodeId, Result, RouteEntry, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// A declarative query issuance: everything `RoutingHarness::issue`'s
/// fluent builder accepts, as plain data the scenario replays in order.
///
/// Defaults mirror the paper's common case (and [`crate::IssueBuilder`]):
/// issued from node 0 at t=0, aggregate selections on, sharing off.
#[derive(Debug, Clone)]
pub struct QueryDef {
    program: Program,
    issuer: NodeId,
    at: SimTime,
    name: String,
    replicated: Vec<String>,
    aggregate_selections: bool,
    share_results: bool,
    cache_relation: String,
    facts: Vec<Tuple>,
}

impl QueryDef {
    /// A query issuance of `program` with the default options.
    pub fn new(program: Program) -> QueryDef {
        QueryDef {
            program,
            issuer: NodeId::new(0),
            at: SimTime::ZERO,
            name: "query".to_string(),
            replicated: Vec::new(),
            aggregate_selections: true,
            share_results: false,
            cache_relation: "bestPathCache".to_string(),
            facts: Vec::new(),
        }
    }

    /// The node that issues (and floods) the query. Default: node 0.
    #[allow(clippy::should_implement_trait)] // fluent DSL: `.from(node)` reads as prose
    pub fn from(mut self, issuer: NodeId) -> Self {
        self.issuer = issuer;
        self
    }

    /// The simulated time at which the query is injected. Default: t=0.
    pub fn at(mut self, at: SimTime) -> Self {
        self.at = at;
        self
    }

    /// Human-readable name for the report and logs.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Relations replicated to every node during dissemination.
    pub fn replicated<I, S>(mut self, relations: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.replicated = relations.into_iter().map(Into::into).collect();
        self
    }

    /// Toggle the aggregate-selections optimization (§7.1). Default: on.
    pub fn aggregate_selections(mut self, on: bool) -> Self {
        self.aggregate_selections = on;
        self
    }

    /// Toggle multi-query result sharing (§7.3). Default: off.
    pub fn sharing(mut self, on: bool) -> Self {
        self.share_results = on;
        self
    }

    /// Override the cross-query cache relation (§9.1.3).
    pub fn cache_relation(mut self, relation: impl Into<String>) -> Self {
        self.cache_relation = relation.into();
        self
    }

    /// Facts installed together with the query.
    pub fn facts(mut self, facts: Vec<Tuple>) -> Self {
        self.facts = facts;
        self
    }

    /// Append one fact.
    pub fn fact(mut self, fact: Tuple) -> Self {
        self.facts.push(fact);
        self
    }

    fn submit_on(&self, harness: &mut RoutingHarness) -> Result<QueryHandle<RouteEntry>> {
        harness
            .issue(self.program.clone())
            .from(self.issuer)
            .at(self.at)
            .named(self.name.clone())
            .replicated(self.replicated.iter().cloned())
            .aggregate_selections(self.aggregate_selections)
            .sharing(self.share_results)
            .cache_relation(self.cache_relation.clone())
            .facts(self.facts.clone())
            .submit()
    }
}

/// The measurements a scenario records while its timeline plays out.
///
/// Every probe samples at the scenario's cadence inside its sampling
/// window; what each one computes is pinned to the paper's definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Per-query finite-result samples (count + average cost) with
    /// convergence detection — the measurement behind Figs. 6 and 10.
    /// Enabled by default; costs one result-set decode per query per
    /// sample, so disable it (`probes([...])`) for large query streams.
    ResultSets,
    /// The AvgPathRTT series of the tracked query, excluding pairs whose
    /// endpoints are currently failed and routes traversing a currently
    /// failed node (Figs. 12–15).
    PathRtt,
    /// The reported AvgLinkRTT series: the mean link cost as of each
    /// sample, replayed from the timeline's link-change events (Figs.
    /// 12/13's reference curve).
    LinkRtt,
    /// Per-path recovery times under churn (§9.1, Table 4): a pair starts
    /// pending when a timeline failure breaks its current route, and
    /// recovers at the first sample where it again has a finite route
    /// avoiding every currently-failed node. The reported
    /// [`Recovery::recovery_s`] *excludes* the failure-detection delay,
    /// per the paper's definition.
    Recovery,
    /// Best-path change counting for the tracked query (Table 3): pairs
    /// whose path differs between consecutive samples, measured against
    /// the pair set present when the sampling window opened.
    PathChanges,
    /// The per-node bandwidth time-series from the netsim [`dr_netsim::Metrics`]
    /// (Fig. 11).
    Bandwidth,
    /// Cumulative per-node communication overhead (KB) at every sample —
    /// the Figs. 7–9 measurement for query streams.
    OverheadSeries,
    /// Deployment-wide [`ProcessorStats`] at every sample (derivation /
    /// tombstone budgets for regression tests).
    ProcessorStats,
}

/// One recovered path (the §9.1 recovery-time measurement).
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Route source.
    pub src: NodeId,
    /// Route destination.
    pub dst: NodeId,
    /// When the breaking failure happened.
    pub failed_at: SimTime,
    /// The sample time at which the pair had a valid route again.
    pub recovered_at: SimTime,
    /// Recovery time in seconds, **excluding** the failure-detection delay
    /// (the paper measures from when the routing infrastructure notices
    /// the failure, not from the failure itself).
    pub recovery_s: f64,
}

/// Path-stability counters (Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathChangeStats {
    /// Pairs present when the sampling window opened.
    pub pairs: usize,
    /// Pairs whose best path changed at least once.
    pub changed_pairs: usize,
    /// Total best-path changes across all pairs.
    pub total_changes: usize,
}

impl PathChangeStats {
    /// Fraction of pairs whose best path never changed.
    pub fn stable_fraction(&self) -> f64 {
        1.0 - self.changed_pairs as f64 / self.pairs.max(1) as f64
    }

    /// Average number of best-path changes per pair.
    pub fn avg_changes(&self) -> f64 {
        self.total_changes as f64 / self.pairs.max(1) as f64
    }
}

/// One resolved timeline event, as recorded in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// When the event fired.
    pub time: SimTime,
    /// Short description ("fail n3", "link n1->n2 cost 42", ...).
    pub summary: String,
}

/// Byte accounting over the sampling window (`sample_from` → end of run).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// When the sampling window opened.
    pub start: SimTime,
    /// Simulated time when the run ended.
    pub end: SimTime,
    /// Bytes sent deployment-wide during the window.
    pub bytes: u64,
    /// Average per-node bandwidth during the window (bytes per second) —
    /// Table 3's steady-state and Table 4's churn bandwidth.
    pub per_node_bps: f64,
}

/// What one query computed over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// The query's name (from its [`QueryDef`]).
    pub name: String,
    /// Result-set samples (empty unless [`Probe::ResultSets`] is enabled).
    pub samples: Vec<Sample>,
    /// The earliest sampled time after which the result set never changed
    /// again, if the query converged at all.
    pub converged_at: Option<SimTime>,
}

impl QueryReport {
    /// The final sampled result count (0 when nothing was sampled).
    pub fn final_results(&self) -> usize {
        self.samples.last().map(|s| s.results).unwrap_or(0)
    }

    /// The final sampled average cost (0 when nothing was sampled).
    pub fn final_avg_cost(&self) -> f64 {
        self.samples.last().map(|s| s.avg_cost).unwrap_or(0.0)
    }
}

/// Everything a scenario measured. Plain data: deriving [`PartialEq`] (and
/// comparing `Debug` renderings) is how the determinism tests pin that
/// equal builders with equal seeds reproduce equal runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Per-query reports, in issuance order.
    pub queries: Vec<QueryReport>,
    /// The resolved timeline, in execution order.
    pub events: Vec<EventRecord>,
    /// AvgPathRTT series `(time_s, ms)` of the tracked query
    /// ([`Probe::PathRtt`]).
    pub path_rtt: Vec<(f64, f64)>,
    /// Reported AvgLinkRTT series `(time_s, ms)` ([`Probe::LinkRtt`]).
    pub link_rtt: Vec<(f64, f64)>,
    /// Recovered paths ([`Probe::Recovery`]), in recovery order.
    pub recoveries: Vec<Recovery>,
    /// Path-stability counters ([`Probe::PathChanges`]).
    pub path_changes: Option<PathChangeStats>,
    /// Cumulative per-node overhead series `(time_s, KB)`
    /// ([`Probe::OverheadSeries`]).
    pub overhead_series: Vec<(f64, f64)>,
    /// Per-node bandwidth series `(time_s, bytes/s)` ([`Probe::Bandwidth`]).
    pub bandwidth: Vec<(f64, f64)>,
    /// Deployment-wide processor counters per sample
    /// ([`Probe::ProcessorStats`]).
    pub stats_series: Vec<(f64, ProcessorStats)>,
    /// Total per-node communication overhead (KB) over the whole run.
    pub per_node_overhead_kb: f64,
    /// Byte accounting over the sampling window.
    pub window: WindowStats,
}

impl ScenarioReport {
    /// The recovery times in seconds, in recovery order (Table 4 input).
    pub fn recovery_times(&self) -> Vec<f64> {
        self.recoveries.iter().map(|r| r.recovery_s).collect()
    }
}

/// A finished run: the report plus the live harness and typed handles for
/// follow-on inspection (forwarding tables, per-node result stores,
/// processor internals).
pub struct ScenarioRun {
    /// Everything the probes measured.
    pub report: ScenarioReport,
    /// The harness, positioned at the end of the run.
    pub harness: RoutingHarness,
    /// One typed handle per [`QueryDef`], in issuance order.
    pub handles: Vec<QueryHandle<RouteEntry>>,
}

/// Fluent constructor for a [`Scenario`]. Start with
/// [`ScenarioBuilder::over`], add queries / timeline events / probes, and
/// finish with [`run`](ScenarioBuilder::run) or
/// [`execute`](ScenarioBuilder::execute).
#[must_use = "a scenario only runs when run()/execute() is called"]
pub struct ScenarioBuilder {
    topology: Topology,
    batch_interval: SimDuration,
    queries: Vec<QueryDef>,
    events: Vec<TimelineEvent<NetMsg>>,
    sample_every: SimDuration,
    sample_from: SimTime,
    horizon: SimTime,
    probes: Vec<Probe>,
    tracked: usize,
    fault_plan: Option<FaultPlan>,
    reliability: Option<ReliabilityConfig>,
}

impl ScenarioBuilder {
    /// A scenario over `topology` with the defaults: 200 ms batch
    /// interval, sampling every second from t=0 until t=60 s, and the
    /// [`Probe::ResultSets`] probe.
    pub fn over(topology: Topology) -> ScenarioBuilder {
        ScenarioBuilder {
            topology,
            batch_interval: SimDuration::from_millis(200),
            queries: Vec::new(),
            events: Vec::new(),
            sample_every: SimDuration::from_secs(1),
            sample_from: SimTime::ZERO,
            horizon: SimTime::from_secs(60),
            probes: vec![Probe::ResultSets],
            tracked: 0,
            fault_plan: None,
            reliability: None,
        }
    }

    /// Run the scenario over an unreliable wire: install a seeded
    /// [`FaultPlan`] (probabilistic loss, duplication, reordering, burst
    /// outages, applied deterministically at delivery time) and switch the
    /// processors to the loss-tolerant reliable transport so result
    /// multisets stay exact. Without this call nothing changes: no RNG is
    /// consumed and the wire accounting is byte-identical to the lossless
    /// runs.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        if self.reliability.is_none() {
            self.reliability = Some(ReliabilityConfig::default());
        }
        self
    }

    /// Override the reliable-transport tuning (or enable it without any
    /// faults — e.g. to measure its overhead on a clean wire).
    pub fn reliability(mut self, config: ReliabilityConfig) -> Self {
        self.reliability = Some(config);
        self
    }

    /// Override the processors' batch interval (the paper uses 200 ms).
    pub fn batch_interval(mut self, batch: SimDuration) -> Self {
        self.batch_interval = batch;
        self
    }

    /// Add one query issuance to the timeline.
    pub fn query(mut self, def: QueryDef) -> Self {
        self.queries.push(def);
        self
    }

    /// Add a batch of query issuances (e.g. a generated request stream).
    pub fn queries(mut self, defs: impl IntoIterator<Item = QueryDef>) -> Self {
        self.queries.extend(defs);
        self
    }

    /// Add every event of an [`EventSource`] (a `ChurnSchedule`,
    /// `LinkRttSchedule`, `LinkJitterSchedule`, or a plain `Vec` of
    /// events) to the timeline.
    pub fn source<S: EventSource<NetMsg> + ?Sized>(mut self, source: &S) -> Self {
        self.events.extend(source.events_for(&self.topology));
        self
    }

    /// Add one timeline event.
    pub fn event(mut self, event: TimelineEvent<NetMsg>) -> Self {
        self.events.push(event);
        self
    }

    /// Fail `node` at `at`.
    pub fn fail(self, at: SimTime, node: NodeId) -> Self {
        self.event(TimelineEvent::NodeFail { at, node })
    }

    /// Rejoin `node` at `at`.
    pub fn join(self, at: SimTime, node: NodeId) -> Self {
        self.event(TimelineEvent::NodeJoin { at, node })
    }

    /// Change the directed link `from → to` to `params` at `at`.
    pub fn link_change(self, at: SimTime, from: NodeId, to: NodeId, params: LinkParams) -> Self {
        self.event(TimelineEvent::LinkChange { at, from, to, params })
    }

    /// Deliver `msg` to `node` at `at` (ad-hoc [`NetMsg`] injection).
    pub fn inject(self, at: SimTime, node: NodeId, msg: NetMsg) -> Self {
        self.event(TimelineEvent::Inject { at, node, msg })
    }

    /// Partition the network at `at`: `side` is severed from the rest,
    /// cross-cut traffic drops, and cut-link endpoints observe
    /// `NeighborDown` after the detection delay.
    pub fn partition(self, at: SimTime, side: Vec<NodeId>) -> Self {
        self.event(TimelineEvent::Partition { at, side })
    }

    /// Heal the active partition at `at` (cut-link endpoints observe
    /// `NeighborUp`).
    pub fn heal(self, at: SimTime) -> Self {
        self.event(TimelineEvent::Heal { at })
    }

    /// The sampling cadence of every probe. Default: 1 s.
    pub fn sample_every(mut self, interval: SimDuration) -> Self {
        self.sample_every = interval;
        self
    }

    /// When sampling starts (the warm-up boundary: the run advances here
    /// in one step, probes only fire afterwards). Default: t=0.
    pub fn sample_from(mut self, from: SimTime) -> Self {
        self.sample_from = from;
        self
    }

    /// When the run ends. Default: t=60 s.
    ///
    /// The run advances in whole sampling steps from `sample_from`, so
    /// when the cadence does not divide the window the final sample (and
    /// [`WindowStats::end`]) lands up to one cadence *past* this horizon —
    /// the same semantics as the hand-driven loops this API replaces,
    /// which is what keeps the figure outputs byte-identical. A horizon at
    /// or before `sample_from` ends the run at `sample_from` with no
    /// samples (used by churn scenarios whose schedule came out empty).
    pub fn until(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Enable one additional probe.
    pub fn probe(mut self, probe: Probe) -> Self {
        if !self.probes.contains(&probe) {
            self.probes.push(probe);
        }
        self
    }

    /// Replace the probe set (e.g. drop the default [`Probe::ResultSets`]
    /// for large query streams).
    pub fn probes(mut self, probes: impl IntoIterator<Item = Probe>) -> Self {
        self.probes = Vec::new();
        for p in probes {
            if !self.probes.contains(&p) {
                self.probes.push(p);
            }
        }
        self
    }

    /// Which query the route-level probes (PathRtt / Recovery /
    /// PathChanges) observe. Default: the first.
    pub fn track_query(mut self, index: usize) -> Self {
        self.tracked = index;
        self
    }

    /// Validate and freeze the scenario.
    pub fn build(self) -> Result<Scenario> {
        if self.sample_every == SimDuration::ZERO {
            return Err(Error::config("scenario sampling cadence must be positive"));
        }
        let route_probes = [Probe::PathRtt, Probe::Recovery, Probe::PathChanges]
            .iter()
            .any(|p| self.probes.contains(p));
        if route_probes && self.tracked >= self.queries.len() {
            return Err(Error::config(format!(
                "route-level probes track query #{} but the scenario issues {} queries",
                self.tracked,
                self.queries.len()
            )));
        }
        Ok(Scenario { spec: self })
    }

    /// Build and run, returning the report.
    pub fn run(self) -> Result<ScenarioReport> {
        self.build()?.run()
    }

    /// Build and run, returning the report plus harness and handles.
    pub fn execute(self) -> Result<ScenarioRun> {
        self.build()?.execute()
    }
}

/// A validated, runnable scenario (see [`ScenarioBuilder`]).
pub struct Scenario {
    spec: ScenarioBuilder,
}

impl Scenario {
    /// Run the scenario and return its report.
    pub fn run(self) -> Result<ScenarioReport> {
        Ok(self.execute()?.report)
    }

    /// Run the scenario, returning the report plus the live harness and
    /// typed query handles.
    pub fn execute(self) -> Result<ScenarioRun> {
        let spec = self.spec;
        let num_nodes = spec.topology.num_nodes();
        let want = |p: Probe| spec.probes.contains(&p);
        let route_probes =
            want(Probe::PathRtt) || want(Probe::Recovery) || want(Probe::PathChanges);

        // Initial link costs, for the AvgLinkRTT replay.
        let mut link_costs: BTreeMap<(NodeId, NodeId), f64> = if want(Probe::LinkRtt) {
            spec.topology.all_links().map(|(a, b, p)| ((a, b), p.cost.value())).collect()
        } else {
            BTreeMap::new()
        };

        let mut events = spec.events;
        events.sort_by_key(|e| e.time()); // stable: same-time events keep source order

        let mut harness =
            RoutingHarness::with_transport(spec.topology, spec.batch_interval, spec.reliability);
        if let Some(plan) = spec.fault_plan {
            harness.set_fault_plan(plan);
        }
        let detection_s = harness.sim().config().failure_detection_delay.as_secs_f64();

        let mut handles = Vec::with_capacity(spec.queries.len());
        for def in &spec.queries {
            handles.push(def.submit_on(&mut harness)?);
        }

        // Warm up to the sampling window, then schedule the timeline. This
        // split reproduces the hand-driven choreography it replaces
        // (converge first, then apply churn), so events at exactly the
        // window boundary are observed by the first sample, not the warmup.
        for event in events.iter().filter(|e| e.time() < spec.sample_from) {
            event.schedule(harness.sim_mut());
        }
        harness.run_until(spec.sample_from);
        for event in events.iter().filter(|e| e.time() >= spec.sample_from) {
            event.schedule(harness.sim_mut());
        }

        let tracked = if route_probes { handles.get(spec.tracked).cloned() } else { None };
        let window_start_bytes = harness.sim().metrics().total_bytes();

        let mut samples: Vec<Vec<Sample>> = vec![Vec::new(); handles.len()];
        let mut path_rtt: Vec<(f64, f64)> = Vec::new();
        let mut link_rtt: Vec<(f64, f64)> = Vec::new();
        let mut recoveries: Vec<Recovery> = Vec::new();
        let mut overhead_series: Vec<(f64, f64)> = Vec::new();
        let mut stats_series: Vec<(f64, ProcessorStats)> = Vec::new();

        let mut down: BTreeSet<NodeId> = BTreeSet::new();
        let mut pending: BTreeMap<(NodeId, NodeId), SimTime> = BTreeMap::new();
        let mut changes: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
        let mut last_paths: Option<BTreeMap<(NodeId, NodeId), RouteEntry>> = None;
        let mut initial_pairs = 0usize;
        if want(Probe::PathChanges) {
            let handle = tracked.as_ref().expect("validated by build()");
            let initial = best_paths(&harness, handle)?;
            initial_pairs = initial.len();
            last_paths = Some(initial);
        }

        let mut evt_idx = 0usize;
        let mut link_idx = 0usize;
        let mut t = spec.sample_from;
        while t < spec.horizon {
            t += spec.sample_every;
            harness.run_until(t);

            // Decode the tracked query's result set once per step: the
            // route probes read the (src, dst)-keyed snapshot, and the
            // result-set probe reuses the same decode for its sample
            // instead of paying a second one.
            let mut tracked_sample: Option<Sample> = None;
            let snapshot = match &tracked {
                Some(handle) => {
                    let finite = handle.finite_results(&harness)?;
                    if want(Probe::ResultSets) {
                        tracked_sample = Some(Sample {
                            time: harness.sim().now(),
                            results: finite.len(),
                            avg_cost: average_cost_of(&finite),
                        });
                    }
                    Some(
                        finite.into_iter().map(|r| ((r.src, r.dst), r)).collect::<BTreeMap<_, _>>(),
                    )
                }
                None => None,
            };

            // Timeline bookkeeping: fold events up to this sample into the
            // down-set; a batch of same-time failures marks the routes it
            // breaks as pending recoveries.
            while evt_idx < events.len() && events[evt_idx].time() <= t {
                match &events[evt_idx] {
                    TimelineEvent::NodeFail { at, .. } => {
                        let batch_at = *at;
                        let mut victims: Vec<NodeId> = Vec::new();
                        while let Some(TimelineEvent::NodeFail { at, node }) = events.get(evt_idx) {
                            if *at != batch_at {
                                break;
                            }
                            victims.push(*node);
                            evt_idx += 1;
                        }
                        down.extend(victims.iter().copied());
                        if want(Probe::Recovery) {
                            if let Some(snap) = &snapshot {
                                for (pair, route) in snap {
                                    if victims.iter().any(|v| route.traverses(*v))
                                        && !down.contains(&pair.0)
                                        && !down.contains(&pair.1)
                                    {
                                        pending.insert(*pair, batch_at);
                                    }
                                }
                            }
                        }
                    }
                    TimelineEvent::NodeJoin { node, .. } => {
                        down.remove(node);
                        evt_idx += 1;
                    }
                    _ => evt_idx += 1,
                }
            }

            if want(Probe::Recovery) && !pending.is_empty() {
                if let Some(snap) = &snapshot {
                    let mut recovered: Vec<(NodeId, NodeId)> = Vec::new();
                    for (pair, failed_at) in &pending {
                        if let Some(route) = snap.get(pair) {
                            if !down.iter().any(|f| route.traverses(*f)) {
                                let gross = (t - *failed_at).as_secs_f64();
                                recoveries.push(Recovery {
                                    src: pair.0,
                                    dst: pair.1,
                                    failed_at: *failed_at,
                                    recovered_at: t,
                                    recovery_s: (gross - detection_s).max(0.0),
                                });
                                recovered.push(*pair);
                            }
                        }
                    }
                    for pair in recovered {
                        pending.remove(&pair);
                    }
                }
            }

            if want(Probe::ResultSets) {
                for (i, handle) in handles.iter().enumerate() {
                    let sample = match &mut tracked_sample {
                        Some(_) if i == spec.tracked => tracked_sample.take().expect("checked"),
                        _ => sample_query(&harness, handle)?,
                    };
                    samples[i].push(sample);
                }
            }

            if want(Probe::PathRtt) {
                let snap = snapshot.as_ref().expect("route probes computed a snapshot");
                let valid: Vec<f64> = snap
                    .iter()
                    .filter(|(pair, route)| {
                        !down.contains(&pair.0)
                            && !down.contains(&pair.1)
                            && !down.iter().any(|f| route.traverses(*f))
                    })
                    .map(|(_, route)| route.cost.value())
                    .collect();
                let avg = if valid.is_empty() {
                    0.0
                } else {
                    valid.iter().sum::<f64>() / valid.len() as f64
                };
                path_rtt.push((t.as_secs_f64(), avg));
            }

            if want(Probe::LinkRtt) {
                // "As of just before this sample": a change scheduled at
                // exactly the sample boundary belongs to the next round.
                while link_idx < events.len() && events[link_idx].time() < t {
                    if let TimelineEvent::LinkChange { from, to, params, .. } = &events[link_idx] {
                        link_costs.insert((*from, *to), params.cost.value());
                    }
                    link_idx += 1;
                }
                let avg = link_costs.values().sum::<f64>() / link_costs.len().max(1) as f64;
                link_rtt.push((t.as_secs_f64(), avg));
            }

            if want(Probe::PathChanges) {
                let snap = snapshot.as_ref().expect("route probes computed a snapshot");
                if let Some(last) = &last_paths {
                    for (pair, route) in snap {
                        if let Some(old) = last.get(pair) {
                            if old.path != route.path {
                                *changes.entry(*pair).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }

            if want(Probe::OverheadSeries) {
                overhead_series.push((t.as_secs_f64(), harness.per_node_overhead_kb()));
            }

            if want(Probe::ProcessorStats) {
                stats_series.push((t.as_secs_f64(), harness.processor_stats()));
            }

            // Nothing reads the snapshot after this point: seed the next
            // step's path-change comparison by moving it, not cloning.
            if want(Probe::PathChanges) {
                last_paths = snapshot;
            }
        }

        let end = harness.sim().now();
        let window_bytes = harness.sim().metrics().total_bytes() - window_start_bytes;
        let elapsed = (end - spec.sample_from).as_secs_f64().max(1e-9);
        let window = WindowStats {
            start: spec.sample_from,
            end,
            bytes: window_bytes,
            per_node_bps: window_bytes as f64 / elapsed / num_nodes.max(1) as f64,
        };

        let bandwidth = if want(Probe::Bandwidth) {
            harness
                .sim()
                .metrics()
                .per_node_bandwidth_series()
                .into_iter()
                .map(|(at, bps)| (at.as_secs_f64(), bps))
                .collect()
        } else {
            Vec::new()
        };

        let queries = handles
            .iter()
            .zip(samples)
            .map(|(handle, samples)| QueryReport {
                name: handle.name().to_string(),
                converged_at: converged_at(&samples),
                samples,
            })
            .collect();

        let report = ScenarioReport {
            queries,
            events: events
                .iter()
                .map(|e| EventRecord { time: e.time(), summary: e.summary() })
                .collect(),
            path_rtt,
            link_rtt,
            recoveries,
            path_changes: want(Probe::PathChanges).then_some(PathChangeStats {
                pairs: initial_pairs,
                changed_pairs: changes.len(),
                total_changes: changes.values().sum(),
            }),
            overhead_series,
            bandwidth,
            stats_series,
            per_node_overhead_kb: harness.per_node_overhead_kb(),
            window,
        };
        Ok(ScenarioRun { report, harness, handles })
    }
}

/// One result-set sample of `handle` at the harness's current instant:
/// finite-result count and average cost. This is the probe behind
/// [`Probe::ResultSets`].
pub fn sample_query<T: CostView>(
    harness: &RoutingHarness,
    handle: &QueryHandle<T>,
) -> Result<Sample> {
    let finite = handle.finite_results(harness)?;
    Ok(Sample {
        time: harness.sim().now(),
        results: finite.len(),
        avg_cost: average_cost_of(&finite),
    })
}

/// The tracked query's finite best routes, keyed by (source, destination).
fn best_paths(
    harness: &RoutingHarness,
    handle: &QueryHandle<RouteEntry>,
) -> Result<BTreeMap<(NodeId, NodeId), RouteEntry>> {
    Ok(handle.finite_results(harness)?.into_iter().map(|r| ((r.src, r.dst), r)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::parse_program;
    use dr_netsim::SimConfig;
    use dr_types::Cost;

    const BEST_PATH: &str = r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        NR3: path(@S,D,P,C) :- link(@S,W,C1), path(@S,D,P,C2),
             f_inPath(P,W) = true, C1 = infinity, C = infinity.
        BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        Query: bestPath(@S,D,P,C).
    "#;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn best_path_def() -> QueryDef {
        QueryDef::new(parse_program(BEST_PATH).unwrap())
    }

    /// Triangle with a cheap two-hop route 0-1-2 and an expensive direct
    /// edge 0-2 (routes heal onto the direct edge when node 1 fails).
    fn triangle() -> Topology {
        let mut t = Topology::new(3);
        let link = |c: f64| LinkParams::with_latency_ms(5.0).with_cost(Cost::new(c));
        t.add_bidirectional(n(0), n(1), link(1.0));
        t.add_bidirectional(n(1), n(2), link(1.0));
        t.add_bidirectional(n(0), n(2), link(5.0));
        t
    }

    fn line(k: usize) -> Topology {
        let mut t = Topology::new(k);
        for i in 0..k - 1 {
            t.add_bidirectional(
                n(i as u32),
                n(i as u32 + 1),
                LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
            );
        }
        t
    }

    #[test]
    fn scenario_runs_a_plain_convergence_experiment() {
        let report = ScenarioBuilder::over(line(4))
            .query(best_path_def().named("line"))
            .sample_every(SimDuration::from_millis(500))
            .until(SimTime::from_secs(20))
            .run()
            .unwrap();
        assert_eq!(report.queries.len(), 1);
        let q = &report.queries[0];
        assert_eq!(q.name, "line");
        assert_eq!(q.final_results(), 12); // 4*3 pairs
        assert!(q.converged_at.expect("converges") < SimTime::from_secs(20));
        assert!(report.per_node_overhead_kb > 0.0);
        assert!(report.events.is_empty());
        // samples are monotone in time
        assert!(q.samples.windows(2).all(|w| w[0].time < w[1].time));
    }

    #[test]
    fn recovery_probe_excludes_failure_detection_delay() {
        let run = ScenarioBuilder::over(triangle())
            .query(best_path_def())
            .fail(SimTime::from_secs(20), n(1))
            .sample_every(SimDuration::from_secs(1))
            .until(SimTime::from_secs(40))
            .probe(Probe::Recovery)
            .execute()
            .unwrap();
        let report = &run.report;
        // Routes 0->2 and 2->0 traversed node 1 and heal onto the direct
        // edge; pairs with node 1 as an endpoint are never pending.
        assert!(!report.recoveries.is_empty());
        let detection_s = SimConfig::default().failure_detection_delay.as_secs_f64();
        for r in &report.recoveries {
            assert_ne!(r.src, n(1));
            assert_ne!(r.dst, n(1));
            assert_eq!(r.failed_at, SimTime::from_secs(20));
            let gross = (r.recovered_at - r.failed_at).as_secs_f64();
            assert!(
                (r.recovery_s - (gross - detection_s)).abs() < 1e-12,
                "recovery_s {} must be the gross sample delta {} minus the \
                 detection delay {} (§9.1)",
                r.recovery_s,
                gross,
                detection_s
            );
        }
        // The triangle heals within the first sample after the failure.
        let healed = report.recoveries.iter().find(|r| r.src == n(0) && r.dst == n(2)).unwrap();
        assert_eq!(healed.recovered_at, SimTime::from_secs(21));
        assert!((healed.recovery_s - (1.0 - detection_s)).abs() < 1e-12);
        // And the healed route is the direct edge.
        let route = run.handles[0]
            .finite_results(&run.harness)
            .unwrap()
            .into_iter()
            .find(|r| r.src == n(0) && r.dst == n(2))
            .unwrap();
        assert!(!route.traverses(n(1)));
        assert_eq!(route.cost, Cost::new(5.0));
    }

    #[test]
    fn path_rtt_probe_excludes_failed_nodes() {
        let report = ScenarioBuilder::over(triangle())
            .query(best_path_def())
            .fail(SimTime::from_secs(20), n(1))
            .join(SimTime::from_secs(30), n(1))
            .sample_from(SimTime::from_secs(10))
            .sample_every(SimDuration::from_secs(5))
            .until(SimTime::from_secs(40))
            .probes([Probe::PathRtt])
            .run()
            .unwrap();
        assert_eq!(report.path_rtt.len(), 6); // 15,20,25,30,35,40
        let at = |s: f64| report.path_rtt.iter().find(|(x, _)| *x == s).unwrap().1;
        // Converged triangle: all 6 ordered pairs, avg (1+1+2)*2/6 = 4/3.
        assert!((at(15.0) - 4.0 / 3.0).abs() < 1e-9);
        // The failure is observed by its boundary sample: node 1's pairs
        // are excluded and the 0<->2 routes still traverse it, so no pair
        // is valid yet.
        assert_eq!(at(20.0), 0.0);
        // Down phase: only 0<->2 remain, healed onto the direct edge.
        assert!((at(25.0) - 5.0).abs() < 1e-9);
        // After the rejoin all six pairs are valid again. Neighbors of the
        // rejoined node re-inject their stored link tuples as deltas (the
        // same up-transition repair that heals partitions), so 0<->2 also
        // re-converges from the direct edge back onto the 2-hop path
        // through node 1: avg (1+1+1+1+2+2)/6 — the converged-triangle
        // optimum with the doubled 0<->2 legs.
        assert!((at(40.0) - 8.0 / 6.0).abs() < 1e-9);
        // The resolved timeline is recorded.
        assert_eq!(report.events.len(), 2);
        assert!(report.events[0].summary.contains("fail"));
        assert!(report.events[1].summary.contains("join"));
    }

    #[test]
    fn overhead_and_stats_series_probe_every_sample() {
        let report = ScenarioBuilder::over(line(3))
            .query(best_path_def())
            .sample_every(SimDuration::from_secs(5))
            .until(SimTime::from_secs(20))
            .probes([Probe::OverheadSeries, Probe::ProcessorStats, Probe::Bandwidth])
            .run()
            .unwrap();
        assert_eq!(report.overhead_series.len(), 4);
        assert!(report.overhead_series.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(report.stats_series.len(), 4);
        assert!(report.stats_series.last().unwrap().1.tuples_derived > 0);
        assert!(!report.bandwidth.is_empty());
        // No result-set probe was requested.
        assert!(report.queries[0].samples.is_empty());
        assert_eq!(report.queries[0].converged_at, None);
    }

    #[test]
    fn sampling_window_bounds_the_window_stats() {
        let report = ScenarioBuilder::over(line(3))
            .query(best_path_def())
            .sample_from(SimTime::from_secs(10))
            .sample_every(SimDuration::from_secs(5))
            .until(SimTime::from_secs(30))
            .run()
            .unwrap();
        assert_eq!(report.window.start, SimTime::from_secs(10));
        assert_eq!(report.window.end, SimTime::from_secs(30));
        // The line converges within the warmup, so the window sees little
        // to no traffic — and certainly less than the whole run.
        let total_bytes = (report.per_node_overhead_kb * 1024.0 * 3.0).round() as u64;
        assert!(report.window.bytes <= total_bytes);
        // Samples cover only the window.
        let q = &report.queries[0];
        assert_eq!(q.samples.len(), 4);
        assert!(q.samples.iter().all(|s| s.time > SimTime::from_secs(10)));
    }

    #[test]
    fn build_validation_rejects_broken_scenarios() {
        let err = ScenarioBuilder::over(line(2))
            .query(best_path_def())
            .sample_every(SimDuration::ZERO)
            .build()
            .err()
            .expect("zero cadence is invalid");
        assert!(matches!(err, Error::Config(_)), "{err}");

        let err = ScenarioBuilder::over(line(2))
            .probe(Probe::PathRtt)
            .build()
            .err()
            .expect("route probes need a tracked query");
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn scenario_probe_matches_manual_sampling() {
        // Scenario path.
        let report = ScenarioBuilder::over(line(4))
            .query(best_path_def())
            .sample_every(SimDuration::from_millis(500))
            .until(SimTime::from_secs(20))
            .run()
            .unwrap();
        // Hand-rolled sampling loop over an identical deployment: the
        // scenario probe must be exactly this, nothing more.
        let mut harness = RoutingHarness::new(line(4));
        let handle = harness.issue(parse_program(BEST_PATH).unwrap()).submit().unwrap();
        let mut samples = Vec::new();
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(20) {
            t += SimDuration::from_millis(500);
            harness.run_until(t);
            samples.push(sample_query(&harness, &handle).unwrap());
        }
        assert_eq!(samples, report.queries[0].samples);
    }
}
