//! Rule localization: from a location-annotated Datalog program to per-node
//! dataflows with explicit tuple shipping.
//!
//! The paper's execution model (§3.3–3.4) stores every tuple at the node
//! named by its address attribute and rewrites each rule so that all joins
//! are evaluated at a single node, with "clouds" shipping the tuples that
//! have to travel. For the Network-Reachability rule NR2
//!
//! ```text
//! path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), ...
//! ```
//!
//! the link tuples are shipped to their destination (`link.D` cloud) and
//! cached there (the paper's `l'` tuples), the join runs at `Z`, and the
//! derived `path` tuples are shipped back to their source (`path.S` cloud).
//!
//! [`localize`] reproduces exactly this: it picks an **anchor** body atom
//! whose location variable appears in every other (non-co-located) body
//! atom, rewrites those other atoms to read from per-rule *cache relations*,
//! and emits [`ShipSpec`]s telling the runtime which tuples to ship where.
//! Head tuples whose location differs from the anchor are shipped by the
//! runtime to their home node.
//!
//! Small relations that hold query constants (`magicSources`, `magicDsts`,
//! `excludeNode`, multicast membership) can be declared *replicated*: their
//! contents are broadcast with the query itself, so their atoms are treated
//! as local everywhere and never constrain anchor selection.

use dr_datalog::ast::{Atom, Literal, Program, Rule, Term};
use dr_datalog::catalog::Catalog;
use dr_datalog::rewrite::{aggregate_selections, AggSelection};
use dr_types::{Error, RelCatalog, RelId, Result};
use std::collections::{BTreeSet, HashMap};

/// A shipping requirement: copies of `source_relation` tuples must be sent
/// to the node named by their `target_field` and stored there under
/// `cache_relation` (the paper's `l'` cached tuples).
///
/// Relations are interned [`RelId`]s — the runtime consults ship specs once
/// per stored tuple, so they must never carry heap strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipSpec {
    /// Relation whose home-stored tuples are shipped.
    pub source_relation: RelId,
    /// Cache table at the receiving node.
    pub cache_relation: RelId,
    /// Field of the shipped tuple that names the receiving node.
    pub target_field: usize,
}

/// One rule after localization: every body atom is either stored locally at
/// the evaluating node, a cache relation fed by a [`ShipSpec`], or a
/// replicated relation.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizedRule {
    /// The rewritten rule (cache relations substituted into the body).
    pub rule: Rule,
    /// The variable of the body that names the evaluating node, when the
    /// rule has location annotations (facts and fully-replicated rules have
    /// none).
    pub eval_location_var: Option<String>,
}

/// A whole program after localization.
#[derive(Debug, Clone)]
pub struct LocalizedProgram {
    /// Localized, non-fact rules in evaluation order.
    pub rules: Vec<LocalizedRule>,
    /// Ground facts (installed at query issue time; facts of replicated
    /// relations are broadcast to every node).
    pub facts: Vec<Rule>,
    /// Shipping requirements, deduplicated.
    pub ships: Vec<ShipSpec>,
    /// Catalog of the original program (location fields, keys, base/derived),
    /// extended with entries for the cache relations.
    pub catalog: Catalog,
    /// The query's symbol catalog: every relation the query can store or
    /// ship, bound in a deterministic traversal order of the program, so
    /// every node that localizes the same program derives identical
    /// name↔id bindings (the `Install` message carries this binding).
    pub rel_catalog: RelCatalog,
    /// Relations whose contents are replicated to every participating node.
    pub replicated: BTreeSet<RelId>,
    /// Aggregate-selection opportunities detected in the program (§7.1).
    pub agg_selections: Vec<AggSelection>,
    /// The query (result) relations named by `Query:` statements.
    pub result_relations: Vec<RelId>,
    /// Ship specs grouped by source relation (runtime lookup table for
    /// [`LocalizedProgram::ships_for`]).
    ships_by_source: HashMap<RelId, Vec<ShipSpec>>,
}

impl LocalizedProgram {
    /// Relations that should be treated with keyed-upsert semantics, as
    /// `(relation, key fields)` pairs from the program's `#key` pragmas.
    pub fn key_declarations(&self) -> Vec<(RelId, Vec<usize>)> {
        self.catalog
            .relations()
            .filter(|info| !info.key_fields.is_empty())
            .map(|info| (info.id, info.key_fields.clone()))
            .collect()
    }

    /// The ship specs whose source is `relation`.
    pub fn ships_for(&self, relation: RelId) -> &[ShipSpec] {
        self.ships_by_source.get(&relation).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True when `relation` is replicated to all nodes.
    pub fn is_replicated(&self, relation: RelId) -> bool {
        self.replicated.contains(&relation)
    }

    /// Estimated wire size of disseminating this query (rule count based;
    /// used to charge bandwidth for query flooding).
    pub fn dissemination_size(&self) -> usize {
        64 + 48 * (self.rules.len() + self.facts.len())
    }
}

/// Localize `program`, treating `replicated` relations as broadcast to every
/// node.
pub fn localize(program: &Program, replicated: &[&str]) -> Result<LocalizedProgram> {
    let mut catalog = Catalog::from_program(program)?;
    let agg_selections = aggregate_selections(program);
    let replicated: BTreeSet<RelId> = replicated.iter().map(|s| RelId::intern(s)).collect();

    // The per-query symbol catalog: bind every relation in a fixed traversal
    // order (rule heads, then body atoms, rule by rule; then queries; cache
    // relations are appended as localization mints them). Localizing the
    // same program anywhere yields the identical bindings.
    let mut rel_catalog = RelCatalog::new();
    for rule in &program.rules {
        rel_catalog.intern(&rule.head.relation);
        for lit in &rule.body {
            if let Literal::Atom(a) | Literal::NegAtom(a) = lit {
                rel_catalog.intern(&a.relation);
            }
        }
    }
    for q in &program.queries {
        rel_catalog.intern(&q.relation);
    }

    let mut rules = Vec::new();
    let mut facts = Vec::new();
    let mut ships: Vec<ShipSpec> = Vec::new();

    for (rule_idx, rule) in program.rules.iter().enumerate() {
        if rule.body.is_empty() {
            facts.push(rule.clone());
            continue;
        }
        let rule_label = rule.name.clone().unwrap_or_else(|| format!("rule{rule_idx}"));

        // Gather body atoms (positive and negated) with their location
        // variables.
        let positive: Vec<&Atom> = rule.positive_atoms();
        let negated: Vec<&Atom> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::NegAtom(a) => Some(a),
                _ => None,
            })
            .collect();
        // Location variable of an atom, from its annotation or the catalog.
        fn atom_loc_var(
            atom: &Atom,
            replicated: &BTreeSet<RelId>,
            catalog: &Catalog,
        ) -> Option<String> {
            if replicated.contains(&RelId::intern(&atom.relation)) {
                return None;
            }
            let field = atom.location.unwrap_or_else(|| catalog.location_field(&atom.relation));
            match atom.terms.get(field) {
                Some(Term::Var(v)) => Some(v.clone()),
                _ => None,
            }
        }
        let loc_var = |atom: &Atom| atom_loc_var(atom, &replicated, &catalog);

        // Distinct location variables among non-replicated atoms.
        let mut loc_vars: Vec<String> = Vec::new();
        for atom in positive.iter().chain(negated.iter()) {
            if let Some(v) = loc_var(atom) {
                if !loc_vars.contains(&v) {
                    loc_vars.push(v);
                }
            }
        }

        if loc_vars.len() <= 1 {
            // Already local (or fully replicated/ground locations).
            rules.push(LocalizedRule {
                rule: rule.clone(),
                eval_location_var: loc_vars.into_iter().next(),
            });
            continue;
        }

        // Choose the anchor: a location variable such that every positive
        // atom either lives there or mentions it (so its tuples can be
        // shipped there), and every negated atom already lives there
        // (absence of a tuple cannot be shipped).
        let anchor = loc_vars
            .iter()
            .find(|candidate| {
                let positives_ok = positive.iter().all(|atom| match loc_var(atom) {
                    None => true, // replicated or constant location: fine
                    Some(v) if v == **candidate => true,
                    Some(_) => atom.variables().contains(&candidate.as_str()),
                });
                let negations_ok = negated.iter().all(|atom| match loc_var(atom) {
                    None => true,
                    Some(v) => v == **candidate,
                });
                positives_ok && negations_ok
            })
            .cloned()
            .ok_or_else(|| {
                Error::planning(format!(
                    "rule {rule_label}: cannot localize — no body atom's location variable \
                     appears in all other body atoms"
                ))
            })?;

        // Rewrite non-anchor atoms to cache relations and record ship specs.
        let mut new_body: Vec<Literal> = Vec::new();
        for lit in &rule.body {
            match lit {
                Literal::Atom(atom) => {
                    let lv = atom_loc_var(atom, &replicated, &catalog);
                    match lv {
                        Some(v) if v != anchor => {
                            // Ship this atom's tuples to the anchor node.
                            let target_field = atom
                                .terms
                                .iter()
                                .position(|t| t.as_var() == Some(anchor.as_str()))
                                .ok_or_else(|| {
                                    Error::planning(format!(
                                        "rule {rule_label}: atom {} does not mention anchor \
                                         variable {anchor}",
                                        atom.relation
                                    ))
                                })?;
                            let cache_relation = format!("{}__to_{}", atom.relation, rule_label);
                            let source_rel = RelId::intern(&atom.relation);
                            let cache_rel = rel_catalog.intern(&cache_relation);
                            if !ships.iter().any(|s: &ShipSpec| {
                                s.source_relation == source_rel && s.cache_relation == cache_rel
                            }) {
                                ships.push(ShipSpec {
                                    source_relation: source_rel,
                                    cache_relation: cache_rel,
                                    target_field,
                                });
                            }
                            let mut cached_atom = atom.clone();
                            cached_atom.relation = cache_relation;
                            // The cache tuple is stored at the anchor node.
                            cached_atom.location = Some(target_field);
                            // Register the cache relation in the catalog with
                            // the same key as its source and the new location.
                            let source_info = catalog.get(source_rel).cloned();
                            catalog.declare(dr_datalog::catalog::RelationInfo {
                                id: cache_rel,
                                arity: source_info.as_ref().and_then(|i| i.arity),
                                location_field: target_field,
                                key_fields: source_info.map(|i| i.key_fields).unwrap_or_default(),
                                is_base: false,
                            });
                            new_body.push(Literal::Atom(cached_atom));
                        }
                        _ => new_body.push(lit.clone()),
                    }
                }
                Literal::NegAtom(atom) => {
                    // Negated atoms must already be local to the anchor or
                    // replicated — we cannot ship "absence of a tuple".
                    match atom_loc_var(atom, &replicated, &catalog) {
                        Some(v) if v != anchor => {
                            return Err(Error::planning(format!(
                                "rule {rule_label}: negated atom {} is not co-located with \
                                 the anchor {anchor} and cannot be shipped",
                                atom.relation
                            )))
                        }
                        _ => new_body.push(lit.clone()),
                    }
                }
                other => new_body.push(other.clone()),
            }
        }

        rules.push(LocalizedRule {
            rule: Rule { name: rule.name.clone(), head: rule.head.clone(), body: new_body },
            eval_location_var: Some(anchor),
        });
    }

    let result_relations: Vec<RelId> =
        program.queries.iter().map(|q| RelId::intern(&q.relation)).collect();

    let mut ships_by_source: HashMap<RelId, Vec<ShipSpec>> = HashMap::new();
    for ship in &ships {
        ships_by_source.entry(ship.source_relation).or_default().push(*ship);
    }

    Ok(LocalizedProgram {
        rules,
        facts,
        ships,
        catalog,
        rel_catalog,
        replicated,
        agg_selections,
        result_relations,
        ships_by_source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::parse_program;

    const BEST_PATH: &str = r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        Query: bestPath(@S,D,P,C).
    "#;

    const DSR: &str = r#"
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        DSR1: path(@S,D,P,C) :- path(@S,Z,P1,C1), link(@Z,D,C2),
              C = C1 + C2, P = f_append(P1,D), f_inPath(P1,D) = false.
        Query: path(@S,D,P,C).
    "#;

    #[test]
    fn right_recursion_ships_links_to_destination() {
        let program = parse_program(BEST_PATH).unwrap();
        let localized = localize(&program, &[]).unwrap();

        // NR1, BPR1, BPR2 are local; NR2 needs a ship.
        assert_eq!(localized.rules.len(), 4);
        assert_eq!(localized.ships.len(), 1);
        let ship = &localized.ships[0];
        assert_eq!(ship.source_relation.name(), "link");
        assert_eq!(ship.target_field, 1, "links ship to their destination field");
        assert_eq!(ship.cache_relation.name(), "link__to_NR2");

        // NR2's body now reads the cache relation and is anchored at Z.
        let nr2 = localized.rules.iter().find(|r| r.rule.name.as_deref() == Some("NR2")).unwrap();
        assert_eq!(nr2.eval_location_var.as_deref(), Some("Z"));
        assert_eq!(nr2.rule.body[0].as_atom().unwrap().relation, "link__to_NR2");
        assert_eq!(nr2.rule.body[1].as_atom().unwrap().relation, "path");

        // NR1 stays anchored at S with its original body.
        let nr1 = localized.rules.iter().find(|r| r.rule.name.as_deref() == Some("NR1")).unwrap();
        assert_eq!(nr1.eval_location_var.as_deref(), Some("S"));
        assert_eq!(nr1.rule.body[0].as_atom().unwrap().relation, "link");

        // Result relation captured from the Query statement.
        assert_eq!(localized.result_relations, vec![dr_types::RelId::intern("bestPath")]);
        // The symbol catalog binds every relation, including the minted
        // cache relation, deterministically.
        assert!(localized.rel_catalog.contains(ship.cache_relation));
        assert!(localized.rel_catalog.contains(dr_types::RelId::intern("path")));
        // Key pragmas survive into the catalog.
        assert!(localized
            .key_declarations()
            .iter()
            .any(|(r, k)| r.name() == "bestPath" && k == &vec![0, 1]));
        // The cache relation inherits link's key and locates at field 1.
        let cache = localized.catalog.get("link__to_NR2").unwrap();
        assert_eq!(cache.location_field, 1);
        assert_eq!(cache.key_fields, vec![0, 1]);
    }

    #[test]
    fn left_recursion_ships_paths_to_their_destination() {
        let program = parse_program(DSR).unwrap();
        let localized = localize(&program, &[]).unwrap();
        assert_eq!(localized.ships.len(), 1);
        let ship = &localized.ships[0];
        assert_eq!(ship.source_relation.name(), "path");
        // path(@S,Z,P1,C1): the anchor is Z (the link's location), which is
        // field 1 of the path tuple — "newly computed path tuples [are]
        // shipped by their destination fields" (paper §5.3).
        assert_eq!(ship.target_field, 1);
        let dsr1 = localized.rules.iter().find(|r| r.rule.name.as_deref() == Some("DSR1")).unwrap();
        assert_eq!(dsr1.eval_location_var.as_deref(), Some("Z"));
        assert_eq!(dsr1.rule.body[0].as_atom().unwrap().relation, "path__to_DSR1");
    }

    #[test]
    fn co_located_rules_need_no_shipping() {
        let src = r#"
            PBR1: permitPath(@S,D,P,C) :- path(@S,D,P,C), excludeNode(@S,W),
                  f_inPath(P,W) = false.
        "#;
        let localized = localize(&parse_program(src).unwrap(), &[]).unwrap();
        assert!(localized.ships.is_empty());
        assert_eq!(localized.rules[0].eval_location_var.as_deref(), Some("S"));
        assert_eq!(localized.rules[0].rule, parse_program(src).unwrap().rules[0]);
    }

    #[test]
    fn facts_are_separated() {
        let src = r#"
            magicSources(#3).
            BPP1: path(@S,D,P,C) :- magicSources(@S), link(@S,D,C), P = f_initPath(S,D).
        "#;
        let localized = localize(&parse_program(src).unwrap(), &[]).unwrap();
        assert_eq!(localized.facts.len(), 1);
        assert_eq!(localized.rules.len(), 1);
        assert!(localized.ships.is_empty());
    }

    #[test]
    fn unlocalizable_rule_is_rejected() {
        // Neither atom mentions the other's location variable.
        let src = "r1: out(@X,Y) :- p(@X,A), q(@Y,B).";
        let err = localize(&parse_program(src).unwrap(), &[]).unwrap_err();
        assert!(matches!(err, Error::Planning(_)));
    }

    #[test]
    fn replication_makes_global_filters_local() {
        // Without replication this rule is not localizable (magicDst's
        // location D3 appears nowhere else); with magicDst replicated it
        // anchors at Z like plain left recursion.
        let src = r#"
            BPPS1: path(@S,D,P,C) :- magicDst(@D3), path(@S,Z,P1,C1), link(@Z,D,C2),
                   !bestPathCache(@Z,D3,P3,C3), C = C1 + C2, P = f_append(P1,D).
        "#;
        let program = parse_program(src).unwrap();
        assert!(localize(&program, &[]).is_err());
        let localized = localize(&program, &["magicDst"]).unwrap();
        assert!(localized.is_replicated(dr_types::RelId::intern("magicDst")));
        let rule = &localized.rules[0];
        assert_eq!(rule.eval_location_var.as_deref(), Some("Z"));
        // path is shipped to Z, link and the negated cache stay local.
        assert_eq!(localized.ships.len(), 1);
        assert_eq!(localized.ships[0].source_relation.name(), "path");
    }

    #[test]
    fn negation_anchors_at_its_own_location_when_possible() {
        // The negated table lives at D; the positive link can be shipped to
        // D, so the rule anchors there.
        let src = r#"
            r1: out(@S,D) :- link(@S,D,C), !busy(@D,X).
        "#;
        let localized = localize(&parse_program(src).unwrap(), &[]).unwrap();
        assert_eq!(localized.rules[0].eval_location_var.as_deref(), Some("D"));
        assert_eq!(localized.ships.len(), 1);
        assert_eq!(localized.ships[0].source_relation.name(), "link");
    }

    #[test]
    fn unshippable_negation_is_rejected() {
        // The negated table lives at W, which no positive atom mentions, and
        // anchoring anywhere else would require shipping an absence.
        let src = r#"
            r1: out(@S) :- link(@S,D,C), !busy(@W,S).
        "#;
        let err = localize(&parse_program(src).unwrap(), &[]).unwrap_err();
        assert!(matches!(err, Error::Planning(_)));
    }

    #[test]
    fn link_state_flooding_localizes() {
        let src = r#"
            LS1: floodLink(@S,S,D,C,S) :- link(@S,D,C).
            LS2: floodLink(@M,S,D,C,N) :- link(@N,M,C1), floodLink(@N,S,D,C,W), M != W.
            Query: floodLink(@M,S,D,C,N).
        "#;
        let localized = localize(&parse_program(src).unwrap(), &[]).unwrap();
        // LS2: both atoms are at N already — no shipping; the head (at M) is
        // shipped by the runtime when it is produced.
        assert!(localized.ships.is_empty());
        let ls2 = localized.rules.iter().find(|r| r.rule.name.as_deref() == Some("LS2")).unwrap();
        assert_eq!(ls2.eval_location_var.as_deref(), Some("N"));
    }

    #[test]
    fn dissemination_size_scales_with_rule_count() {
        let small = localize(&parse_program("r1: p(@X) :- q(@X).").unwrap(), &[]).unwrap();
        let large = localize(&parse_program(BEST_PATH).unwrap(), &[]).unwrap();
        assert!(large.dissemination_size() > small.dissemination_size());
    }

    #[test]
    fn ships_for_filters_by_source() {
        let localized = localize(&parse_program(BEST_PATH).unwrap(), &[]).unwrap();
        assert_eq!(localized.ships_for(dr_types::RelId::intern("link")).len(), 1);
        assert!(localized.ships_for(dr_types::RelId::intern("path")).is_empty());
    }

    #[test]
    fn aggregate_selections_are_propagated() {
        let localized = localize(&parse_program(BEST_PATH).unwrap(), &[]).unwrap();
        assert_eq!(localized.agg_selections.len(), 1);
        assert_eq!(localized.agg_selections[0].input_relation.name(), "path");
    }
}
