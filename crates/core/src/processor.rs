//! The per-node query processor (the paper's Figure 1 box).
//!
//! Each [`QueryProcessor`] is a [`NodeApp`] driven by the network simulator.
//! It keeps the node's neighbor table in sync with link events from the
//! routing infrastructure, accepts query installations (disseminated by
//! flooding, with piggy-backed installation when tuples for a not-yet-known
//! query arrive first — §3.5), and executes every installed query as a
//! distributed dataflow:
//!
//! * received and locally derived tuples are batched; every
//!   `batch_interval` (200 ms in the paper's experiments, §9.1.1) the node
//!   runs a local semi-naïve fixpoint over its localized rules,
//! * derived tuples whose home is another node are shipped there, and
//!   tuples required by remote joins are shipped to the join's anchor node
//!   according to the program's [`crate::localize::ShipSpec`]s (the
//!   Figure 2 "clouds"),
//! * aggregate selections (§7.1) prune dominated tuples before they are
//!   stored or shipped — with per-next-hop granularity so that alternate
//!   routes survive for failure recovery (§8),
//! * link failures and metric changes arrive as neighbor-table updates and
//!   are folded into the same incremental dataflow (cost-∞ poisoning),
//! * completed best paths can be written into the node-local, cross-query
//!   `bestPathCache` table and installed along the reverse path, enabling
//!   the multi-query sharing of §7.3.

use crate::localize::LocalizedProgram;
use crate::query::{QueryId, QueryLibrary, QuerySpec};
use dr_datalog::builtins::Builtins;
use dr_datalog::database::{Database, Scan};
use dr_datalog::eval::{apply_aggregate, RelationSource, RuleEval};
use dr_datalog::rewrite::AggSelection;
use dr_netsim::{Context, LinkEvent, NodeApp, SimDuration};
use dr_types::{Cost, NodeId, RelId, Tuple, TupleKey, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Messages exchanged between query processors.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// Install (disseminate) a query known to the shared [`QueryLibrary`].
    Install {
        /// The query being installed.
        qid: QueryId,
    },
    /// A batch of tuples addressed to the receiving node. Each tuple's
    /// relation travels as its fixed-width interned [`RelId`] instead of
    /// the relation name; the receiver validates every id against the
    /// query's symbol catalog (`rel_catalog`) and drops unbound ids. In
    /// this single-process simulation the interned id *is* the wire
    /// representation; a multi-process transport must translate through
    /// the catalog's dense wire tags (`RelCatalog::wire_tag` /
    /// `RelCatalog::decode`) at the boundary instead, since raw interner
    /// ids are only meaningful within one process.
    Tuples {
        /// The query these tuples belong to (also selects the catalog the
        /// receiver validates the relation ids against).
        qid: QueryId,
        /// The shipped tuples.
        items: Vec<Tuple>,
    },
    /// Tear down a query: every node that handles this removes the query's
    /// instance (stored tuples, pending buffers, prune state, compiled
    /// plans), drops the shared cache relation when the query was its last
    /// user, and forwards the teardown to its neighbors exactly once.
    Teardown {
        /// The query being torn down.
        qid: QueryId,
    },
    /// Install a cached best path along the reverse path (multi-query
    /// sharing, §7.3). Forwarded hop by hop along `suffix`.
    CacheInstall {
        /// Cross-query cache relation to install into.
        cache: RelId,
        /// Final destination of the cached path.
        dest: NodeId,
        /// Remaining path from the receiving node to `dest` (first element
        /// is the receiving node itself).
        suffix: Vec<NodeId>,
        /// Cost of the remaining path.
        cost: Cost,
    },
}

impl NetMsg {
    /// Approximate wire size used for bandwidth accounting. Relation
    /// identity costs the fixed-width [`dr_types::rel::WIRE_TAG_BYTES`]
    /// tag (inside [`Tuple::wire_size`]) rather than `name.len()` bytes
    /// per tuple.
    pub fn wire_size(&self) -> usize {
        match self {
            NetMsg::Install { .. } | NetMsg::Teardown { .. } => 64,
            NetMsg::Tuples { items, .. } => 16 + items.iter().map(Tuple::wire_size).sum::<usize>(),
            NetMsg::CacheInstall { suffix, .. } => {
                24 + dr_types::rel::WIRE_TAG_BYTES + 4 * suffix.len()
            }
        }
    }
}

/// Configuration shared by every processor in a deployment.
#[derive(Debug, Clone)]
pub struct ProcessorConfig {
    /// The query library all nodes share.
    pub library: Arc<QueryLibrary>,
    /// How often buffered tuples are processed (the paper uses 200 ms).
    pub batch_interval: SimDuration,
    /// Name of the neighbor-table relation exposed to queries.
    pub link_relation: String,
}

impl ProcessorConfig {
    /// Standard configuration around a query library.
    pub fn new(library: Arc<QueryLibrary>) -> ProcessorConfig {
        ProcessorConfig {
            library,
            batch_interval: SimDuration::from_millis(200),
            link_relation: "link".to_string(),
        }
    }
}

/// Runtime counters of one processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessorStats {
    /// Tuples received from other nodes.
    pub tuples_received: u64,
    /// Tuples shipped to other nodes.
    pub tuples_sent: u64,
    /// Tuples derived locally (after pruning).
    pub tuples_derived: u64,
    /// Tuples suppressed by aggregate selections.
    pub tuples_pruned: u64,
    /// ∞-cost tombstones collapsed during incremental maintenance (§8):
    /// dominated infinite-cost derivations dropped instead of being stored,
    /// shipped, and re-joined.
    pub tombstones_collapsed: u64,
    /// Received tuples dropped because their relation tag is not bound by
    /// the query's symbol catalog (a stale or corrupt wire id).
    pub tuples_rejected: u64,
    /// Aggregate-selection prune-state entries evicted because their
    /// recorded best is an ∞-cost tombstone whose invalidation wave has run
    /// (keeps the per-query prune map bounded under churn). Finite entries
    /// are never evicted — they may back *shipped* bests whose next
    /// tombstone must still pass the admission gate.
    pub prune_evicted: u64,
    /// Number of batch-processing rounds executed.
    pub batches: u64,
}

impl ProcessorStats {
    /// Accumulate another processor's counters into this one (used by the
    /// harness to report deployment-wide totals).
    pub fn merge(&mut self, other: &ProcessorStats) {
        self.tuples_received += other.tuples_received;
        self.tuples_sent += other.tuples_sent;
        self.tuples_derived += other.tuples_derived;
        self.tuples_pruned += other.tuples_pruned;
        self.tombstones_collapsed += other.tombstones_collapsed;
        self.tuples_rejected += other.tuples_rejected;
        self.prune_evicted += other.prune_evicted;
        self.batches += other.batches;
    }
}

/// Sizes of everything a node currently stores on behalf of queries.
///
/// The residue audit of the query lifecycle: tearing a query down must
/// return every counter to its pre-issue value, otherwise a long-lived
/// service leaks a little engine state per issue→teardown cycle. The
/// teardown regression tests pin this by comparing footprints taken before
/// issuing and after tearing down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateFootprint {
    /// Installed query instances.
    pub instances: usize,
    /// Tuples stored across all per-query databases.
    pub stored_tuples: usize,
    /// Tuples waiting in per-query pending (delta) buffers.
    pub pending_tuples: usize,
    /// Aggregate-selection prune-state entries across all queries.
    pub prune_entries: usize,
    /// Relations materialized in the shared (cross-query) store.
    pub shared_relations: usize,
    /// Tuples held by the shared (cross-query) store.
    pub shared_tuples: usize,
}

impl StateFootprint {
    /// Accumulate another node's footprint (deployment-wide totals).
    pub fn merge(&mut self, other: &StateFootprint) {
        self.instances += other.instances;
        self.stored_tuples += other.stored_tuples;
        self.pending_tuples += other.pending_tuples;
        self.prune_entries += other.prune_entries;
        self.shared_relations += other.shared_relations;
        self.shared_tuples += other.shared_tuples;
    }

    /// True when nothing is stored at all.
    pub fn is_empty(&self) -> bool {
        *self == StateFootprint::default()
    }
}

/// Local-store row count below which an instance keeps its static plans.
///
/// Re-planning compiles every rule of the query again (a few µs per rule,
/// per node); on stores this small a bad join order costs less than the
/// compile, so short-lived pair queries on sparse nodes would pay more to
/// plan than to run. Stores that grow past the floor — protocol-style
/// queries that accumulate paths and advertisements — re-plan once and
/// amortize the compile over every subsequent batch.
const REPLAN_MIN_ROWS: usize = 192;

/// Per-installed-query state.
struct Instance {
    spec: Arc<QuerySpec>,
    db: Database,
    /// Compiled evaluation plans, one per localized rule (same order as
    /// `spec.program.rules`). Installation starts from the spec's shared
    /// statically-compiled plans (every local table is empty then, so they
    /// are identical across nodes); once the local store grows past
    /// [`REPLAN_MIN_ROWS`] the instance re-plans once against real
    /// cardinalities and swaps in its own vector (see [`Instance::replan`]).
    compiled: Arc<Vec<RuleEval>>,
    /// Whether the one-shot cardinality re-plan has happened.
    replanned: bool,
    /// Deltas accumulated since the last batch, keyed by interned relation.
    pending: HashMap<RelId, Vec<Tuple>>,
    /// Aggregate-selection state: (input relation, prune key) → (identity
    /// key of current best, its value). Bounded: entries whose backing
    /// stored tuple disappears are evicted (see
    /// [`Instance::evict_stale_prune_groups`]).
    prune: HashMap<(RelId, Vec<Value>), (Vec<Value>, Value)>,
    /// Interned id of the spec's cross-query cache relation.
    cache_rel: RelId,
    /// Number of `prune` entries whose recorded best is an ∞ tombstone.
    /// Maintained by `prune_pass` so the eviction sweep can be skipped
    /// entirely (steady state holds thousands of finite entries and zero
    /// tombstones).
    prune_tombstones: usize,
    installed: bool,
}

impl Instance {
    fn new(spec: Arc<QuerySpec>) -> Instance {
        let mut db = Database::new();
        for (rel, keys) in spec.program.key_declarations() {
            db.declare_key(rel, keys);
        }
        // Aggregate outputs are keyed by their group-by columns so that
        // recomputation replaces the previous value instead of accumulating.
        for lrule in &spec.program.rules {
            let head = &lrule.rule.head;
            if head.has_aggregate() {
                let group: Vec<usize> = head
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t, dr_datalog::ast::HeadTerm::Plain(_)))
                    .map(|(i, _)| i)
                    .collect();
                db.declare_key(head.relation.as_str(), group);
            }
        }
        // Reuse the spec's statically compiled plans (shared across nodes)
        // and declare the secondary indexes their probes will hit, so
        // per-batch evaluation joins against stored, incrementally-
        // maintained indexes instead of re-gathering and re-hashing table
        // contents.
        let compiled = spec.static_plans();
        for plan in compiled.iter() {
            for (rel, field) in plan.probe_fields() {
                db.declare_index(rel, field);
            }
        }
        let cache_rel = RelId::intern(&spec.cache_relation);
        Instance {
            spec,
            db,
            compiled,
            replanned: false,
            pending: HashMap::new(),
            prune: HashMap::new(),
            cache_rel,
            prune_tombstones: 0,
            installed: false,
        }
    }

    /// Re-compile every rule plan against the local store's current
    /// cardinalities. Installation-time plans are static — every table is
    /// empty at that point — so the first batch that runs with at least
    /// [`REPLAN_MIN_ROWS`] stored tuples gets to re-order joins by real row
    /// counts. One shot per query: local relation sizes stay within an
    /// order of magnitude after the initial fill, and re-planning per batch
    /// would thrash the plan cache.
    ///
    /// Returns the new plans' probe fields so the caller can mirror the
    /// index declarations onto the shared (cross-query) store.
    fn replan(&mut self) -> Vec<(RelId, usize)> {
        let stats = self.db.cardinalities();
        if stats.is_empty() {
            return Vec::new();
        }
        self.compiled = Arc::new(
            self.spec
                .program
                .rules
                .iter()
                .map(|lrule| RuleEval::with_stats(&lrule.rule, &stats))
                .collect(),
        );
        let fields: Vec<(RelId, usize)> =
            self.compiled.iter().flat_map(|plan| plan.probe_fields()).collect();
        for &(rel, field) in &fields {
            self.db.declare_index(rel, field);
        }
        self.replanned = true;
        fields
    }

    fn has_pending(&self) -> bool {
        self.pending.values().any(|v| !v.is_empty())
    }

    /// Evict aggregate-selection prune entries of (destination, next-hop)
    /// groups whose route is dead — the recorded best is an ∞-cost
    /// tombstone (the ROADMAP follow-up: without this the map grows
    /// monotonically under churn, one entry per route group the deployment
    /// ever considered).
    ///
    /// Only ∞ entries are evictable. A finite entry may back a best that
    /// was *shipped* rather than stored locally, and it is what lets the
    /// next ∞ derivation for its group pass the `invalidates_best` gate in
    /// [`QueryProcessor::prune_pass`] — dropping it would collapse a
    /// tombstone the remote home still needs. An ∞ entry, by contrast, has
    /// already done its job: the group's invalidation was admitted and
    /// propagated. After eviction a finite revival of the group is simply
    /// admitted fresh (it would have beaten ∞ anyway), and further ∞ ties
    /// still collapse through the stored-tuple check, so recovery semantics
    /// are unchanged while dead groups stop accumulating.
    ///
    /// Returns the number of entries evicted. The sweep only runs when the
    /// map outgrows a small floor *and* actually holds tombstones (tracked
    /// by `prune_tombstones`), so converged steady-state batches — all
    /// finite entries — never pay the O(map) scan.
    fn evict_stale_prune_groups(&mut self) -> u64 {
        const SWEEP_FLOOR: usize = 64;
        if self.prune_tombstones == 0 || self.prune.len() <= SWEEP_FLOOR {
            return 0;
        }
        let before = self.prune.len();
        self.prune.retain(|_, (_, value)| !value.is_infinite_cost());
        self.prune_tombstones = 0;
        (before - self.prune.len()) as u64
    }
}

/// Read-through view over the query-local database and the node's shared
/// (cross-query) tables. Chains borrowing cursors over both stores without
/// materializing either.
struct Overlay<'a> {
    local: &'a Database,
    shared: &'a Database,
}

impl RelationSource for Overlay<'_> {
    fn scan(&self, relation: RelId) -> Scan<'_> {
        self.local.scan(relation).chain(self.shared.scan(relation))
    }

    fn probe(&self, relation: RelId, field: usize, value: &Value) -> Scan<'_> {
        self.local.probe(relation, field, value).chain(self.shared.probe(relation, field, value))
    }

    fn probe_key(&self, key: &TupleKey, fields: &[usize]) -> Scan<'_> {
        self.local.probe_key(key, fields).chain(self.shared.probe_key(key, fields))
    }
}

/// Outcome of the aggregate-selection admission check for one tuple.
enum PruneDecision {
    /// Store/ship the tuple.
    Admit,
    /// A strictly better tuple for the prune group is already known.
    Dominated,
    /// An ∞-cost tombstone that invalidates nothing this node stored or
    /// shipped — dropped instead of propagated (§8).
    TombstoneCollapsed,
}

/// The per-node query processor.
pub struct QueryProcessor {
    config: ProcessorConfig,
    /// Interned id of `config.link_relation` (the neighbor-table relation),
    /// resolved once so per-update link tuples never hash the name.
    link_rel: RelId,
    node: NodeId,
    builtins: Builtins,
    /// Current neighbor table: neighbor → link cost (∞ when down).
    neighbors: BTreeMap<NodeId, Cost>,
    /// Cross-query shared tables (`bestPathCache`).
    shared: Database,
    instances: BTreeMap<QueryId, Instance>,
    /// Queries this node has torn down. Used to forward a teardown flood
    /// exactly once (whether or not the instance was ever installed here)
    /// and to refuse late `Install`/piggy-backed installations of a dead
    /// query. Query ids are never reused, so the set only grows with the
    /// number of queries ever torn down — a few bytes per lifecycle.
    torn_down: std::collections::BTreeSet<QueryId>,
    batch_scheduled: bool,
    stats: ProcessorStats,
}

impl QueryProcessor {
    /// Create a processor with the given deployment configuration.
    pub fn new(config: ProcessorConfig) -> QueryProcessor {
        // The shared store starts empty: cache relations (and their upsert
        // keys) are declared by the installation of the first query that
        // shares through them, and dropped again when their last user is
        // torn down — a long-lived service node holds no residue of
        // queries that no longer exist.
        let link_rel = RelId::intern(&config.link_relation);
        QueryProcessor {
            config,
            link_rel,
            node: NodeId::new(0),
            builtins: Builtins::standard(),
            neighbors: BTreeMap::new(),
            shared: Database::new(),
            instances: BTreeMap::new(),
            torn_down: std::collections::BTreeSet::new(),
            batch_scheduled: false,
            stats: ProcessorStats::default(),
        }
    }

    /// This node's id (valid after the simulation has started).
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Runtime counters.
    pub fn stats(&self) -> &ProcessorStats {
        &self.stats
    }

    /// The ids of the queries installed at this node.
    pub fn installed_queries(&self) -> Vec<QueryId> {
        self.instances.keys().copied().collect()
    }

    /// All tuples of `relation` stored at this node for query `qid`.
    pub fn tuples(&self, qid: QueryId, relation: &str) -> Vec<Tuple> {
        self.instances.get(&qid).map(|i| i.db.sorted_tuples(relation)).unwrap_or_default()
    }

    /// The result tuples (of all `Query:` relations) stored at this node.
    pub fn results(&self, qid: QueryId) -> Vec<Tuple> {
        let Some(instance) = self.instances.get(&qid) else { return Vec::new() };
        let mut out = Vec::new();
        for &rel in &instance.spec.program.result_relations {
            out.extend(instance.db.sorted_tuples(rel));
        }
        out
    }

    /// The node's current view of its neighbor table.
    pub fn neighbor_table(&self) -> &BTreeMap<NodeId, Cost> {
        &self.neighbors
    }

    /// Contents of the cross-query `bestPathCache` table.
    pub fn best_path_cache(&self) -> Vec<Tuple> {
        self.shared.sorted_tuples("bestPathCache")
    }

    /// Contents of an arbitrary cross-query cache relation (used by queries
    /// that compute a non-default metric).
    pub fn shared_cache(&self, relation: &str) -> Vec<Tuple> {
        self.shared.sorted_tuples(relation)
    }

    /// The forwarding table induced by query `qid`: destination → next hop,
    /// extracted from result tuples that carry a path vector (field layout
    /// `(S, D, P, C)`) or an explicit next-hop field (`(S, D, Z, C)`).
    pub fn forwarding_table(&self, qid: QueryId) -> BTreeMap<NodeId, NodeId> {
        let mut out = BTreeMap::new();
        for t in self.results(qid) {
            if t.node_at(0) != Some(self.node) {
                continue;
            }
            let Some(dest) = t.node_at(1) else { continue };
            let cost = t.fields().last().and_then(Value::as_cost).unwrap_or(Cost::ZERO);
            if cost.is_infinite() {
                continue;
            }
            let next = t.field(2).and_then(|v| match v {
                Value::Path(p) if p.len() >= 2 => Some(p.nodes()[1]),
                Value::Node(n) => Some(*n),
                _ => None,
            });
            if let Some(next) = next {
                out.insert(dest, next);
            }
        }
        out
    }

    /// Number of aggregate-selection prune-state entries currently held for
    /// query `qid` (regression hook for the churn tests: the map must not
    /// grow monotonically across fail/join cycles).
    pub fn prune_entries(&self, qid: QueryId) -> usize {
        self.instances.get(&qid).map(|i| i.prune.len()).unwrap_or(0)
    }

    /// Remove an installed query and its state (lifetime expiry). Also
    /// drops the query's shared cache relation when it was the last user —
    /// dropping the instance alone would leave the cross-query store
    /// holding paths no remaining query can refresh.
    pub fn remove_query(&mut self, qid: QueryId) {
        self.uninstall(qid);
    }

    /// True when this node has processed a teardown for `qid` (and will
    /// refuse to reinstall it).
    pub fn is_torn_down(&self, qid: QueryId) -> bool {
        self.torn_down.contains(&qid)
    }

    /// Number of tuples sitting in query `qid`'s pending (delta) buffers.
    pub fn pending_tuples(&self, qid: QueryId) -> usize {
        self.instances.get(&qid).map(|i| i.pending.values().map(Vec::len).sum()).unwrap_or(0)
    }

    /// Sizes of everything this node currently stores on behalf of queries
    /// (see [`StateFootprint`]).
    pub fn state_footprint(&self) -> StateFootprint {
        let mut f = StateFootprint {
            instances: self.instances.len(),
            shared_relations: self.shared.relation_count(),
            shared_tuples: self.shared.total_tuples(),
            ..StateFootprint::default()
        };
        for instance in self.instances.values() {
            f.stored_tuples += instance.db.total_tuples();
            f.pending_tuples += instance.pending.values().map(Vec::len).sum::<usize>();
            f.prune_entries += instance.prune.len();
        }
        f
    }

    // -- internals ----------------------------------------------------------

    fn link_tuple(&self, neighbor: NodeId, cost: Cost) -> Tuple {
        Tuple::from_rel(
            self.link_rel,
            vec![Value::Node(self.node), Value::Node(neighbor), Value::Cost(cost)],
        )
    }

    fn schedule_batch(&mut self, ctx: &mut Context<'_, NetMsg>) {
        if !self.batch_scheduled {
            self.batch_scheduled = true;
            ctx.set_timer(self.config.batch_interval);
        }
    }

    fn install(&mut self, ctx: &mut Context<'_, NetMsg>, qid: QueryId) {
        // A torn-down query never reinstalls: late Install floods and
        // piggy-backed installations race the teardown flood, and losing
        // that race must not resurrect the query on some nodes.
        if self.torn_down.contains(&qid) {
            return;
        }
        if self.instances.get(&qid).map(|i| i.installed).unwrap_or(false) {
            return;
        }
        let Some(spec) = self.config.library.get(qid) else { return };
        if spec.share_results {
            self.shared.declare_key(spec.cache_relation.as_str(), vec![0, 1]);
        }
        let program = Arc::clone(&spec.program);
        let instance =
            self.instances.entry(qid).or_insert_with(|| Instance::new(Arc::clone(&spec)));
        instance.installed = true;
        // Mirror the plans' probe-field declarations onto the shared
        // (cross-query) store, so joins against cache relations such as
        // `bestPathCache` are index-served on both sides of the overlay.
        // Declarations for relations the shared store never materializes
        // stay pending and cost nothing.
        let probe_fields: Vec<(RelId, usize)> =
            instance.compiled.iter().flat_map(|plan| plan.probe_fields()).collect();
        for (rel, field) in probe_fields {
            self.shared.declare_index(rel, field);
        }

        // Flood the installation to all neighbors.
        let msg = NetMsg::Install { qid };
        let size = program.dissemination_size();
        let neighbor_ids: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for nb in &neighbor_ids {
            ctx.send(*nb, msg.clone(), size);
        }

        // Install the query's facts: replicated relations everywhere, others
        // only at their home node.
        let mut outbound: BTreeMap<NodeId, Vec<Tuple>> = BTreeMap::new();
        let facts: Vec<Tuple> = spec.facts.clone();
        for fact in facts {
            self.route_tuple(qid, fact, &mut outbound);
        }
        // Materialize the program's own ground facts (constant rules such as
        // the `magicSources` / `magicDsts` of a pair query). Since every node
        // runs this on installation, replicated (and un-located) facts are
        // installed locally everywhere, and located facts only at their home
        // node — no shipping required.
        for fact in self.materialize_program_facts(&program) {
            self.route_tuple(qid, fact, &mut outbound);
        }
        // Seed the neighbor table as `link` base tuples.
        let links: Vec<Tuple> =
            self.neighbors.iter().map(|(nb, cost)| self.link_tuple(*nb, *cost)).collect();
        for link in links {
            self.route_tuple(qid, link, &mut outbound);
        }
        self.flush_outbound(ctx, qid, outbound);
        self.schedule_batch(ctx);
    }

    /// Handle a teardown flood: unwind every trace of `qid` at this node
    /// and forward the teardown to all neighbors exactly once (nodes that
    /// never installed the query still forward, so the flood crosses them).
    fn teardown(&mut self, ctx: &mut Context<'_, NetMsg>, qid: QueryId) {
        if !self.torn_down.insert(qid) {
            return; // already unwound and forwarded
        }
        self.uninstall(qid);
        // The spec leaves the shared library here, at the nodes, not at the
        // issuer: removing it when the teardown is *injected* would race
        // in-flight Install floods that still need `library.get(qid)`. The
        // call is idempotent — whichever node handles the flood first wins.
        self.config.library.remove(qid);
        let msg = NetMsg::Teardown { qid };
        let size = msg.wire_size();
        let neighbor_ids: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for nb in neighbor_ids {
            ctx.send(nb, msg.clone(), size);
        }
    }

    /// Drop query `qid`'s instance. The instance owns everything the query
    /// accumulated at this node — stored tuples, pending delta buffers,
    /// prune state, compiled plans — so dropping it releases all of it; the
    /// spec `Arc` (static plans, `RelCatalog`) is freed when the last node
    /// lets go. The query's shared cache relation is dropped from the
    /// cross-query store when no remaining instance uses it.
    fn uninstall(&mut self, qid: QueryId) {
        let Some(instance) = self.instances.remove(&qid) else { return };
        let cache_rel = instance.cache_rel;
        drop(instance);
        if !self.instances.values().any(|i| i.cache_rel == cache_rel) {
            self.shared.drop_relation(cache_rel);
        }
    }

    /// The ground facts of `program` that this node should store: all
    /// constant head terms of a fact rule become a tuple, kept when the
    /// fact's relation is replicated, carries no location annotation, or is
    /// homed at this node.
    fn materialize_program_facts(&self, program: &LocalizedProgram) -> Vec<Tuple> {
        let mut out = Vec::new();
        for fact in &program.facts {
            let head = &fact.head;
            let values: Option<Vec<Value>> = head
                .terms
                .iter()
                .map(|t| match t.as_plain() {
                    Some(dr_datalog::ast::Term::Const(v)) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            let Some(values) = values else { continue };
            let tuple = Tuple::new(&head.relation, values);
            // Derive the home exactly like route_tuple will (catalog location
            // field), so a kept fact is always stored locally, never
            // re-shipped.
            let home = tuple.node_at(program.catalog.location_field(tuple.rel()));
            if program.is_replicated(tuple.rel()) || home.is_none() || home == Some(self.node) {
                out.push(tuple);
            }
        }
        out
    }

    /// Store or forward one tuple for query `qid`. Returns true when the
    /// tuple was newly stored locally.
    fn route_tuple(
        &mut self,
        qid: QueryId,
        tuple: Tuple,
        outbound: &mut BTreeMap<NodeId, Vec<Tuple>>,
    ) -> bool {
        let my_id = self.node;
        // Work on the instance first; side effects on other processor fields
        // (stats, shared cache) are applied after the borrow ends.
        let mut pruned = false;
        let mut collapsed = false;
        let mut stored = false;
        let mut cache_entry: Option<Tuple> = None;
        {
            let Some(instance) = self.instances.get_mut(&qid) else { return false };
            let program = Arc::clone(&instance.spec.program);
            let relation = tuple.rel();

            // Aggregate-selection pruning (per next-hop granularity).
            let mut admitted = true;
            if instance.spec.aggregate_selections {
                if let Some(sel) =
                    program.agg_selections.iter().find(|s| s.input_relation == relation)
                {
                    match Self::prune_pass(instance, sel, &program, &tuple) {
                        PruneDecision::Admit => {}
                        PruneDecision::Dominated => {
                            pruned = true;
                            admitted = false;
                        }
                        PruneDecision::TombstoneCollapsed => {
                            collapsed = true;
                            admitted = false;
                        }
                    }
                }
            }

            if admitted {
                let loc_field = program.catalog.location_field(relation);
                let home = tuple.node_at(loc_field);
                let replicated = program.is_replicated(relation);

                match home {
                    Some(h) if h != my_id && !replicated => {
                        outbound.entry(h).or_default().push(tuple.clone());
                    }
                    _ => {
                        let outcome = instance.db.insert(tuple.clone());
                        if outcome.added {
                            stored = true;
                            instance.pending.entry(relation).or_default().push(tuple.clone());

                            // Ship copies required by remote joins (the
                            // Figure 2 clouds).
                            for ship in program.ships_for(relation) {
                                let Some(dest) = tuple.node_at(ship.target_field) else {
                                    continue;
                                };
                                let cache_tuple =
                                    Tuple::from_rel(ship.cache_relation, tuple.fields().to_vec());
                                if dest == my_id {
                                    if instance.db.insert(cache_tuple.clone()).added {
                                        instance
                                            .pending
                                            .entry(ship.cache_relation)
                                            .or_default()
                                            .push(cache_tuple);
                                    }
                                } else {
                                    outbound.entry(dest).or_default().push(cache_tuple);
                                }
                            }

                            // Multi-query sharing: completed best paths go
                            // into the shared cache.
                            if instance.spec.share_results
                                && program.result_relations.contains(&relation)
                            {
                                cache_entry =
                                    Self::cache_entry_from_result(instance.cache_rel, &tuple);
                            }
                        }
                    }
                }
            }
        }
        if pruned {
            self.stats.tuples_pruned += 1;
        }
        if collapsed {
            self.stats.tuples_pruned += 1;
            self.stats.tombstones_collapsed += 1;
        }
        if stored {
            self.stats.tuples_derived += 1;
        }
        if let Some(cache) = cache_entry {
            self.shared.insert(cache);
        }
        stored
    }

    /// Aggregate-selection admission check. Keeps: updates of the current
    /// best (same identity key), and tuples at least as good as the best
    /// known for their prune key. The prune key extends the aggregate's
    /// group with every node-valued field outside the group and the first
    /// hop of any path-vector field, so one best route is retained *per next
    /// hop* (needed for recovery after failures, §8).
    ///
    /// Infinite-cost derivations are special-cased: an ∞ tombstone's only
    /// job is invalidating the stored/shipped best path and its cache
    /// entries (§8 rule NR3). Since every ∞ derivation ties in the
    /// aggregate, admitting them all would enumerate the whole failed path
    /// space; instead only the tombstones that actually invalidate
    /// something this node stored or shipped are admitted — one per
    /// (destination, next-hop) prune group plus one per stale stored tuple
    /// — and every other ∞ derivation collapses. Failure recovery becomes a
    /// single invalidation wave over the existing routing state instead of
    /// an exponential re-exploration.
    fn prune_pass(
        instance: &mut Instance,
        sel: &AggSelection,
        program: &LocalizedProgram,
        tuple: &Tuple,
    ) -> PruneDecision {
        let Some(value) = tuple.field(sel.value_field).cloned() else {
            return PruneDecision::Admit;
        };
        let mut group: Vec<Value> =
            sel.group_fields.iter().filter_map(|&i| tuple.field(i).cloned()).collect();
        for (i, field) in tuple.fields().iter().enumerate() {
            if i == sel.value_field || sel.group_fields.contains(&i) {
                continue;
            }
            match field {
                Value::Node(_) => group.push(field.clone()),
                Value::Path(p) if p.len() >= 2 => group.push(Value::Node(p.nodes()[1])),
                _ => {}
            }
        }
        let key = (tuple.rel(), group);
        let key_fields = program.catalog.key_fields(tuple.rel(), tuple.arity());
        let identity: Vec<Value> =
            key_fields.iter().filter_map(|&i| tuple.field(i).cloned()).collect();

        if value.is_infinite_cost() {
            // Tombstone of the group's shipped/stored best: record the ∞ so
            // any finite alternative (other next hop) can take the slot,
            // and let the invalidation propagate.
            let invalidates_best = matches!(
                instance.prune.get(&key),
                Some((best_id, best_val)) if *best_id == identity && !best_val.is_infinite_cost()
            );
            if invalidates_best {
                // Finite → ∞ transition of the group's recorded best: the
                // entry becomes evictable once the wave has run.
                instance.prune_tombstones += 1;
                instance.prune.insert(key, (identity, value));
                return PruneDecision::Admit;
            }
            // Tombstone of a dominated-but-stored tuple (an older route this
            // node still holds): admit so the keyed upsert poisons the stale
            // entry, but without touching the group best.
            let poisons_stored = instance
                .db
                .get_by_key(&tuple.key(&key_fields))
                .map(|stored| stored != tuple)
                .unwrap_or(false);
            if poisons_stored {
                return PruneDecision::Admit;
            }
            return PruneDecision::TombstoneCollapsed;
        }

        let better_or_equal = |a: &Value, b: &Value| -> bool {
            use std::cmp::Ordering::*;
            match sel.func {
                dr_datalog::ast::AggFunc::Min => a.compare_numeric(b) != Greater,
                dr_datalog::ast::AggFunc::Max => a.compare_numeric(b) != Less,
                _ => true,
            }
        };

        match instance.prune.get(&key) {
            None => {
                instance.prune.insert(key, (identity, value));
                PruneDecision::Admit
            }
            Some((best_id, best_val)) => {
                let admit = *best_id == identity // update (possibly worse) of the current best
                    || better_or_equal(&value, best_val);
                if admit {
                    // `value` is finite here (the ∞ path returned above): a
                    // revived group stops being a tombstone.
                    if best_val.is_infinite_cost() {
                        instance.prune_tombstones = instance.prune_tombstones.saturating_sub(1);
                    }
                    instance.prune.insert(key, (identity, value));
                    PruneDecision::Admit
                } else {
                    PruneDecision::Dominated
                }
            }
        }
    }

    /// Build a `<cache>(@N, D, P, C)` entry from a 4-ary result tuple.
    fn cache_entry_from_result(cache: RelId, tuple: &Tuple) -> Option<Tuple> {
        if tuple.arity() != 4 {
            return None;
        }
        let s = tuple.node_at(0)?;
        let d = tuple.node_at(1)?;
        let p = tuple.field(2)?.as_path()?.clone();
        let c = tuple.field(3)?.as_cost()?;
        Some(Tuple::from_rel(
            cache,
            vec![Value::Node(s), Value::Node(d), Value::Path(p), Value::Cost(c)],
        ))
    }

    fn flush_outbound(
        &mut self,
        ctx: &mut Context<'_, NetMsg>,
        qid: QueryId,
        outbound: BTreeMap<NodeId, Vec<Tuple>>,
    ) {
        for (dest, items) in outbound {
            if items.is_empty() {
                continue;
            }
            if dest == self.node {
                // Tuples that resolved back to ourselves (e.g. relayed home
                // deliveries): fold them straight in.
                let mut again = BTreeMap::new();
                for tuple in items {
                    self.route_tuple(qid, tuple, &mut again);
                }
                self.flush_outbound(ctx, qid, again);
                continue;
            }
            self.stats.tuples_sent += items.len() as u64;
            // Nodes only exchange messages with direct neighbors. Cache
            // shipping (the Figure 2 clouds) always targets a neighbor by
            // construction; home shipping of derived tuples usually does
            // too (right recursion ships one hop back toward the source).
            // When the home is further away — e.g. DSR-style left recursion
            // storing paths at the source — the tuple is relayed hop by hop
            // along the reverse of its own path vector, exactly the
            // "reverse path" shipping the paper describes for DSR and
            // Best-Path-Pairs.
            let next_hop = if self.neighbors.contains_key(&dest) {
                Some(dest)
            } else {
                Self::relay_hop(self.node, dest, &items, &self.neighbors)
            };
            let msg = NetMsg::Tuples { qid, items };
            let size = msg.wire_size();
            match next_hop {
                Some(hop) => ctx.send(hop, msg, size),
                // No way to make progress toward the home node: drop.
                None => ctx.send(dest, msg, size),
            }
        }
    }

    /// Find a neighbor one step closer to `dest` along the path vector of
    /// any of the tuples being shipped.
    fn relay_hop(
        me: NodeId,
        dest: NodeId,
        items: &[Tuple],
        neighbors: &BTreeMap<NodeId, Cost>,
    ) -> Option<NodeId> {
        for tuple in items {
            for field in tuple.fields() {
                let Value::Path(path) = field else { continue };
                let nodes = path.nodes();
                let me_pos = nodes.iter().position(|&n| n == me);
                let dest_pos = nodes.iter().position(|&n| n == dest);
                if let (Some(a), Some(b)) = (me_pos, dest_pos) {
                    if a == b {
                        continue;
                    }
                    let step = if b > a { a + 1 } else { a - 1 };
                    let hop = nodes[step];
                    if neighbors.contains_key(&hop) {
                        return Some(hop);
                    }
                }
            }
        }
        None
    }

    /// One batch: run the local semi-naïve fixpoint of every installed query
    /// that has pending deltas, then ship the produced tuples.
    fn process_batches(&mut self, ctx: &mut Context<'_, NetMsg>) {
        self.stats.batches += 1;
        let qids: Vec<QueryId> = self.instances.keys().copied().collect();
        for qid in qids {
            let mut outbound: BTreeMap<NodeId, Vec<Tuple>> = BTreeMap::new();
            let mut cache_installs: Vec<(NodeId, NetMsg)> = Vec::new();
            // Local fixpoint: keep draining deltas until nothing new is
            // produced locally.
            while let Some(instance) = self.instances.get_mut(&qid) {
                if !instance.has_pending() {
                    break;
                }
                if !instance.replanned && instance.db.total_tuples() >= REPLAN_MIN_ROWS {
                    for (rel, field) in instance.replan() {
                        self.shared.declare_index(rel, field);
                    }
                }
                let deltas = std::mem::take(&mut instance.pending);

                let mut derived: Vec<Tuple> = Vec::new();
                // Recomputed aggregate outputs are forced into the delta set
                // even when their value is unchanged: the inputs of their
                // group changed (e.g. a path was poisoned to ∞), so rules
                // consuming the aggregate must re-join against the updated
                // inputs or they would keep serving stale results (§8).
                let mut forced_deltas: Vec<Tuple> = Vec::new();
                {
                    let source = Overlay { local: &instance.db, shared: &self.shared };
                    for plan in instance.compiled.iter() {
                        let rule = plan.rule();
                        if rule.head.has_aggregate() {
                            // Aggregates are recomputed from the full local
                            // table whenever any of their inputs changed —
                            // including negated body atoms (a delta on a
                            // lower-stratum negated relation changes which
                            // rows feed the aggregate).
                            let touched = plan
                                .positive_rels()
                                .iter()
                                .chain(plan.neg_rels())
                                .any(|r| deltas.contains_key(r));
                            if !touched {
                                continue;
                            }
                            if let Ok(raw) = plan.evaluate(&self.builtins, &source, None) {
                                if let Ok(grouped) =
                                    apply_aggregate(&rule.head, plan.head_rel(), &raw)
                                {
                                    forced_deltas.extend(grouped.iter().cloned());
                                    derived.extend(grouped);
                                }
                            }
                            continue;
                        }
                        for (i, rel) in plan.positive_rels().iter().enumerate() {
                            let Some(delta) = deltas.get(rel) else { continue };
                            if delta.is_empty() {
                                continue;
                            }
                            if let Ok(tuples) =
                                plan.evaluate(&self.builtins, &source, Some((i, delta)))
                            {
                                derived.extend(tuples);
                            }
                        }
                    }
                }

                for tuple in forced_deltas {
                    // Only force a re-join when the tuple is already the
                    // stored value (a genuinely new/changed value is routed
                    // below and becomes a delta anyway).
                    let Some(instance) = self.instances.get_mut(&qid) else { break };
                    if instance.db.contains(&tuple) {
                        instance.pending.entry(tuple.rel()).or_default().push(tuple);
                    }
                }
                for tuple in derived {
                    let stored = self.route_tuple(qid, tuple.clone(), &mut outbound);
                    // Reverse-path cache installation for shared queries.
                    if stored {
                        if let Some((next, msg)) = self.reverse_path_install(qid, &tuple) {
                            cache_installs.push((next, msg));
                        }
                    }
                }
            }
            // The batch quiesced: retire prune-map state whose backing
            // tuples are gone, so churn cannot grow the map monotonically.
            if let Some(instance) = self.instances.get_mut(&qid) {
                self.stats.prune_evicted += instance.evict_stale_prune_groups();
            }
            self.flush_outbound(ctx, qid, outbound);
            for (next, msg) in cache_installs {
                let size = msg.wire_size();
                ctx.send(next, msg, size);
            }
        }
    }

    /// The first hop of a reverse-path cache installation for a freshly
    /// stored tuple, when `qid` shares results and the tuple is one of its
    /// results (§7.3).
    fn reverse_path_install(&self, qid: QueryId, tuple: &Tuple) -> Option<(NodeId, NetMsg)> {
        let instance = self.instances.get(&qid)?;
        if !instance.spec.share_results
            || !instance.spec.program.result_relations.contains(&tuple.rel())
        {
            return None;
        }
        self.cache_install_message(instance.cache_rel, tuple)
    }

    /// Build the first hop of a reverse-path cache installation for a
    /// freshly stored best-path result.
    fn cache_install_message(&self, cache: RelId, tuple: &Tuple) -> Option<(NodeId, NetMsg)> {
        if tuple.arity() != 4 || tuple.node_at(0) != Some(self.node) {
            return None;
        }
        let dest = tuple.node_at(1)?;
        let path = tuple.field(2)?.as_path()?;
        let cost = tuple.field(3)?.as_cost()?;
        if path.len() < 3 || cost.is_infinite() {
            // One-hop paths have no intermediate nodes to cache at.
            return None;
        }
        let next = path.nodes()[1];
        let link_cost = self.neighbors.get(&next).copied().unwrap_or(Cost::ZERO);
        let remaining = Cost::new((cost.value() - link_cost.value()).max(0.0));
        Some((
            next,
            NetMsg::CacheInstall {
                cache,
                dest,
                suffix: path.nodes()[1..].to_vec(),
                cost: remaining,
            },
        ))
    }

    fn handle_cache_install(
        &mut self,
        ctx: &mut Context<'_, NetMsg>,
        cache: RelId,
        dest: NodeId,
        suffix: Vec<NodeId>,
        cost: Cost,
    ) {
        if suffix.first() != Some(&self.node) || suffix.len() < 2 {
            return;
        }
        let path = dr_types::PathVector::from_nodes(suffix.clone());
        self.shared.insert(Tuple::from_rel(
            cache,
            vec![Value::Node(self.node), Value::Node(dest), Value::Path(path), Value::Cost(cost)],
        ));
        if suffix.len() > 2 {
            let next = suffix[1];
            let link_cost = self.neighbors.get(&next).copied().unwrap_or(Cost::ZERO);
            let remaining = Cost::new((cost.value() - link_cost.value()).max(0.0));
            let msg =
                NetMsg::CacheInstall { cache, dest, suffix: suffix[1..].to_vec(), cost: remaining };
            let size = msg.wire_size();
            ctx.send(next, msg, size);
        }
    }

    /// True when a received tuple's relation tag is one this query's symbol
    /// catalog binds (or the deployment-wide neighbor-table relation): the
    /// decode step of the wire format.
    fn tuple_decodes(&self, qid: QueryId, tuple: &Tuple) -> bool {
        let rel = tuple.rel();
        if rel == self.link_rel {
            return true;
        }
        match self.instances.get(&qid) {
            Some(instance) => {
                instance.spec.program.rel_catalog.contains(rel) || rel == instance.cache_rel
            }
            None => false,
        }
    }

    /// Apply a neighbor-table change to every installed query (a keyed
    /// upsert of the corresponding `link` tuple, which the next batch folds
    /// into the dataflow — §8's incremental recomputation).
    fn apply_link_update(&mut self, ctx: &mut Context<'_, NetMsg>, neighbor: NodeId, cost: Cost) {
        self.neighbors.insert(neighbor, cost);
        let qids: Vec<QueryId> = self.instances.keys().copied().collect();
        for qid in qids {
            let link = self.link_tuple(neighbor, cost);
            let mut outbound = BTreeMap::new();
            self.route_tuple(qid, link, &mut outbound);
            self.flush_outbound(ctx, qid, outbound);
        }
        if !self.instances.is_empty() {
            self.schedule_batch(ctx);
        }
    }
}

impl NodeApp for QueryProcessor {
    type Message = NetMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        self.node = ctx.id();
        self.neighbors =
            ctx.neighbors().into_iter().map(|(nb, params)| (nb, params.cost)).collect();
    }

    fn on_join(&mut self, ctx: &mut Context<'_, NetMsg>) {
        // Warm restart: refresh the neighbor table and replay it into every
        // installed query so routes through this node are recomputed.
        self.node = ctx.id();
        let fresh: Vec<(NodeId, Cost)> =
            ctx.neighbors().into_iter().map(|(nb, params)| (nb, params.cost)).collect();
        for (nb, cost) in fresh {
            self.apply_link_update(ctx, nb, cost);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NetMsg>, from: NodeId, msg: NetMsg) {
        match msg {
            NetMsg::Install { qid } => {
                // Lazy teardown repair: a peer that missed the teardown
                // flood (it was down at the time) and still advertises the
                // dead query learns of the teardown the moment it talks to
                // anyone who saw it.
                if self.torn_down.contains(&qid) {
                    let reply = NetMsg::Teardown { qid };
                    let size = reply.wire_size();
                    ctx.send(from, reply, size);
                    return;
                }
                self.install(ctx, qid);
            }
            NetMsg::Tuples { qid, items } => {
                if self.torn_down.contains(&qid) {
                    let reply = NetMsg::Teardown { qid };
                    let size = reply.wire_size();
                    ctx.send(from, reply, size);
                    return;
                }
                // Piggy-backed installation: tuples for an unknown query
                // install it on the fly (§3.5).
                if !self.instances.get(&qid).map(|i| i.installed).unwrap_or(false) {
                    self.install(ctx, qid);
                }
                self.stats.tuples_received += items.len() as u64;
                let mut outbound = BTreeMap::new();
                let mut cache_installs = Vec::new();
                for tuple in items {
                    // Decode the shipped relation tag against the query's
                    // symbol catalog: a tuple whose id the catalog does not
                    // bind (a stale id from an older query version, or
                    // garbage) is dropped instead of silently creating a
                    // phantom table.
                    if !self.tuple_decodes(qid, &tuple) {
                        self.stats.tuples_rejected += 1;
                        continue;
                    }
                    let stored = self.route_tuple(qid, tuple.clone(), &mut outbound);
                    // Results of shared queries usually arrive here (shipped
                    // home from the node that derived them); kick off the
                    // reverse-path cache installation of §7.3.
                    if stored {
                        if let Some(install) = self.reverse_path_install(qid, &tuple) {
                            cache_installs.push(install);
                        }
                    }
                }
                self.flush_outbound(ctx, qid, outbound);
                for (next, msg) in cache_installs {
                    let size = msg.wire_size();
                    ctx.send(next, msg, size);
                }
                self.schedule_batch(ctx);
            }
            NetMsg::Teardown { qid } => {
                self.teardown(ctx, qid);
            }
            NetMsg::CacheInstall { cache, dest, suffix, cost } => {
                self.handle_cache_install(ctx, cache, dest, suffix, cost);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg>, _timer: u64) {
        self.batch_scheduled = false;
        self.process_batches(ctx);
        // If processing produced new pending work (e.g. tuples delivered to
        // ourselves), schedule another round.
        if self.instances.values().any(Instance::has_pending) {
            self.schedule_batch(ctx);
        }
    }

    fn on_link_event(&mut self, ctx: &mut Context<'_, NetMsg>, event: LinkEvent) {
        match event {
            LinkEvent::MetricChanged { neighbor, params } => {
                self.apply_link_update(ctx, neighbor, params.cost);
            }
            LinkEvent::NeighborDown { neighbor } => {
                self.apply_link_update(ctx, neighbor, Cost::INFINITY);
            }
            LinkEvent::NeighborUp { neighbor, params } => {
                self.apply_link_update(ctx, neighbor, params.cost);
            }
        }
    }
}
