//! The per-node query processor (the paper's Figure 1 box).
//!
//! Each [`QueryProcessor`] is a [`NodeApp`] driven by the network simulator.
//! It keeps the node's neighbor table in sync with link events from the
//! routing infrastructure, accepts query installations (disseminated by
//! flooding, with piggy-backed installation when tuples for a not-yet-known
//! query arrive first — §3.5), and executes every installed query as a
//! distributed dataflow:
//!
//! * received and locally derived tuples are batched; every
//!   `batch_interval` (200 ms in the paper's experiments, §9.1.1) the node
//!   runs a local semi-naïve fixpoint over its localized rules,
//! * derived tuples whose home is another node are shipped there, and
//!   tuples required by remote joins are shipped to the join's anchor node
//!   according to the program's [`crate::localize::ShipSpec`]s (the
//!   Figure 2 "clouds"),
//! * aggregate selections (§7.1) prune dominated tuples before they are
//!   stored or shipped — with per-next-hop granularity so that alternate
//!   routes survive for failure recovery (§8),
//! * link failures and metric changes arrive as neighbor-table updates and
//!   are folded into the same incremental dataflow (cost-∞ poisoning),
//! * completed best paths can be written into the node-local, cross-query
//!   `bestPathCache` table and installed along the reverse path, enabling
//!   the multi-query sharing of §7.3.

use crate::localize::LocalizedProgram;
use crate::query::{QueryId, QueryLibrary, QuerySpec};
use dr_datalog::builtins::Builtins;
use dr_datalog::database::{Database, Scan};
use dr_datalog::eval::{apply_aggregate, FiringLog, RelationSource, RuleEval};
use dr_datalog::rewrite::AggSelection;
use dr_netsim::{Context, LinkEvent, NodeApp, SimDuration};
use dr_provenance::{ProvId, ProvRecord, ProvRef, ProvStore};
use dr_types::{Cost, NodeId, RelId, Tuple, TupleKey, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Wire tag linking a shipped tuple back to its derivation record:
/// `Some((node, id))` points at the record `id` in `node`'s provenance
/// arena; `None` marks a base fact (or a deployment not recording
/// provenance at all).
pub type ProvTag = Option<(NodeId, ProvId)>;

/// Messages exchanged between query processors.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// Install (disseminate) a query known to the shared [`QueryLibrary`].
    Install {
        /// The query being installed.
        qid: QueryId,
    },
    /// A batch of tuples addressed to the receiving node. Each tuple's
    /// relation travels as its fixed-width interned [`RelId`] instead of
    /// the relation name; the receiver validates every id against the
    /// query's symbol catalog (`rel_catalog`) and drops unbound ids. In
    /// this single-process simulation the interned id *is* the wire
    /// representation; a multi-process transport must translate through
    /// the catalog's dense wire tags (`RelCatalog::wire_tag` /
    /// `RelCatalog::decode`) at the boundary instead, since raw interner
    /// ids are only meaningful within one process.
    Tuples {
        /// The query these tuples belong to (also selects the catalog the
        /// receiver validates the relation ids against).
        qid: QueryId,
        /// Sequencing header of this batch on the (sender, receiver, query)
        /// stream, when the deployment runs the reliable transport. `None`
        /// is the legacy fire-and-forget path: no acknowledgment, no
        /// retransmission, no duplicate suppression.
        seq: Option<StreamSeq>,
        /// The shipped tuples.
        items: Vec<Tuple>,
        /// Per-tuple provenance tags, parallel to `items`, linking each
        /// shipped tuple back to the record of the firing that derived it
        /// (`None` entries are base facts). Empty — costing zero wire
        /// bytes — whenever the query does not record provenance.
        provs: Vec<ProvTag>,
    },
    /// Cumulative acknowledgment of sequence-numbered [`NetMsg::Tuples`]
    /// batches: every batch with sequence number below `cumulative` on the
    /// (sender, receiver, query) stream has been applied.
    Ack {
        /// The acknowledged query stream.
        qid: QueryId,
        /// The next sequence number the receiver expects.
        cumulative: u64,
    },
    /// Ask the sender of tuples for an unknown query to re-offer its
    /// installation (repair of a missed `Install` flood — the counterpart
    /// of the lazy teardown repair).
    QueryRequest {
        /// The query being requested.
        qid: QueryId,
    },
    /// Tear down a query: every node that handles this removes the query's
    /// instance (stored tuples, pending buffers, prune state, compiled
    /// plans), drops the shared cache relation when the query was its last
    /// user, and forwards the teardown to its neighbors exactly once.
    Teardown {
        /// The query being torn down.
        qid: QueryId,
    },
    /// Ask `qid`'s provenance arena at the receiving node for derivation
    /// record `id` (on-demand resolution of a [`ProvRef::Remote`] pointer
    /// while materializing a distributed proof tree).
    ProvFetch {
        /// The query whose provenance store holds the record.
        qid: QueryId,
        /// The arena id being resolved.
        id: ProvId,
        /// The node the reply should be sent to (the holder of the remote
        /// pointer — a direct neighbor of the record's owner, since that is
        /// who the tagged tuple was shipped to).
        requester: NodeId,
    },
    /// Reply to a [`NetMsg::ProvFetch`]: the record, or `None` when it has
    /// been pruned (or the query is gone). `Local` body refs inside the
    /// record are relative to `node`, the replying owner.
    ProvReply {
        /// The query the record belongs to.
        qid: QueryId,
        /// The node that owns (and replied with) the record.
        node: NodeId,
        /// The arena id that was asked for.
        id: ProvId,
        /// The record, if it still exists.
        record: Option<Box<ProvRecord>>,
    },
    /// Install a cached best path along the reverse path (multi-query
    /// sharing, §7.3). Forwarded hop by hop along `suffix`.
    CacheInstall {
        /// Cross-query cache relation to install into.
        cache: RelId,
        /// Final destination of the cached path.
        dest: NodeId,
        /// Remaining path from the receiving node to `dest` (first element
        /// is the receiving node itself).
        suffix: Vec<NodeId>,
        /// Cost of the remaining path.
        cost: Cost,
    },
}

/// Sequencing header carried by every reliable-transport tuple batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSeq {
    /// Sequence number of this batch on its (sender, receiver, query)
    /// stream.
    pub seq: u64,
    /// Lowest sequence number the sender still retains for retransmission.
    /// Everything below `base` has either been acknowledged or abandoned
    /// (retry budget exhausted), so a receiver waiting on a gap below
    /// `base` must skip it: those batches are never coming, and a low-rate
    /// stream would otherwise stay wedged behind the hole forever — e.g.
    /// a batch lost into a failed node's down-time blocking the fresh
    /// link-state copies shipped after the node rejoins.
    pub base: u64,
}

impl NetMsg {
    /// Approximate wire size used for bandwidth accounting. Relation
    /// identity costs the fixed-width [`dr_types::rel::WIRE_TAG_BYTES`]
    /// tag (inside [`Tuple::wire_size`]) rather than `name.len()` bytes
    /// per tuple.
    pub fn wire_size(&self) -> usize {
        match self {
            NetMsg::Install { .. } | NetMsg::Teardown { .. } | NetMsg::QueryRequest { .. } => 64,
            NetMsg::Tuples { seq, items, provs, .. } => {
                // The sequencing header costs 20 bytes (tag + seq + base)
                // only when the reliable transport is on, so fire-and-forget
                // deployments keep their exact legacy wire accounting. The
                // same holds for provenance tags: the vector is empty unless
                // the query records provenance, so non-recording deployments
                // pay zero extra bytes.
                let seq_bytes = if seq.is_some() { 20 } else { 0 };
                let prov_bytes =
                    provs.iter().map(|tag| if tag.is_some() { 13 } else { 1 }).sum::<usize>();
                16 + seq_bytes + prov_bytes + items.iter().map(Tuple::wire_size).sum::<usize>()
            }
            NetMsg::Ack { .. } => 24,
            NetMsg::ProvFetch { .. } => 64,
            NetMsg::ProvReply { record, .. } => {
                let record_bytes = record.as_ref().map_or(0, |rec| {
                    rec.tuple.wire_size()
                        + rec.body.iter().map(|(t, _)| t.wire_size() + 13).sum::<usize>()
                });
                64 + record_bytes
            }
            NetMsg::CacheInstall { suffix, .. } => {
                24 + dr_types::rel::WIRE_TAG_BYTES + 4 * suffix.len()
            }
        }
    }
}

/// Configuration shared by every processor in a deployment.
#[derive(Debug, Clone)]
pub struct ProcessorConfig {
    /// The query library all nodes share.
    pub library: Arc<QueryLibrary>,
    /// How often buffered tuples are processed (the paper uses 200 ms).
    pub batch_interval: SimDuration,
    /// Name of the neighbor-table relation exposed to queries.
    pub link_relation: String,
    /// Loss-tolerant tuple transport. `None` (the default) is the legacy
    /// fire-and-forget wire: batches carry no sequence numbers, nothing is
    /// acknowledged or retransmitted, and the wire accounting is unchanged.
    /// `Some` turns on per-(peer, query) sequence-numbered streams with
    /// cumulative acks, retransmission and duplicate suppression — required
    /// for exact result multisets over lossy links.
    pub reliability: Option<ReliabilityConfig>,
}

impl ProcessorConfig {
    /// Standard configuration around a query library.
    pub fn new(library: Arc<QueryLibrary>) -> ProcessorConfig {
        ProcessorConfig {
            library,
            batch_interval: SimDuration::from_millis(200),
            link_relation: "link".to_string(),
            reliability: None,
        }
    }
}

/// Tuning knobs of the loss-tolerant tuple transport.
///
/// The transport is hop-by-hop: each processor keeps one sequence-numbered
/// stream per (direct-neighbor hop, query). Unacked batches are resent on a
/// timeout with exponential backoff; after `max_retries` the batch is
/// abandoned and the soft-state repair paths (periodic link refresh, lazy
/// query repair) are left to reconcile whatever the loss broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Base retransmission timeout; retry `n` waits `rto · 2^min(n, 6)`.
    pub retransmit_timeout: SimDuration,
    /// Retransmissions attempted before a batch is abandoned. At 20% loss
    /// the default of 8 leaves a residual loss below 3·10⁻⁶ per batch.
    pub max_retries: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> ReliabilityConfig {
        ReliabilityConfig { retransmit_timeout: SimDuration::from_millis(500), max_retries: 8 }
    }
}

/// Runtime counters of one processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessorStats {
    /// Tuples received from other nodes.
    pub tuples_received: u64,
    /// Tuples shipped to other nodes.
    pub tuples_sent: u64,
    /// Tuples derived locally (after pruning).
    pub tuples_derived: u64,
    /// Tuples suppressed by aggregate selections.
    pub tuples_pruned: u64,
    /// ∞-cost tombstones collapsed during incremental maintenance (§8):
    /// dominated infinite-cost derivations dropped instead of being stored,
    /// shipped, and re-joined.
    pub tombstones_collapsed: u64,
    /// Received tuples dropped because their relation tag is not bound by
    /// the query's symbol catalog (a stale or corrupt wire id).
    pub tuples_rejected: u64,
    /// Aggregate-selection prune-state entries evicted because their
    /// recorded best is an ∞-cost tombstone whose invalidation wave has run
    /// (keeps the per-query prune map bounded under churn). Finite entries
    /// are never evicted — they may back *shipped* bests whose next
    /// tombstone must still pass the admission gate.
    pub prune_evicted: u64,
    /// Number of batch-processing rounds executed.
    pub batches: u64,
    /// Sequence-numbered tuple batches resent by the reliable transport.
    pub retransmits: u64,
    /// Duplicate tuple batches discarded by the reliable transport (already
    /// applied or already buffered).
    pub dups_dropped: u64,
    /// Cumulative acknowledgments sent by the reliable transport.
    pub acks_sent: u64,
    /// Sequence gaps skipped by the reliable transport because the sender
    /// advertised it had abandoned the missing batches (`StreamSeq::base`
    /// moved past them). Soft-state repair owns whatever they carried.
    pub gaps_skipped: u64,
    /// Derivation records written into provenance arenas (zero unless a
    /// query was issued with provenance recording on).
    pub prov_recorded: u64,
    /// Provenance-record fetches served for remote explanation requests.
    pub prov_fetches: u64,
}

impl ProcessorStats {
    /// Accumulate another processor's counters into this one (used by the
    /// harness to report deployment-wide totals).
    pub fn merge(&mut self, other: &ProcessorStats) {
        self.tuples_received += other.tuples_received;
        self.tuples_sent += other.tuples_sent;
        self.tuples_derived += other.tuples_derived;
        self.tuples_pruned += other.tuples_pruned;
        self.tombstones_collapsed += other.tombstones_collapsed;
        self.tuples_rejected += other.tuples_rejected;
        self.prune_evicted += other.prune_evicted;
        self.batches += other.batches;
        self.retransmits += other.retransmits;
        self.dups_dropped += other.dups_dropped;
        self.acks_sent += other.acks_sent;
        self.gaps_skipped += other.gaps_skipped;
        self.prov_recorded += other.prov_recorded;
        self.prov_fetches += other.prov_fetches;
    }
}

/// Sizes of everything a node currently stores on behalf of queries.
///
/// The residue audit of the query lifecycle: tearing a query down must
/// return every counter to its pre-issue value, otherwise a long-lived
/// service leaks a little engine state per issue→teardown cycle. The
/// teardown regression tests pin this by comparing footprints taken before
/// issuing and after tearing down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateFootprint {
    /// Installed query instances.
    pub instances: usize,
    /// Tuples stored across all per-query databases.
    pub stored_tuples: usize,
    /// Tuples waiting in per-query pending (delta) buffers.
    pub pending_tuples: usize,
    /// Aggregate-selection prune-state entries across all queries.
    pub prune_entries: usize,
    /// Relations materialized in the shared (cross-query) store.
    pub shared_relations: usize,
    /// Tuples held by the shared (cross-query) store.
    pub shared_tuples: usize,
    /// Provenance-store residue across all queries: live derivation
    /// records, tuple→provenance bindings, and cached fetched records.
    /// Zero for queries that do not record provenance; must return to zero
    /// when a recording query is torn down (Explain state must not leak
    /// across the query lifecycle).
    pub prov_records: usize,
}

impl StateFootprint {
    /// Accumulate another node's footprint (deployment-wide totals).
    pub fn merge(&mut self, other: &StateFootprint) {
        self.instances += other.instances;
        self.stored_tuples += other.stored_tuples;
        self.pending_tuples += other.pending_tuples;
        self.prune_entries += other.prune_entries;
        self.shared_relations += other.shared_relations;
        self.shared_tuples += other.shared_tuples;
        self.prov_records += other.prov_records;
    }

    /// True when nothing is stored at all.
    pub fn is_empty(&self) -> bool {
        *self == StateFootprint::default()
    }
}

/// Local-store row count below which an instance keeps its static plans.
///
/// Re-planning compiles every rule of the query again (a few µs per rule,
/// per node); on stores this small a bad join order costs less than the
/// compile, so short-lived pair queries on sparse nodes would pay more to
/// plan than to run. Stores that grow past the floor — protocol-style
/// queries that accumulate paths and advertisements — re-plan once and
/// amortize the compile over every subsequent batch.
const REPLAN_MIN_ROWS: usize = 192;

/// Consecutive idle, tombstone-free batches required before a queued
/// revival round may run. A batch that starts with no pending deltas only
/// proves the invalidation wave has passed *this node*; on dense overlays
/// a wave keeps bouncing between farther nodes for many batch intervals,
/// and reviving into it re-floods routes the in-flight poisons are about
/// to kill — each re-flood feeds the wave new tombstones, whose arrival
/// queues further revivals, a self-sustaining storm that melts the 36-node
/// dense-overlay churn figure. Demanding a short window with no ∞
/// tombstone sightings either is a cheap local proxy for "the wave has
/// died down globally", and it spaces repeat rounds automatically: a round
/// drains the whole queue, so the queue can only refill through new
/// tombstones, which reset this very counter.
const REVIVE_QUIET_BATCHES: u32 = 2;

/// Per-installed-query state.
struct Instance {
    spec: Arc<QuerySpec>,
    db: Database,
    /// Compiled evaluation plans, one per localized rule (same order as
    /// `spec.program.rules`). Installation starts from the spec's shared
    /// statically-compiled plans (every local table is empty then, so they
    /// are identical across nodes); once the local store grows past
    /// [`REPLAN_MIN_ROWS`] the instance re-plans once against real
    /// cardinalities and swaps in its own vector (see [`Instance::replan`]).
    compiled: Arc<Vec<RuleEval>>,
    /// Whether the one-shot cardinality re-plan has happened.
    replanned: bool,
    /// Deltas accumulated since the last batch, keyed by interned relation.
    pending: HashMap<RelId, Vec<Tuple>>,
    /// Aggregate-selection state: (input relation, prune key) → (identity
    /// key of current best, its value). Bounded: entries whose backing
    /// stored tuple disappears are evicted (see
    /// [`Instance::evict_stale_prune_groups`]).
    prune: HashMap<(RelId, Vec<Value>), (Vec<Value>, Value)>,
    /// Interned id of the spec's cross-query cache relation.
    cache_rel: RelId,
    /// Number of `prune` entries whose recorded best is an ∞ tombstone.
    /// Maintained by `prune_pass` so the eviction sweep can be skipped
    /// entirely (steady state holds thousands of finite entries and zero
    /// tombstones).
    prune_tombstones: usize,
    /// Revival requests: `(input relation, its aggregate value field,
    /// required (field, value) bindings)` for prune groups whose recorded
    /// best was just poisoned to ∞. Semi-naïve evaluation alone cannot
    /// repair such a group: the surviving alternatives are *stored* tuples,
    /// not deltas, so the joins that would re-derive (and re-ship) them
    /// never re-fire. Each request re-injects this node's stored finite
    /// tuples matching the dead group's non-location columns as deltas at
    /// the next batch round (see [`QueryProcessor::process_revivals`]).
    revive: std::collections::HashSet<ReviveRequest>,
    /// Set by `prune_pass` whenever an ∞ tombstone reaches this instance —
    /// the signal that an invalidation wave is still active nearby. Cleared
    /// (into `revive_quiet = 0`) at the start of every batch.
    poison_seen: bool,
    /// Consecutive batches that started idle with no tombstone sightings.
    /// Queued revivals only run once this reaches
    /// [`REVIVE_QUIET_BATCHES`].
    revive_quiet: u32,
    /// Derivation-provenance arena, allocated only when the spec asks for
    /// recording ([`QuerySpec::record_provenance`]). `None` means the query
    /// runs the exact pre-provenance hot path: no store, no per-firing
    /// bookkeeping, empty wire tags. Owned by the instance so teardown
    /// drops every record with the rest of the query's state.
    prov: Option<ProvStore>,
    installed: bool,
}

/// A revival request: `(input relation, its aggregate value field, required
/// (field, value) bindings)` — see [`Instance::revive`].
type ReviveRequest = (RelId, usize, Vec<(usize, Value)>);

impl Instance {
    fn new(spec: Arc<QuerySpec>) -> Instance {
        let mut db = Database::new();
        for (rel, keys) in spec.program.key_declarations() {
            db.declare_key(rel, keys);
        }
        // Aggregate outputs are keyed by their group-by columns so that
        // recomputation replaces the previous value instead of accumulating.
        for lrule in &spec.program.rules {
            let head = &lrule.rule.head;
            if head.has_aggregate() {
                let group: Vec<usize> = head
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t, dr_datalog::ast::HeadTerm::Plain(_)))
                    .map(|(i, _)| i)
                    .collect();
                db.declare_key(head.relation.as_str(), group);
            }
        }
        // Reuse the spec's statically compiled plans (shared across nodes)
        // and declare the secondary indexes their probes will hit, so
        // per-batch evaluation joins against stored, incrementally-
        // maintained indexes instead of re-gathering and re-hashing table
        // contents.
        let compiled = spec.static_plans();
        for plan in compiled.iter() {
            for (rel, field) in plan.probe_fields() {
                db.declare_index(rel, field);
            }
        }
        let cache_rel = RelId::intern(&spec.cache_relation);
        let prov = spec.record_provenance.then(ProvStore::new);
        Instance {
            spec,
            db,
            compiled,
            replanned: false,
            pending: HashMap::new(),
            prune: HashMap::new(),
            cache_rel,
            prune_tombstones: 0,
            revive: std::collections::HashSet::new(),
            poison_seen: false,
            revive_quiet: 0,
            prov,
            installed: false,
        }
    }

    /// Re-compile every rule plan against the local store's current
    /// cardinalities. Installation-time plans are static — every table is
    /// empty at that point — so the first batch that runs with at least
    /// [`REPLAN_MIN_ROWS`] stored tuples gets to re-order joins by real row
    /// counts. One shot per query: local relation sizes stay within an
    /// order of magnitude after the initial fill, and re-planning per batch
    /// would thrash the plan cache.
    ///
    /// Returns the new plans' probe fields so the caller can mirror the
    /// index declarations onto the shared (cross-query) store.
    fn replan(&mut self) -> Vec<(RelId, usize)> {
        let stats = self.db.cardinalities();
        if stats.is_empty() {
            return Vec::new();
        }
        self.compiled = Arc::new(
            self.spec
                .program
                .rules
                .iter()
                .map(|lrule| RuleEval::with_stats(&lrule.rule, &stats))
                .collect(),
        );
        let fields: Vec<(RelId, usize)> =
            self.compiled.iter().flat_map(|plan| plan.probe_fields()).collect();
        for &(rel, field) in &fields {
            self.db.declare_index(rel, field);
        }
        self.replanned = true;
        fields
    }

    fn has_pending(&self) -> bool {
        self.pending.values().any(|v| !v.is_empty())
    }

    /// Evict aggregate-selection prune entries of (destination, next-hop)
    /// groups whose route is dead — the recorded best is an ∞-cost
    /// tombstone (the ROADMAP follow-up: without this the map grows
    /// monotonically under churn, one entry per route group the deployment
    /// ever considered).
    ///
    /// Only ∞ entries are evictable. A finite entry may back a best that
    /// was *shipped* rather than stored locally, and it is what lets the
    /// next ∞ derivation for its group pass the `invalidates_best` gate in
    /// [`QueryProcessor::prune_pass`] — dropping it would collapse a
    /// tombstone the remote home still needs. An ∞ entry, by contrast, has
    /// already done its job: the group's invalidation was admitted and
    /// propagated. After eviction a finite revival of the group is simply
    /// admitted fresh (it would have beaten ∞ anyway), and further ∞ ties
    /// still collapse through the stored-tuple check, so recovery semantics
    /// are unchanged while dead groups stop accumulating.
    ///
    /// Returns the number of entries evicted. The sweep only runs when the
    /// map outgrows a small floor *and* actually holds tombstones (tracked
    /// by `prune_tombstones`), so converged steady-state batches — all
    /// finite entries — never pay the O(map) scan.
    fn evict_stale_prune_groups(&mut self) -> u64 {
        const SWEEP_FLOOR: usize = 64;
        if self.prune_tombstones == 0 || self.prune.len() <= SWEEP_FLOOR {
            return 0;
        }
        let before = self.prune.len();
        self.prune.retain(|_, (_, value)| !value.is_infinite_cost());
        self.prune_tombstones = 0;
        (before - self.prune.len()) as u64
    }
}

/// Read-through view over the query-local database and the node's shared
/// (cross-query) tables. Chains borrowing cursors over both stores without
/// materializing either.
struct Overlay<'a> {
    local: &'a Database,
    shared: &'a Database,
}

impl RelationSource for Overlay<'_> {
    fn scan(&self, relation: RelId) -> Scan<'_> {
        self.local.scan(relation).chain(self.shared.scan(relation))
    }

    fn probe(&self, relation: RelId, field: usize, value: &Value) -> Scan<'_> {
        self.local.probe(relation, field, value).chain(self.shared.probe(relation, field, value))
    }

    fn probe_key(&self, key: &TupleKey, fields: &[usize]) -> Scan<'_> {
        self.local.probe_key(key, fields).chain(self.shared.probe_key(key, fields))
    }
}

/// Outcome of the aggregate-selection admission check for one tuple.
enum PruneDecision {
    /// Store/ship the tuple.
    Admit,
    /// A strictly better tuple for the prune group is already known.
    Dominated,
    /// An ∞-cost tombstone that invalidates nothing this node stored or
    /// shipped — dropped instead of propagated (§8).
    TombstoneCollapsed,
}

/// The per-node query processor.
pub struct QueryProcessor {
    config: ProcessorConfig,
    /// Interned id of `config.link_relation` (the neighbor-table relation),
    /// resolved once so per-update link tuples never hash the name.
    link_rel: RelId,
    node: NodeId,
    builtins: Builtins,
    /// Current neighbor table: neighbor → link cost (∞ when down).
    neighbors: BTreeMap<NodeId, Cost>,
    /// Cross-query shared tables (`bestPathCache`).
    shared: Database,
    instances: BTreeMap<QueryId, Instance>,
    /// Queries this node has torn down. Used to forward a teardown flood
    /// exactly once (whether or not the instance was ever installed here)
    /// and to refuse late `Install`/piggy-backed installations of a dead
    /// query. Query ids are never reused, so the set only grows with the
    /// number of queries ever torn down — a few bytes per lifecycle.
    torn_down: std::collections::BTreeSet<QueryId>,
    /// Pending batch timer id, so a retransmit timer firing is not mistaken
    /// for the batch tick (and vice versa).
    batch_timer: Option<u64>,
    /// Pending retransmit-scan timer id.
    retx_timer: Option<u64>,
    /// Reliable-transport send state per (direct-neighbor hop, query).
    outgoing: BTreeMap<(NodeId, QueryId), OutStream>,
    /// Reliable-transport receive state per (sending hop, query).
    incoming: BTreeMap<(NodeId, QueryId), InStream>,
    stats: ProcessorStats,
}

/// Send side of one reliable (hop, query) stream.
#[derive(Debug, Default)]
struct OutStream {
    /// Sequence number the next batch will carry.
    next_seq: u64,
    /// Sent-but-unacknowledged batches, keyed by sequence number.
    unacked: BTreeMap<u64, PendingBatch>,
}

/// One sent batch awaiting acknowledgment.
#[derive(Debug)]
struct PendingBatch {
    items: Vec<Tuple>,
    /// Provenance tags parallel to `items` (empty when not recording), so
    /// retransmissions carry the same derivation pointers as the original.
    provs: Vec<ProvTag>,
    /// Retransmissions performed so far.
    retries: u32,
    /// When the next retransmission is due.
    due: dr_netsim::SimTime,
}

/// Receive side of one reliable (hop, query) stream.
#[derive(Debug, Default)]
struct InStream {
    /// Next sequence number expected in order (== the cumulative ack).
    next_expected: u64,
    /// Out-of-order batches (items plus their provenance tags) held until
    /// the gap before them fills.
    buffered: BTreeMap<u64, (Vec<Tuple>, Vec<ProvTag>)>,
}

/// Tuples queued for shipping, per destination, each with the provenance
/// tag the receiver should alias it to (`None` for base facts or
/// non-recording queries).
type Outbound = BTreeMap<NodeId, Vec<(Tuple, ProvTag)>>;

/// How a tuple entering [`QueryProcessor::route_tuple`] got here, for
/// provenance bookkeeping (ignored unless the query records provenance).
enum ProvAction {
    /// Derived by a local rule firing: record it in the arena. Carries the
    /// rule's index in the localized program and the body tuples the
    /// firing joined, in planned join order.
    Fired(u32, Vec<Tuple>),
    /// Arrived over the wire carrying a pointer to its deriving node's
    /// record: alias it.
    Wire(NodeId, ProvId),
}

/// Out-of-order batches buffered per stream before the receiver gives up on
/// the gap and skips ahead (bounds memory if a batch is permanently lost —
/// retransmission makes that astronomically unlikely at the loss rates the
/// chaos tests run, but the bound must exist).
const REORDER_BUFFER_CAP: usize = 64;

impl QueryProcessor {
    /// Create a processor with the given deployment configuration.
    pub fn new(config: ProcessorConfig) -> QueryProcessor {
        // The shared store starts empty: cache relations (and their upsert
        // keys) are declared by the installation of the first query that
        // shares through them, and dropped again when their last user is
        // torn down — a long-lived service node holds no residue of
        // queries that no longer exist.
        let link_rel = RelId::intern(&config.link_relation);
        QueryProcessor {
            config,
            link_rel,
            node: NodeId::new(0),
            builtins: Builtins::standard(),
            neighbors: BTreeMap::new(),
            shared: Database::new(),
            instances: BTreeMap::new(),
            torn_down: std::collections::BTreeSet::new(),
            batch_timer: None,
            retx_timer: None,
            outgoing: BTreeMap::new(),
            incoming: BTreeMap::new(),
            stats: ProcessorStats::default(),
        }
    }

    /// This node's id (valid after the simulation has started).
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Runtime counters.
    pub fn stats(&self) -> &ProcessorStats {
        &self.stats
    }

    /// The ids of the queries installed at this node.
    pub fn installed_queries(&self) -> Vec<QueryId> {
        self.instances.keys().copied().collect()
    }

    /// All tuples of `relation` stored at this node for query `qid`.
    pub fn tuples(&self, qid: QueryId, relation: &str) -> Vec<Tuple> {
        self.instances.get(&qid).map(|i| i.db.sorted_tuples(relation)).unwrap_or_default()
    }

    /// The result tuples (of all `Query:` relations) stored at this node.
    pub fn results(&self, qid: QueryId) -> Vec<Tuple> {
        let Some(instance) = self.instances.get(&qid) else { return Vec::new() };
        let mut out = Vec::new();
        for &rel in &instance.spec.program.result_relations {
            out.extend(instance.db.sorted_tuples(rel));
        }
        out
    }

    /// The node's current view of its neighbor table.
    pub fn neighbor_table(&self) -> &BTreeMap<NodeId, Cost> {
        &self.neighbors
    }

    /// Contents of the cross-query `bestPathCache` table.
    pub fn best_path_cache(&self) -> Vec<Tuple> {
        self.shared.sorted_tuples("bestPathCache")
    }

    /// Contents of an arbitrary cross-query cache relation (used by queries
    /// that compute a non-default metric).
    pub fn shared_cache(&self, relation: &str) -> Vec<Tuple> {
        self.shared.sorted_tuples(relation)
    }

    /// The forwarding table induced by query `qid`: destination → next hop,
    /// extracted from result tuples that carry a path vector (field layout
    /// `(S, D, P, C)`) or an explicit next-hop field (`(S, D, Z, C)`).
    pub fn forwarding_table(&self, qid: QueryId) -> BTreeMap<NodeId, NodeId> {
        let mut out = BTreeMap::new();
        for t in self.results(qid) {
            if t.node_at(0) != Some(self.node) {
                continue;
            }
            let Some(dest) = t.node_at(1) else { continue };
            let cost = t.fields().last().and_then(Value::as_cost).unwrap_or(Cost::ZERO);
            if cost.is_infinite() {
                continue;
            }
            let next = t.field(2).and_then(|v| match v {
                Value::Path(p) if p.len() >= 2 => Some(p.nodes()[1]),
                Value::Node(n) => Some(*n),
                _ => None,
            });
            if let Some(next) = next {
                out.insert(dest, next);
            }
        }
        out
    }

    /// Number of aggregate-selection prune-state entries currently held for
    /// query `qid` (regression hook for the churn tests: the map must not
    /// grow monotonically across fail/join cycles).
    pub fn prune_entries(&self, qid: QueryId) -> usize {
        self.instances.get(&qid).map(|i| i.prune.len()).unwrap_or(0)
    }

    /// Remove an installed query and its state (lifetime expiry). Also
    /// drops the query's shared cache relation when it was the last user —
    /// dropping the instance alone would leave the cross-query store
    /// holding paths no remaining query can refresh.
    pub fn remove_query(&mut self, qid: QueryId) {
        self.uninstall(qid);
    }

    /// True when this node has processed a teardown for `qid` (and will
    /// refuse to reinstall it).
    pub fn is_torn_down(&self, qid: QueryId) -> bool {
        self.torn_down.contains(&qid)
    }

    /// Number of tuples sitting in query `qid`'s pending (delta) buffers.
    pub fn pending_tuples(&self, qid: QueryId) -> usize {
        self.instances.get(&qid).map(|i| i.pending.values().map(Vec::len).sum()).unwrap_or(0)
    }

    /// Sizes of everything this node currently stores on behalf of queries
    /// (see [`StateFootprint`]).
    pub fn state_footprint(&self) -> StateFootprint {
        let mut f = StateFootprint {
            instances: self.instances.len(),
            shared_relations: self.shared.relation_count(),
            shared_tuples: self.shared.total_tuples(),
            ..StateFootprint::default()
        };
        for instance in self.instances.values() {
            f.stored_tuples += instance.db.total_tuples();
            f.pending_tuples += instance.pending.values().map(Vec::len).sum::<usize>();
            f.prune_entries += instance.prune.len();
            f.prov_records += instance.prov.as_ref().map_or(0, ProvStore::residue);
        }
        f
    }

    /// The provenance store of query `qid` at this node (`None` when the
    /// query is not installed here or does not record provenance).
    pub fn provenance(&self, qid: QueryId) -> Option<&ProvStore> {
        self.instances.get(&qid).and_then(|i| i.prov.as_ref())
    }

    /// True when this node currently stores `tuple` in `qid`'s local
    /// database (used by `explain` to locate a route's home node).
    pub fn stores_tuple(&self, qid: QueryId, tuple: &Tuple) -> bool {
        self.instances.get(&qid).map(|i| i.db.contains(tuple)).unwrap_or(false)
    }

    /// True when this node currently has `qid` installed.
    pub fn has_query(&self, qid: QueryId) -> bool {
        self.instances.contains_key(&qid)
    }

    // -- internals ----------------------------------------------------------

    fn link_tuple(&self, neighbor: NodeId, cost: Cost) -> Tuple {
        Tuple::from_rel(
            self.link_rel,
            vec![Value::Node(self.node), Value::Node(neighbor), Value::Cost(cost)],
        )
    }

    fn schedule_batch(&mut self, ctx: &mut Context<'_, NetMsg>) {
        if self.batch_timer.is_none() {
            self.batch_timer = Some(ctx.set_timer(self.config.batch_interval));
        }
    }

    fn schedule_retransmit_scan(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let Some(rel) = self.config.reliability else { return };
        if self.retx_timer.is_none() {
            self.retx_timer = Some(ctx.set_timer(rel.retransmit_timeout));
        }
    }

    fn install(&mut self, ctx: &mut Context<'_, NetMsg>, qid: QueryId) {
        // A torn-down query never reinstalls: late Install floods and
        // piggy-backed installations race the teardown flood, and losing
        // that race must not resurrect the query on some nodes.
        if self.torn_down.contains(&qid) {
            return;
        }
        if self.instances.get(&qid).map(|i| i.installed).unwrap_or(false) {
            return;
        }
        let Some(spec) = self.config.library.get(qid) else { return };
        if spec.share_results {
            self.shared.declare_key(spec.cache_relation.as_str(), vec![0, 1]);
        }
        let program = Arc::clone(&spec.program);
        let instance =
            self.instances.entry(qid).or_insert_with(|| Instance::new(Arc::clone(&spec)));
        instance.installed = true;
        // Mirror the plans' probe-field declarations onto the shared
        // (cross-query) store, so joins against cache relations such as
        // `bestPathCache` are index-served on both sides of the overlay.
        // Declarations for relations the shared store never materializes
        // stay pending and cost nothing.
        let probe_fields: Vec<(RelId, usize)> =
            instance.compiled.iter().flat_map(|plan| plan.probe_fields()).collect();
        for (rel, field) in probe_fields {
            self.shared.declare_index(rel, field);
        }

        // Flood the installation to all neighbors.
        let msg = NetMsg::Install { qid };
        let size = program.dissemination_size();
        let neighbor_ids: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for nb in &neighbor_ids {
            ctx.send(*nb, msg.clone(), size);
        }

        // Install the query's facts: replicated relations everywhere, others
        // only at their home node.
        let mut outbound: Outbound = BTreeMap::new();
        let facts: Vec<Tuple> = spec.facts.clone();
        for fact in facts {
            self.route_tuple(qid, fact, None, &mut outbound);
        }
        // Materialize the program's own ground facts (constant rules such as
        // the `magicSources` / `magicDsts` of a pair query). Since every node
        // runs this on installation, replicated (and un-located) facts are
        // installed locally everywhere, and located facts only at their home
        // node — no shipping required.
        for fact in self.materialize_program_facts(&program) {
            self.route_tuple(qid, fact, None, &mut outbound);
        }
        // Seed the neighbor table as `link` base tuples.
        let links: Vec<Tuple> =
            self.neighbors.iter().map(|(nb, cost)| self.link_tuple(*nb, *cost)).collect();
        for link in links {
            self.route_tuple(qid, link, None, &mut outbound);
        }
        self.flush_outbound(ctx, qid, outbound);
        self.schedule_batch(ctx);
    }

    /// Handle a teardown flood: unwind every trace of `qid` at this node
    /// and forward the teardown to all neighbors exactly once (nodes that
    /// never installed the query still forward, so the flood crosses them).
    fn teardown(&mut self, ctx: &mut Context<'_, NetMsg>, qid: QueryId) {
        if !self.torn_down.insert(qid) {
            return; // already unwound and forwarded
        }
        self.uninstall(qid);
        // Retire the reliable-transport streams of the dead query: unacked
        // batches must not be retransmitted into a torn-down query, and the
        // receive state has nothing left to order.
        self.outgoing.retain(|(_, q), _| *q != qid);
        self.incoming.retain(|(_, q), _| *q != qid);
        // The spec leaves the shared library here, at the nodes, not at the
        // issuer: removing it when the teardown is *injected* would race
        // in-flight Install floods that still need `library.get(qid)`. The
        // call is idempotent — whichever node handles the flood first wins.
        self.config.library.remove(qid);
        let msg = NetMsg::Teardown { qid };
        let size = msg.wire_size();
        let neighbor_ids: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for nb in neighbor_ids {
            ctx.send(nb, msg.clone(), size);
        }
    }

    /// Drop query `qid`'s instance. The instance owns everything the query
    /// accumulated at this node — stored tuples, pending delta buffers,
    /// prune state, compiled plans — so dropping it releases all of it; the
    /// spec `Arc` (static plans, `RelCatalog`) is freed when the last node
    /// lets go. The query's shared cache relation is dropped from the
    /// cross-query store when no remaining instance uses it.
    fn uninstall(&mut self, qid: QueryId) {
        let Some(instance) = self.instances.remove(&qid) else { return };
        let cache_rel = instance.cache_rel;
        drop(instance);
        if !self.instances.values().any(|i| i.cache_rel == cache_rel) {
            self.shared.drop_relation(cache_rel);
        }
    }

    /// The ground facts of `program` that this node should store: all
    /// constant head terms of a fact rule become a tuple, kept when the
    /// fact's relation is replicated, carries no location annotation, or is
    /// homed at this node.
    fn materialize_program_facts(&self, program: &LocalizedProgram) -> Vec<Tuple> {
        let mut out = Vec::new();
        for fact in &program.facts {
            let head = &fact.head;
            let values: Option<Vec<Value>> = head
                .terms
                .iter()
                .map(|t| match t.as_plain() {
                    Some(dr_datalog::ast::Term::Const(v)) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            let Some(values) = values else { continue };
            let tuple = Tuple::new(&head.relation, values);
            // Derive the home exactly like route_tuple will (catalog location
            // field), so a kept fact is always stored locally, never
            // re-shipped.
            let home = tuple.node_at(program.catalog.location_field(tuple.rel()));
            if program.is_replicated(tuple.rel()) || home.is_none() || home == Some(self.node) {
                out.push(tuple);
            }
        }
        out
    }

    /// Store or forward one tuple for query `qid`. Returns true when the
    /// tuple was newly stored locally.
    ///
    /// `prov` describes where the tuple came from for provenance purposes
    /// (a local rule firing, or a wire tag from its deriving node); it is
    /// ignored — and should be `None` — unless the query records
    /// provenance. Only *admitted* tuples are bound: dominated and
    /// collapsed derivations leave no provenance residue, and a keyed
    /// upsert forgets the displaced tuple's record, so the store tracks
    /// exactly the live routing state.
    fn route_tuple(
        &mut self,
        qid: QueryId,
        tuple: Tuple,
        prov: Option<ProvAction>,
        outbound: &mut Outbound,
    ) -> bool {
        let my_id = self.node;
        let batch = self.stats.batches;
        // Work on the instance first; side effects on other processor fields
        // (stats, shared cache) are applied after the borrow ends.
        let mut pruned = false;
        let mut collapsed = false;
        let mut stored = false;
        let mut recorded = false;
        let mut cache_entry: Option<Tuple> = None;
        {
            let Some(instance) = self.instances.get_mut(&qid) else { return false };
            let program = Arc::clone(&instance.spec.program);
            let relation = tuple.rel();

            // Aggregate-selection pruning (per next-hop granularity).
            let mut admitted = true;
            if instance.spec.aggregate_selections {
                if let Some(sel) =
                    program.agg_selections.iter().find(|s| s.input_relation == relation)
                {
                    match Self::prune_pass(instance, sel, &program, &tuple, my_id) {
                        PruneDecision::Admit => {}
                        PruneDecision::Dominated => {
                            pruned = true;
                            admitted = false;
                        }
                        PruneDecision::TombstoneCollapsed => {
                            collapsed = true;
                            admitted = false;
                        }
                    }
                }
            }

            if admitted {
                // Bind the admitted tuple's provenance. A firing is
                // recorded at the deriving node even when the tuple's home
                // is remote: the shipped copy links back here, and
                // `ProvFetch` resolves the pointer on demand.
                let mut tag: ProvTag = None;
                // A wire tag is only aliased into the store if the tuple is
                // actually stored below — a tuple merely relayed onward must
                // not leave a binding at the relay.
                let mut wire_ref: Option<ProvRef> = None;
                if let Some(store) = instance.prov.as_mut() {
                    match prov {
                        Some(ProvAction::Fired(rule, body)) => {
                            let body_refs: Vec<(Tuple, ProvRef)> = body
                                .into_iter()
                                .map(|b| {
                                    let r = store.resolve(&b);
                                    (b, r)
                                })
                                .collect();
                            let pid = store.record(tuple.clone(), rule, my_id, batch, body_refs);
                            recorded = true;
                            tag = Some((my_id, pid));
                        }
                        Some(ProvAction::Wire(origin, pid)) => {
                            wire_ref = Some(if origin == my_id {
                                ProvRef::Local(pid)
                            } else {
                                ProvRef::Remote(origin, pid)
                            });
                            tag = Some((origin, pid));
                        }
                        None => {}
                    }
                }

                let loc_field = program.catalog.location_field(relation);
                let home = tuple.node_at(loc_field);
                let replicated = program.is_replicated(relation);

                match home {
                    Some(h) if h != my_id && !replicated => {
                        outbound.entry(h).or_default().push((tuple.clone(), tag));
                    }
                    _ => {
                        let outcome = instance.db.insert(tuple.clone());
                        // A keyed upsert displaced an older tuple: its
                        // provenance dies with it.
                        if let Some(old) = outcome.replaced.as_ref() {
                            if let Some(store) = instance.prov.as_mut() {
                                store.forget(old);
                            }
                        }
                        if outcome.added {
                            stored = true;
                            if let Some(r) = wire_ref {
                                if let Some(store) = instance.prov.as_mut() {
                                    store.alias(tuple.clone(), r);
                                }
                            }
                            instance.pending.entry(relation).or_default().push(tuple.clone());

                            // Ship copies required by remote joins (the
                            // Figure 2 clouds).
                            for ship in program.ships_for(relation) {
                                let Some(dest) = tuple.node_at(ship.target_field) else {
                                    continue;
                                };
                                let cache_tuple =
                                    Tuple::from_rel(ship.cache_relation, tuple.fields().to_vec());
                                if dest == my_id {
                                    let copy_outcome = instance.db.insert(cache_tuple.clone());
                                    if let Some(store) = instance.prov.as_mut() {
                                        if let Some(old) = copy_outcome.replaced.as_ref() {
                                            store.forget(old);
                                        }
                                    }
                                    if copy_outcome.added {
                                        // The copy proves nothing new: it
                                        // aliases the source tuple's own
                                        // provenance.
                                        if let (Some(store), Some((n, p))) =
                                            (instance.prov.as_mut(), tag)
                                        {
                                            let r = if n == my_id {
                                                ProvRef::Local(p)
                                            } else {
                                                ProvRef::Remote(n, p)
                                            };
                                            store.alias(cache_tuple.clone(), r);
                                        }
                                        instance
                                            .pending
                                            .entry(ship.cache_relation)
                                            .or_default()
                                            .push(cache_tuple);
                                    }
                                } else {
                                    outbound.entry(dest).or_default().push((cache_tuple, tag));
                                }
                            }

                            // Multi-query sharing: completed best paths go
                            // into the shared cache.
                            if instance.spec.share_results
                                && program.result_relations.contains(&relation)
                            {
                                cache_entry =
                                    Self::cache_entry_from_result(instance.cache_rel, &tuple);
                            }
                        }
                    }
                }
            }
        }
        if pruned {
            self.stats.tuples_pruned += 1;
        }
        if collapsed {
            self.stats.tuples_pruned += 1;
            self.stats.tombstones_collapsed += 1;
        }
        if stored {
            self.stats.tuples_derived += 1;
        }
        if recorded {
            self.stats.prov_recorded += 1;
        }
        if let Some(cache) = cache_entry {
            self.shared.insert(cache);
        }
        stored
    }

    /// Aggregate-selection admission check. Keeps: updates of the current
    /// best (same identity key), and tuples at least as good as the best
    /// known for their prune key. The prune key extends the aggregate's
    /// group with every node-valued field outside the group and the first
    /// hop of any path-vector field, so one best route is retained *per next
    /// hop* (needed for recovery after failures, §8).
    ///
    /// Infinite-cost derivations are special-cased: an ∞ tombstone's only
    /// job is invalidating the stored/shipped best path and its cache
    /// entries (§8 rule NR3). Since every ∞ derivation ties in the
    /// aggregate, admitting them all would enumerate the whole failed path
    /// space; instead only the tombstones that actually invalidate
    /// something this node stored or shipped are admitted — one per
    /// (destination, next-hop) prune group plus one per stale stored tuple
    /// — and every other ∞ derivation collapses. Failure recovery becomes a
    /// single invalidation wave over the existing routing state instead of
    /// an exponential re-exploration.
    /// The prune-map coordinates of a tuple: its group key (aggregate group
    /// extended with every node-valued field outside the group and the
    /// first hop of any path-vector field — i.e. per next hop) and its
    /// identity (the catalog key fields, distinguishing updates of one
    /// route from competing routes).
    fn prune_key_and_identity(
        sel: &AggSelection,
        program: &LocalizedProgram,
        tuple: &Tuple,
    ) -> ((RelId, Vec<Value>), Vec<Value>) {
        let mut group: Vec<Value> =
            sel.group_fields.iter().filter_map(|&i| tuple.field(i).cloned()).collect();
        for (i, field) in tuple.fields().iter().enumerate() {
            if i == sel.value_field || sel.group_fields.contains(&i) {
                continue;
            }
            match field {
                Value::Node(_) => group.push(field.clone()),
                Value::Path(p) if p.len() >= 2 => group.push(Value::Node(p.nodes()[1])),
                _ => {}
            }
        }
        let key_fields = program.catalog.key_fields(tuple.rel(), tuple.arity());
        let identity: Vec<Value> =
            key_fields.iter().filter_map(|&i| tuple.field(i).cloned()).collect();
        ((tuple.rel(), group), identity)
    }

    fn prune_pass(
        instance: &mut Instance,
        sel: &AggSelection,
        program: &LocalizedProgram,
        tuple: &Tuple,
        my_id: NodeId,
    ) -> PruneDecision {
        let Some(value) = tuple.field(sel.value_field).cloned() else {
            return PruneDecision::Admit;
        };
        let (key, identity) = Self::prune_key_and_identity(sel, program, tuple);

        if value.is_infinite_cost() {
            // Tombstone sighted (whatever its fate below): the invalidation
            // wave is still active here — hold queued revivals back.
            instance.poison_seen = true;
            // Tombstone of the group's shipped/stored best: record the ∞ so
            // any finite alternative (other next hop) can take the slot,
            // and let the invalidation propagate.
            let invalidates_best = matches!(
                instance.prune.get(&key),
                Some((best_id, best_val)) if *best_id == identity && !best_val.is_infinite_cost()
            );
            if invalidates_best {
                // Finite → ∞ transition of the group's recorded best: the
                // entry becomes evictable once the wave has run.
                instance.prune_tombstones += 1;
                // The group's surviving alternatives (other downstream
                // continuations through this node) are stored state, not
                // deltas — schedule a revival so the next batch re-derives
                // and re-ships the group's new best from them.
                let loc = program.catalog.location_field(tuple.rel());
                let bindings: Vec<(usize, Value)> = sel
                    .group_fields
                    .iter()
                    .filter(|&&g| g != loc)
                    .filter_map(|&g| tuple.field(g).cloned().map(|v| (g, v)))
                    .collect();
                instance.revive.insert((tuple.rel(), sel.value_field, bindings));
                instance.prune.insert(key, (identity, value));
                return PruneDecision::Admit;
            }
            // Tombstone addressed to a remote home: this node only derives
            // and forwards it — whether it invalidates anything is a fact
            // about the *home's* store, which is invisible here. Collapsing
            // on the local group best loses real invalidations whenever two
            // equal-cost routes share a prune group at the deriving node
            // (the local best covers one of them; the other's home keeps a
            // route that is now dead). Ship it and let the home run the
            // real check — a tombstone nothing at the home matches
            // collapses there, so each one travels at most one hop.
            let loc = program.catalog.location_field(tuple.rel());
            if tuple.node_at(loc) != Some(my_id) {
                return PruneDecision::Admit;
            }
            // Tombstone of a dominated-but-stored tuple (an older route this
            // node still holds): admit so the keyed upsert poisons the stale
            // entry, but without touching the group best.
            let key_fields = program.catalog.key_fields(tuple.rel(), tuple.arity());
            let poisons_stored = instance
                .db
                .get_by_key(&tuple.key(&key_fields))
                .map(|stored| stored != tuple)
                .unwrap_or(false);
            if poisons_stored {
                return PruneDecision::Admit;
            }
            return PruneDecision::TombstoneCollapsed;
        }

        let better_or_equal = |a: &Value, b: &Value| -> bool {
            use std::cmp::Ordering::*;
            match sel.func {
                dr_datalog::ast::AggFunc::Min => a.compare_numeric(b) != Greater,
                dr_datalog::ast::AggFunc::Max => a.compare_numeric(b) != Less,
                _ => true,
            }
        };

        match instance.prune.get(&key) {
            None => {
                instance.prune.insert(key, (identity, value));
                PruneDecision::Admit
            }
            Some((best_id, best_val)) => {
                let admit = *best_id == identity // update (possibly worse) of the current best
                    || better_or_equal(&value, best_val);
                if admit {
                    // `value` is finite here (the ∞ path returned above): a
                    // revived group stops being a tombstone.
                    if best_val.is_infinite_cost() {
                        instance.prune_tombstones = instance.prune_tombstones.saturating_sub(1);
                    }
                    instance.prune.insert(key, (identity, value));
                    PruneDecision::Admit
                } else {
                    PruneDecision::Dominated
                }
            }
        }
    }

    /// Build a `<cache>(@N, D, P, C)` entry from a 4-ary result tuple.
    fn cache_entry_from_result(cache: RelId, tuple: &Tuple) -> Option<Tuple> {
        if tuple.arity() != 4 {
            return None;
        }
        let s = tuple.node_at(0)?;
        let d = tuple.node_at(1)?;
        let p = tuple.field(2)?.as_path()?.clone();
        let c = tuple.field(3)?.as_cost()?;
        Some(Tuple::from_rel(
            cache,
            vec![Value::Node(s), Value::Node(d), Value::Path(p), Value::Cost(c)],
        ))
    }

    /// Split a tagged batch into the wire's parallel item/tag vectors. The
    /// tag vector is emptied when every tag is `None`, so non-recording
    /// queries keep their exact legacy wire accounting.
    fn split_tagged(tagged: Vec<(Tuple, ProvTag)>) -> (Vec<Tuple>, Vec<ProvTag>) {
        let mut items = Vec::with_capacity(tagged.len());
        let mut provs = Vec::with_capacity(tagged.len());
        let mut any = false;
        for (tuple, tag) in tagged {
            any |= tag.is_some();
            items.push(tuple);
            provs.push(tag);
        }
        if !any {
            provs.clear();
        }
        (items, provs)
    }

    fn flush_outbound(&mut self, ctx: &mut Context<'_, NetMsg>, qid: QueryId, outbound: Outbound) {
        for (dest, tagged) in outbound {
            if tagged.is_empty() {
                continue;
            }
            if dest == self.node {
                // Tuples that resolved back to ourselves (e.g. relayed home
                // deliveries): fold them straight in.
                let mut again = BTreeMap::new();
                for (tuple, tag) in tagged {
                    let action = tag.map(|(n, p)| ProvAction::Wire(n, p));
                    self.route_tuple(qid, tuple, action, &mut again);
                }
                self.flush_outbound(ctx, qid, again);
                continue;
            }
            self.stats.tuples_sent += tagged.len() as u64;
            // Nodes only exchange messages with direct neighbors. Cache
            // shipping (the Figure 2 clouds) always targets a neighbor by
            // construction; home shipping of derived tuples usually does
            // too (right recursion ships one hop back toward the source).
            // When the home is further away — e.g. DSR-style left recursion
            // storing paths at the source — the tuple is relayed hop by hop
            // along the reverse of its own path vector, exactly the
            // "reverse path" shipping the paper describes for DSR and
            // Best-Path-Pairs.
            let next_hop = if self.neighbors.contains_key(&dest) {
                Some(dest)
            } else {
                let items: Vec<Tuple> = tagged.iter().map(|(t, _)| t.clone()).collect();
                Self::relay_hop(self.node, dest, &items, &self.neighbors)
            };
            match next_hop {
                Some(hop) => self.send_tuples(ctx, hop, qid, tagged),
                // No way to make progress toward the home node: drop. Not
                // sequenced — retransmitting into a black hole buys nothing.
                None => {
                    let (items, provs) = Self::split_tagged(tagged);
                    let msg = NetMsg::Tuples { qid, seq: None, items, provs };
                    let size = msg.wire_size();
                    ctx.send(dest, msg, size);
                }
            }
        }
    }

    /// Ship one batch of tuples to a direct-neighbor hop. With reliability
    /// off this is a plain unsequenced send; with it on, the batch takes the
    /// next sequence number of the (hop, query) stream and is remembered
    /// until the hop's cumulative ack covers it.
    fn send_tuples(
        &mut self,
        ctx: &mut Context<'_, NetMsg>,
        hop: NodeId,
        qid: QueryId,
        tagged: Vec<(Tuple, ProvTag)>,
    ) {
        let (items, provs) = Self::split_tagged(tagged);
        let Some(rel) = self.config.reliability else {
            let msg = NetMsg::Tuples { qid, seq: None, items, provs };
            let size = msg.wire_size();
            ctx.send(hop, msg, size);
            return;
        };
        let stream = self.outgoing.entry((hop, qid)).or_default();
        let seq = stream.next_seq;
        stream.next_seq += 1;
        stream.unacked.insert(
            seq,
            PendingBatch {
                items: items.clone(),
                provs: provs.clone(),
                retries: 0,
                due: ctx.now() + rel.retransmit_timeout,
            },
        );
        let base = *stream.unacked.keys().next().expect("just inserted");
        let msg = NetMsg::Tuples { qid, seq: Some(StreamSeq { seq, base }), items, provs };
        let size = msg.wire_size();
        ctx.send(hop, msg, size);
        self.schedule_retransmit_scan(ctx);
    }

    /// Resend every overdue unacked batch (exponential backoff per batch),
    /// abandon batches past the retry budget, and re-arm the timer while
    /// anything remains in flight.
    ///
    /// The stream's newest unacked batch is never abandoned: it keeps
    /// retransmitting at the capped backoff interval until acknowledged.
    /// Its `StreamSeq::base` is what tells a receiver wedged on an
    /// abandoned gap to skip ahead — if the whole stream went silent after
    /// abandonment, a hole punched during a peer's down-time would block
    /// the batches behind it (including the post-rejoin link-state
    /// refresh) forever.
    fn retransmit_scan(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let Some(rel) = self.config.reliability else { return };
        let now = ctx.now();
        let mut resend: Vec<(NodeId, NetMsg, usize)> = Vec::new();
        let mut in_flight = false;
        for (&(hop, qid), stream) in self.outgoing.iter_mut() {
            // Abandon overdue batches past the retry budget (except the
            // newest): the soft-state repair paths own their content now.
            let newest = stream.unacked.keys().next_back().copied();
            stream.unacked.retain(|&seq, batch| {
                batch.due > now || batch.retries < rel.max_retries || Some(seq) == newest
            });
            let Some(&base) = stream.unacked.keys().next() else { continue };
            for (&seq, batch) in stream.unacked.iter_mut() {
                if batch.due > now {
                    in_flight = true;
                    continue;
                }
                batch.retries = batch.retries.saturating_add(1);
                batch.due = now + rel.retransmit_timeout.times(1 << batch.retries.min(6));
                let msg = NetMsg::Tuples {
                    qid,
                    seq: Some(StreamSeq { seq, base }),
                    items: batch.items.clone(),
                    provs: batch.provs.clone(),
                };
                let size = msg.wire_size();
                resend.push((hop, msg, size));
                in_flight = true;
            }
        }
        self.stats.retransmits += resend.len() as u64;
        for (hop, msg, size) in resend {
            ctx.send(hop, msg, size);
        }
        if in_flight {
            self.retx_timer = Some(ctx.set_timer(rel.retransmit_timeout));
        }
    }

    /// Find a neighbor one step closer to `dest` along the path vector of
    /// any of the tuples being shipped.
    fn relay_hop(
        me: NodeId,
        dest: NodeId,
        items: &[Tuple],
        neighbors: &BTreeMap<NodeId, Cost>,
    ) -> Option<NodeId> {
        for tuple in items {
            for field in tuple.fields() {
                let Value::Path(path) = field else { continue };
                let nodes = path.nodes();
                let me_pos = nodes.iter().position(|&n| n == me);
                let dest_pos = nodes.iter().position(|&n| n == dest);
                if let (Some(a), Some(b)) = (me_pos, dest_pos) {
                    if a == b {
                        continue;
                    }
                    let step = if b > a { a + 1 } else { a - 1 };
                    let hop = nodes[step];
                    if neighbors.contains_key(&hop) {
                        return Some(hop);
                    }
                }
            }
        }
        None
    }

    /// Re-arm the joins of prune groups whose recorded best was poisoned
    /// to ∞ since the last round: re-inject, as deltas, this node's stored
    /// finite tuples matching each dead group's non-location columns.
    ///
    /// Without this, recovery is incomplete whenever every retained
    /// alternative at the route's home also dies: the home's per-next-hop
    /// fallbacks cover the failure only if their own downstream segments
    /// survived. The anchor node still stores finite paths for the group's
    /// destination, but they are old state — no delta ever re-fires the
    /// `link ⋈ path` join that would ship the group's new best (the
    /// nodes=10/seed=291 Dense-UUNET hub failure is a concrete case:
    /// without revival two pairs settle on detours ~25% worse than the
    /// surviving optimum).
    ///
    /// Only tuples that are the *current recorded best of their own prune
    /// group* are re-injected — at most one per surviving next hop. The
    /// store also holds every historically-admitted route (dominated
    /// alternatives are kept for exactly this kind of fallback), and during
    /// an invalidation wave most groups are ∞, so re-injecting the full
    /// per-destination history would re-explore the path space the
    /// tombstone-collapse design exists to avoid (the 16-node hub-failure
    /// budget test blows up ~200×). The group bests are sufficient: any
    /// repaired route the dead group can still ship extends some current
    /// best at this node. Re-injection is idempotent — re-derived tuples
    /// that are already stored are not re-shipped — and self-limiting:
    /// revived finite tuples never create new tombstone transitions.
    fn process_revivals(instance: &mut Instance, neighbors: &BTreeMap<NodeId, Cost>) {
        if instance.revive.is_empty() {
            return;
        }
        let program = Arc::clone(&instance.spec.program);
        let requests: Vec<ReviveRequest> = instance.revive.drain().collect();
        for (rel, value_field, bindings) in requests {
            let Some(sel) = program.agg_selections.iter().find(|s| s.input_relation == rel) else {
                continue;
            };
            let revived: Vec<Tuple> = instance
                .db
                .scan(rel)
                .filter(|t| {
                    t.field(value_field).map(|v| !v.is_infinite_cost()).unwrap_or(true)
                        && bindings.iter().all(|(i, v)| t.field(*i) == Some(v))
                })
                // A candidate whose next hop is a dead (or vanished)
                // neighbor is guaranteed dead on arrival: re-flooding it
                // just feeds the next invalidation wave, whose tombstones
                // queue further revivals of this destination's sibling
                // groups — a self-sustaining oscillation that melts the
                // 36-node dense-overlay churn figure. The link state needed
                // to rule those out is local and exact, so check it here;
                // when the neighbor later revives, `apply_link_update`'s
                // copy re-injection re-fires these joins anyway.
                .filter(|t| {
                    t.fields().iter().all(|f| match f {
                        Value::Path(p) if p.len() >= 2 => {
                            neighbors.get(&p.nodes()[1]).map(|c| c.is_finite()).unwrap_or(false)
                        }
                        _ => true,
                    })
                })
                .filter(|t| {
                    let (key, identity) = Self::prune_key_and_identity(sel, &program, t);
                    matches!(
                        instance.prune.get(&key),
                        Some((best_id, best_val))
                            if *best_id == identity && !best_val.is_infinite_cost()
                    )
                })
                .cloned()
                .collect();
            if !revived.is_empty() {
                instance.pending.entry(rel).or_default().extend(revived);
            }
        }
    }

    fn process_batches(&mut self, ctx: &mut Context<'_, NetMsg>) {
        self.stats.batches += 1;
        let qids: Vec<QueryId> = self.instances.keys().copied().collect();
        for qid in qids {
            let mut outbound: Outbound = BTreeMap::new();
            let mut cache_installs: Vec<(NodeId, NetMsg)> = Vec::new();
            // Local fixpoint: keep draining deltas until nothing new is
            // produced locally.
            // Revival is deferred to an *idle* batch: one that starts with no
            // pending deltas, meaning nothing arrived since the previous
            // batch and the invalidation wave has passed this node. Reviving
            // mid-wave would re-flood routes the in-flight poisons are about
            // to kill — and since most prune groups are ∞ during the wave,
            // every revived derivation would be admitted, stored, extended
            // and shipped, re-exploring the path space the tombstone
            // collapse exists to avoid. (`on_timer` keeps the batch timer
            // armed while revivals are queued, so an idle batch arrives.)
            //
            // Idleness alone is necessary but not sufficient: it only proves
            // the wave has passed *this node*, and on dense overlays waves
            // between farther nodes outlive any one node's idle gap. A round
            // additionally requires [`REVIVE_QUIET_BATCHES`] consecutive
            // tombstone-free idle batches — see the constant's doc for how
            // this also spaces repeat rounds.
            if let Some(instance) = self.instances.get_mut(&qid) {
                if instance.has_pending() || instance.poison_seen {
                    instance.poison_seen = false;
                    instance.revive_quiet = 0;
                } else {
                    instance.revive_quiet = instance.revive_quiet.saturating_add(1);
                    if instance.revive_quiet >= REVIVE_QUIET_BATCHES {
                        Self::process_revivals(instance, &self.neighbors);
                    }
                }
            }
            while let Some(instance) = self.instances.get_mut(&qid) {
                if !instance.has_pending() {
                    break;
                }
                if !instance.replanned && instance.db.total_tuples() >= REPLAN_MIN_ROWS {
                    for (rel, field) in instance.replan() {
                        self.shared.declare_index(rel, field);
                    }
                }
                let deltas = std::mem::take(&mut instance.pending);

                let mut derived: Vec<Tuple> = Vec::new();
                // Recomputed aggregate outputs are forced into the delta set
                // even when their value is unchanged: the inputs of their
                // group changed (e.g. a path was poisoned to ∞), so rules
                // consuming the aggregate must re-join against the updated
                // inputs or they would keep serving stale results (§8).
                let mut forced_deltas: Vec<Tuple> = Vec::new();
                // Firing log of this round, head tuple → (rule index, body
                // tuples), populated only when the query records provenance.
                // Aggregate winners keep the fields of the raw derivation
                // they won with, so the head-keyed lookup resolves them too.
                let recording = instance.prov.is_some();
                let mut firings: HashMap<Tuple, (u32, Vec<Tuple>)> = HashMap::new();
                {
                    let source = Overlay { local: &instance.db, shared: &self.shared };
                    let mut log = FiringLog::new();
                    let absorb =
                        |log: &mut FiringLog,
                         ri: usize,
                         firings: &mut HashMap<Tuple, (u32, Vec<Tuple>)>| {
                            for firing in log.firings.drain(..) {
                                firings.insert(firing.head, (ri as u32, firing.body));
                            }
                        };
                    for (ri, plan) in instance.compiled.iter().enumerate() {
                        let rule = plan.rule();
                        if rule.head.has_aggregate() {
                            // Aggregates are recomputed from the full local
                            // table whenever any of their inputs changed —
                            // including negated body atoms (a delta on a
                            // lower-stratum negated relation changes which
                            // rows feed the aggregate).
                            let touched = plan
                                .positive_rels()
                                .iter()
                                .chain(plan.neg_rels())
                                .any(|r| deltas.contains_key(r));
                            if !touched {
                                continue;
                            }
                            let raw = if recording {
                                plan.evaluate_traced(&self.builtins, &source, None, &mut log)
                            } else {
                                plan.evaluate(&self.builtins, &source, None)
                            };
                            if let Ok(raw) = raw {
                                if recording {
                                    absorb(&mut log, ri, &mut firings);
                                }
                                if let Ok(grouped) =
                                    apply_aggregate(&rule.head, plan.head_rel(), &raw)
                                {
                                    forced_deltas.extend(grouped.iter().cloned());
                                    derived.extend(grouped);
                                }
                            }
                            continue;
                        }
                        for (i, rel) in plan.positive_rels().iter().enumerate() {
                            let Some(delta) = deltas.get(rel) else { continue };
                            if delta.is_empty() {
                                continue;
                            }
                            let tuples = if recording {
                                plan.evaluate_traced(
                                    &self.builtins,
                                    &source,
                                    Some((i, delta)),
                                    &mut log,
                                )
                            } else {
                                plan.evaluate(&self.builtins, &source, Some((i, delta)))
                            };
                            if let Ok(tuples) = tuples {
                                if recording {
                                    absorb(&mut log, ri, &mut firings);
                                }
                                derived.extend(tuples);
                            }
                        }
                    }
                }

                for tuple in forced_deltas {
                    // Only force a re-join when the tuple is already the
                    // stored value (a genuinely new/changed value is routed
                    // below and becomes a delta anyway).
                    let Some(instance) = self.instances.get_mut(&qid) else { break };
                    if instance.db.contains(&tuple) {
                        instance.pending.entry(tuple.rel()).or_default().push(tuple);
                    }
                }
                for tuple in derived {
                    let action = firings
                        .get(&tuple)
                        .map(|(rule, body)| ProvAction::Fired(*rule, body.clone()));
                    let stored = self.route_tuple(qid, tuple.clone(), action, &mut outbound);
                    // Reverse-path cache installation for shared queries.
                    if stored {
                        if let Some((next, msg)) = self.reverse_path_install(qid, &tuple) {
                            cache_installs.push((next, msg));
                        }
                    }
                }
            }
            // The batch quiesced: retire prune-map state whose backing
            // tuples are gone, so churn cannot grow the map monotonically.
            if let Some(instance) = self.instances.get_mut(&qid) {
                self.stats.prune_evicted += instance.evict_stale_prune_groups();
            }
            self.flush_outbound(ctx, qid, outbound);
            for (next, msg) in cache_installs {
                let size = msg.wire_size();
                ctx.send(next, msg, size);
            }
        }
    }

    /// The first hop of a reverse-path cache installation for a freshly
    /// stored tuple, when `qid` shares results and the tuple is one of its
    /// results (§7.3).
    fn reverse_path_install(&self, qid: QueryId, tuple: &Tuple) -> Option<(NodeId, NetMsg)> {
        let instance = self.instances.get(&qid)?;
        if !instance.spec.share_results
            || !instance.spec.program.result_relations.contains(&tuple.rel())
        {
            return None;
        }
        self.cache_install_message(instance.cache_rel, tuple)
    }

    /// Build the first hop of a reverse-path cache installation for a
    /// freshly stored best-path result.
    fn cache_install_message(&self, cache: RelId, tuple: &Tuple) -> Option<(NodeId, NetMsg)> {
        if tuple.arity() != 4 || tuple.node_at(0) != Some(self.node) {
            return None;
        }
        let dest = tuple.node_at(1)?;
        let path = tuple.field(2)?.as_path()?;
        let cost = tuple.field(3)?.as_cost()?;
        if path.len() < 3 || cost.is_infinite() {
            // One-hop paths have no intermediate nodes to cache at.
            return None;
        }
        let next = path.nodes()[1];
        let link_cost = self.neighbors.get(&next).copied().unwrap_or(Cost::ZERO);
        let remaining = Cost::new((cost.value() - link_cost.value()).max(0.0));
        Some((
            next,
            NetMsg::CacheInstall {
                cache,
                dest,
                suffix: path.nodes()[1..].to_vec(),
                cost: remaining,
            },
        ))
    }

    fn handle_cache_install(
        &mut self,
        ctx: &mut Context<'_, NetMsg>,
        cache: RelId,
        dest: NodeId,
        suffix: Vec<NodeId>,
        cost: Cost,
    ) {
        if suffix.first() != Some(&self.node) || suffix.len() < 2 {
            return;
        }
        let path = dr_types::PathVector::from_nodes(suffix.clone());
        self.shared.insert(Tuple::from_rel(
            cache,
            vec![Value::Node(self.node), Value::Node(dest), Value::Path(path), Value::Cost(cost)],
        ));
        if suffix.len() > 2 {
            let next = suffix[1];
            let link_cost = self.neighbors.get(&next).copied().unwrap_or(Cost::ZERO);
            let remaining = Cost::new((cost.value() - link_cost.value()).max(0.0));
            let msg =
                NetMsg::CacheInstall { cache, dest, suffix: suffix[1..].to_vec(), cost: remaining };
            let size = msg.wire_size();
            ctx.send(next, msg, size);
        }
    }

    /// True when a received tuple's relation tag is one this query's symbol
    /// catalog binds (or the deployment-wide neighbor-table relation): the
    /// decode step of the wire format.
    fn tuple_decodes(&self, qid: QueryId, tuple: &Tuple) -> bool {
        let rel = tuple.rel();
        if rel == self.link_rel {
            return true;
        }
        match self.instances.get(&qid) {
            Some(instance) => {
                instance.spec.program.rel_catalog.contains(rel) || rel == instance.cache_rel
            }
            None => false,
        }
    }

    /// Apply a neighbor-table change to every installed query (a keyed
    /// upsert of the corresponding `link` tuple, which the next batch folds
    /// into the dataflow — §8's incremental recomputation).
    fn apply_link_update(&mut self, ctx: &mut Context<'_, NetMsg>, neighbor: NodeId, cost: Cost) {
        let prev = self.neighbors.insert(neighbor, cost);
        let revived = cost.is_finite() && prev.is_none_or(|c| c.is_infinite());
        let qids: Vec<QueryId> = self.instances.keys().copied().collect();
        for qid in qids {
            let link = self.link_tuple(neighbor, cost);
            let mut outbound = BTreeMap::new();
            self.route_tuple(qid, link, None, &mut outbound);
            if revived {
                self.reinject_neighbor_copies(qid, neighbor);
            }
            self.flush_outbound(ctx, qid, outbound);
        }
        if !self.instances.is_empty() {
            self.schedule_batch(ctx);
        }
    }

    /// Re-fire the remote joins across a revived adjacency: re-inject, as
    /// deltas, every finite shipped-copy tuple stored here whose owner is
    /// `neighbor`.
    ///
    /// While the adjacency was dead, the owner's ∞ copy-refresh (shipped
    /// when it poisoned its side of the link) never arrived — there was no
    /// link to carry it. After the link comes back the owner re-ships its
    /// finite copy, but that re-ship is byte-identical to what this node
    /// still stores, so the keyed insert reports nothing new and the rules
    /// joining against the copy never re-run. The visible symptom is a
    /// partition that never fully heals: both sides recompute routes to the
    /// cut endpoints themselves (those flow from genuine `link` deltas) but
    /// the stored-path sets never re-flood across the cut. Re-injecting the
    /// surviving copies as deltas re-runs those joins against the full
    /// stored state, which is exactly the re-flood the heal needs. Copies
    /// holding an ∞ field are skipped: they were deltas when they arrived,
    /// their joins already ran, and replaying a poison could tombstone a
    /// route that is currently valid.
    fn reinject_neighbor_copies(&mut self, qid: QueryId, neighbor: NodeId) {
        let Some(instance) = self.instances.get_mut(&qid) else { return };
        let program = Arc::clone(&instance.spec.program);
        for ship in &program.ships {
            let loc = program.catalog.location_field(ship.source_relation);
            let copies: Vec<Tuple> = instance
                .db
                .scan(ship.cache_relation)
                .filter(|t| {
                    t.node_at(loc) == Some(neighbor)
                        && t.fields().iter().all(|v| !v.is_infinite_cost())
                })
                .cloned()
                .collect();
            if !copies.is_empty() {
                instance.pending.entry(ship.cache_relation).or_default().extend(copies);
            }
        }
    }

    /// Reorder one delivered batch so the aggregate-selection admission
    /// gate sees, per selected relation, ∞ tombstones first and finite
    /// tuples best-value first.
    ///
    /// Network reordering (loss, retransmission, duplication) otherwise
    /// defeats the prune: finite routes arriving worst-first are each
    /// better than the last, so every one of them is admitted, stored,
    /// shipped, and re-joined downstream — the lossy churn benchmark
    /// derives ~90× more tuples than its lossless twin mostly from this.
    /// Sorting is per relation and stable; tuples of non-selected relations
    /// (and the relative order of different relations) are untouched, so a
    /// batch with no aggregate selections is processed exactly as it
    /// arrived. Any processing order is semantically valid — delivery order
    /// was never guaranteed — this one just minimizes admissions.
    fn sort_batch_for_admission(&self, qid: QueryId, batch: &mut [(Tuple, ProvTag)]) {
        let Some(instance) = self.instances.get(&qid) else { return };
        if !instance.spec.aggregate_selections {
            return;
        }
        let program = &instance.spec.program;
        for sel in &program.agg_selections {
            let idx: Vec<usize> = batch
                .iter()
                .enumerate()
                .filter(|(_, (t, _))| t.rel() == sel.input_relation)
                .map(|(i, _)| i)
                .collect();
            if idx.len() < 2 {
                continue;
            }
            let mut members: Vec<(Tuple, ProvTag)> =
                idx.iter().map(|&i| batch[i].clone()).collect();
            let rank = |t: &Tuple| -> (u8, Option<Value>) {
                match t.field(sel.value_field) {
                    // Tombstones first: they only invalidate, and admitting
                    // them before the finite alternatives avoids comparing
                    // fresh routes against a best that is about to die.
                    Some(v) if v.is_infinite_cost() => (0, None),
                    Some(v) => (1, Some(v.clone())),
                    None => (1, None),
                }
            };
            members.sort_by(|(a, _), (b, _)| {
                let (ra, va) = rank(a);
                let (rb, vb) = rank(b);
                ra.cmp(&rb).then_with(|| match (va, vb) {
                    (Some(x), Some(y)) => {
                        let ord = x.compare_numeric(&y);
                        match sel.func {
                            dr_datalog::ast::AggFunc::Max => ord.reverse(),
                            _ => ord,
                        }
                    }
                    _ => std::cmp::Ordering::Equal,
                })
            });
            for (&i, m) in idx.iter().zip(members) {
                batch[i] = m;
            }
        }
    }

    /// Apply one arrived batch of tuples for `qid` (already past teardown
    /// and duplicate checks): piggy-backed installation, catalog decode,
    /// cost-ordering for the admission gate, routing, reverse-path cache
    /// installation, batch scheduling.
    fn deliver_tuples(
        &mut self,
        ctx: &mut Context<'_, NetMsg>,
        from: NodeId,
        qid: QueryId,
        items: Vec<Tuple>,
        provs: Vec<ProvTag>,
    ) {
        // Piggy-backed installation: tuples for an unknown query install it
        // on the fly (§3.5).
        if !self.instances.get(&qid).map(|i| i.installed).unwrap_or(false) {
            self.install(ctx, qid);
            // Still not installed: the spec never reached this node's
            // library (it was partitioned away during the Install flood).
            // Ask the sender to re-offer the query — the receive-side
            // counterpart of the lazy teardown repair. Self-limiting: one
            // request per batch that finds the query unknown.
            if !self.instances.get(&qid).map(|i| i.installed).unwrap_or(false)
                && !self.torn_down.contains(&qid)
            {
                let req = NetMsg::QueryRequest { qid };
                let size = req.wire_size();
                ctx.send(from, req, size);
            }
        }
        self.stats.tuples_received += items.len() as u64;
        let tags: Vec<ProvTag> =
            if provs.len() == items.len() { provs } else { vec![None; items.len()] };
        let mut batch: Vec<(Tuple, ProvTag)> = items.into_iter().zip(tags).collect();
        self.sort_batch_for_admission(qid, &mut batch);
        let mut outbound = BTreeMap::new();
        let mut cache_installs = Vec::new();
        for (tuple, tag) in batch {
            // Decode the shipped relation tag against the query's symbol
            // catalog: a tuple whose id the catalog does not bind (a stale
            // id from an older query version, or garbage) is dropped instead
            // of silently creating a phantom table.
            if !self.tuple_decodes(qid, &tuple) {
                self.stats.tuples_rejected += 1;
                continue;
            }
            let action = tag.map(|(n, p)| ProvAction::Wire(n, p));
            let stored = self.route_tuple(qid, tuple.clone(), action, &mut outbound);
            // Results of shared queries usually arrive here (shipped home
            // from the node that derived them); kick off the reverse-path
            // cache installation of §7.3.
            if stored {
                if let Some(install) = self.reverse_path_install(qid, &tuple) {
                    cache_installs.push(install);
                }
            }
        }
        self.flush_outbound(ctx, qid, outbound);
        for (next, msg) in cache_installs {
            let size = msg.wire_size();
            ctx.send(next, msg, size);
        }
        self.schedule_batch(ctx);
    }

    /// Receive one sequence-numbered batch: suppress duplicates, buffer
    /// ahead-of-order arrivals, drain in order, and acknowledge cumulatively.
    ///
    /// The header's `base` advertises the lowest sequence number the sender
    /// can still retransmit; gaps below it are abandoned holes, so the
    /// receiver delivers whatever it holds from the gap (in order) and
    /// skips past the rest rather than waiting for batches that are never
    /// coming.
    fn receive_sequenced(
        &mut self,
        ctx: &mut Context<'_, NetMsg>,
        from: NodeId,
        qid: QueryId,
        header: StreamSeq,
        items: Vec<Tuple>,
        provs: Vec<ProvTag>,
    ) {
        let StreamSeq { seq, base } = header;
        let stream = self.incoming.entry((from, qid)).or_default();
        let mut ready: Vec<(Vec<Tuple>, Vec<ProvTag>)> = Vec::new();
        if base > stream.next_expected {
            while stream.next_expected < base {
                match stream.buffered.remove(&stream.next_expected) {
                    Some(batch) => ready.push(batch),
                    None => self.stats.gaps_skipped += 1,
                }
                stream.next_expected += 1;
            }
        }
        if seq < stream.next_expected || stream.buffered.contains_key(&seq) {
            // Already applied or already held: a retransmit crossed the ack
            // (or the wire duplicated the batch). Drop it, but re-ack so the
            // sender stops retransmitting.
            self.stats.dups_dropped += 1;
        } else {
            stream.buffered.insert(seq, (items, provs));
            // Drain the in-order prefix.
            while let Some(batch) = stream.buffered.remove(&stream.next_expected) {
                ready.push(batch);
                stream.next_expected += 1;
            }
            // A permanently lost batch must not pin unbounded buffer: skip
            // the gap once too much is held and let soft-state repair cover
            // whatever the abandoned batch carried.
            if stream.buffered.len() > REORDER_BUFFER_CAP {
                if let Some((&lowest, _)) = stream.buffered.iter().next() {
                    stream.next_expected = lowest;
                    while let Some(batch) = stream.buffered.remove(&stream.next_expected) {
                        ready.push(batch);
                        stream.next_expected += 1;
                    }
                }
            }
        }
        for (batch, tags) in ready {
            self.deliver_tuples(ctx, from, qid, batch, tags);
        }
        let cumulative = self.incoming.get(&(from, qid)).map(|s| s.next_expected).unwrap_or(0);
        let ack = NetMsg::Ack { qid, cumulative };
        let size = ack.wire_size();
        ctx.send(from, ack, size);
        self.stats.acks_sent += 1;
    }

    /// A peer saw tuples for a query it does not know: re-offer the
    /// installation if we hold the spec (re-registering it with the shared
    /// library first — the request models the spec traveling with the
    /// reply), or propagate the teardown if the query is dead.
    fn handle_query_request(&mut self, ctx: &mut Context<'_, NetMsg>, from: NodeId, qid: QueryId) {
        if self.torn_down.contains(&qid) {
            let reply = NetMsg::Teardown { qid };
            let size = reply.wire_size();
            ctx.send(from, reply, size);
            return;
        }
        let Some(instance) = self.instances.get(&qid) else { return };
        if !instance.installed {
            return;
        }
        // Re-register the spec with the shared library from our own
        // instance before replying, so the peer's `install` finds it even if
        // the library entry is gone (in a real deployment the spec would
        // travel inside the reply; the library is the wire here).
        self.config.library.restore(Arc::clone(&instance.spec));
        let reply = NetMsg::Install { qid };
        let size = instance.spec.program.dissemination_size();
        ctx.send(from, reply, size);
    }

    /// Serve a provenance-record fetch: look the id up in `qid`'s arena and
    /// reply to the requester. A pruned record (or a torn-down / unknown
    /// query) yields a `None` reply, which the explaining side renders as
    /// an unresolved pointer rather than an error.
    fn handle_prov_fetch(
        &mut self,
        ctx: &mut Context<'_, NetMsg>,
        qid: QueryId,
        id: ProvId,
        requester: NodeId,
    ) {
        self.stats.prov_fetches += 1;
        let record = self
            .instances
            .get(&qid)
            .and_then(|i| i.prov.as_ref())
            .and_then(|store| store.get(id))
            .cloned();
        let reply = NetMsg::ProvReply { qid, node: self.node, id, record: record.map(Box::new) };
        let size = reply.wire_size();
        ctx.send(requester, reply, size);
    }
}

impl NodeApp for QueryProcessor {
    type Message = NetMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        self.node = ctx.id();
        self.neighbors =
            ctx.neighbors().into_iter().map(|(nb, params)| (nb, params.cost)).collect();
    }

    fn on_join(&mut self, ctx: &mut Context<'_, NetMsg>) {
        // Warm restart: refresh the neighbor table and replay it into every
        // installed query so routes through this node are recomputed.
        self.node = ctx.id();
        let fresh: Vec<(NodeId, Cost)> =
            ctx.neighbors().into_iter().map(|(nb, params)| (nb, params.cost)).collect();
        for (nb, cost) in fresh {
            self.apply_link_update(ctx, nb, cost);
            // The restart kept the old neighbor table, so the upsert above
            // sees no ∞→finite transition — force the copy re-injection
            // that a detected revival would have done. The node's own
            // stored state survived the outage unchanged (no deltas), yet
            // every route *through* it was tombstoned at its peers; without
            // re-running the copy joins those routes are never re-derived.
            if cost.is_finite() {
                let qids: Vec<QueryId> = self.instances.keys().copied().collect();
                for qid in qids {
                    self.reinject_neighbor_copies(qid, nb);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NetMsg>, from: NodeId, msg: NetMsg) {
        match msg {
            NetMsg::Install { qid } => {
                // Lazy teardown repair: a peer that missed the teardown
                // flood (it was down at the time) and still advertises the
                // dead query learns of the teardown the moment it talks to
                // anyone who saw it.
                if self.torn_down.contains(&qid) {
                    let reply = NetMsg::Teardown { qid };
                    let size = reply.wire_size();
                    ctx.send(from, reply, size);
                    return;
                }
                self.install(ctx, qid);
            }
            NetMsg::Tuples { qid, seq, items, provs } => {
                if self.torn_down.contains(&qid) {
                    let reply = NetMsg::Teardown { qid };
                    let size = reply.wire_size();
                    ctx.send(from, reply, size);
                    return;
                }
                match seq {
                    // Legacy fire-and-forget batch: apply directly.
                    None => self.deliver_tuples(ctx, from, qid, items, provs),
                    Some(s) => self.receive_sequenced(ctx, from, qid, s, items, provs),
                }
            }
            NetMsg::Ack { qid, cumulative } => {
                if let Some(stream) = self.outgoing.get_mut(&(from, qid)) {
                    stream.unacked.retain(|&s, _| s >= cumulative);
                }
            }
            NetMsg::QueryRequest { qid } => {
                self.handle_query_request(ctx, from, qid);
            }
            NetMsg::ProvFetch { qid, id, requester } => {
                self.handle_prov_fetch(ctx, qid, id, requester);
            }
            NetMsg::ProvReply { qid, node, id, record } => {
                if let Some(instance) = self.instances.get_mut(&qid) {
                    if let (Some(store), Some(rec)) = (instance.prov.as_mut(), record) {
                        store.remember_fetched(node, id, *rec);
                    }
                }
            }
            NetMsg::Teardown { qid } => {
                self.teardown(ctx, qid);
            }
            NetMsg::CacheInstall { cache, dest, suffix, cost } => {
                self.handle_cache_install(ctx, cache, dest, suffix, cost);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg>, timer: u64) {
        if Some(timer) == self.batch_timer {
            self.batch_timer = None;
            self.process_batches(ctx);
            // If processing produced new pending work (e.g. tuples delivered
            // to ourselves), schedule another round. Queued revivals also
            // keep the timer armed: they only run in a batch that starts
            // idle, so they need a next batch to run in.
            if self.instances.values().any(|i| i.has_pending() || !i.revive.is_empty()) {
                self.schedule_batch(ctx);
            }
        } else if Some(timer) == self.retx_timer {
            self.retx_timer = None;
            self.retransmit_scan(ctx);
        }
        // Any other id is a stale timer from before a fail/rejoin: ignore.
    }

    fn on_link_event(&mut self, ctx: &mut Context<'_, NetMsg>, event: LinkEvent) {
        match event {
            LinkEvent::MetricChanged { neighbor, params } => {
                self.apply_link_update(ctx, neighbor, params.cost);
            }
            LinkEvent::NeighborDown { neighbor } => {
                self.apply_link_update(ctx, neighbor, Cost::INFINITY);
            }
            LinkEvent::NeighborUp { neighbor, params } => {
                self.apply_link_update(ctx, neighbor, params.cost);
            }
        }
    }
}
