//! Experiment harness: glue between topologies, the simulator, and the
//! query processors.
//!
//! The paper's evaluation repeatedly performs the same choreography: build a
//! topology, start a query processor on every node, issue one or more
//! queries from chosen nodes, let the system run (optionally injecting link
//! updates and churn), and measure convergence latency, per-node
//! communication overhead, average path cost, and recovery time.
//! [`RoutingHarness`] packages that choreography for the figures/tables
//! binaries in `dr-bench`, the examples, and the integration tests.
//!
//! # Issuing queries
//!
//! Queries are issued through the fluent [`IssueBuilder`] returned by
//! [`RoutingHarness::issue`], and observed through the typed
//! [`QueryHandle`] the builder returns:
//!
//! ```ignore
//! let handle = harness
//!     .issue(best_path())
//!     .from(NodeId::new(0))
//!     .at(SimTime::ZERO)
//!     .submit()?;                       // -> QueryHandle<RouteEntry>
//! harness.run_until(SimTime::from_secs(30));
//! for route in handle.finite_results(&harness)? {
//!     println!("{} -> {} costs {}", route.src, route.dst, route.cost);
//! }
//! ```
//!
//! The handle is a lightweight, clonable token — it borrows nothing, so the
//! harness stays freely mutable between observations.

use crate::localize::localize;
use crate::processor::{NetMsg, ProcessorConfig, ProcessorStats, QueryProcessor, StateFootprint};
use crate::query::{QueryId, QueryLibrary, QuerySpec};
use dr_datalog::ast::Program;
use dr_netsim::{SimConfig, SimDuration, SimTime, Simulator, Topology};
use dr_provenance::{DerivationTree, ProvId, ProvRecord, ProvRef};
use dr_types::view::{CostView, FromTuple};
use dr_types::{NodeId, Result, RouteEntry, Tuple};
use std::collections::{BTreeMap, HashSet};
use std::marker::PhantomData;
use std::sync::Arc;

/// A sample of the global result-set state at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Simulated time of the snapshot.
    pub time: SimTime,
    /// Number of result tuples with finite cost across all nodes.
    pub results: usize,
    /// Average cost of those result tuples (the paper's AvgPathRTT when the
    /// metric is RTT), or 0 when there are none.
    pub avg_cost: f64,
}

/// A typed handle to an issued query.
///
/// The handle names the query (its [`QueryId`]) and fixes the *view* `T`
/// its results decode into — [`RouteEntry`] for path-shaped protocols (the
/// default), [`dr_types::CostEntry`], [`dr_types::ReachEntry`],
/// [`dr_types::TreeEdge`], or any other [`FromTuple`] implementation.
///
/// Handles hold no borrow on the harness; every observation method takes
/// the harness explicitly, so issuing further queries, scheduling churn,
/// and advancing simulated time all stay possible while handles are alive.
pub struct QueryHandle<T = RouteEntry> {
    qid: QueryId,
    name: Arc<str>,
    _view: PhantomData<fn() -> T>,
}

impl<T> Clone for QueryHandle<T> {
    fn clone(&self) -> Self {
        QueryHandle { qid: self.qid, name: Arc::clone(&self.name), _view: PhantomData }
    }
}

impl<T> std::fmt::Debug for QueryHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle").field("qid", &self.qid).field("name", &self.name).finish()
    }
}

impl<T> QueryHandle<T> {
    /// The underlying query id (as disseminated over the network).
    pub fn id(&self) -> QueryId {
        self.qid
    }

    /// The human-readable query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reinterpret the handle under a different result view — e.g. read the
    /// (src, dst) projection of a route query as `ReachEntry`s.
    pub fn with_view<U: FromTuple>(&self) -> QueryHandle<U> {
        QueryHandle { qid: self.qid, name: Arc::clone(&self.name), _view: PhantomData }
    }

    /// The raw, undecoded result tuples across every node (escape hatch for
    /// shapes without a view).
    pub fn raw_results(&self, harness: &RoutingHarness) -> Vec<Tuple> {
        harness.collect_results(self.qid)
    }

    /// The raw result tuples stored at `node`.
    pub fn raw_results_at(&self, harness: &RoutingHarness, node: NodeId) -> Vec<Tuple> {
        harness.sim.app(node).results(self.qid)
    }

    /// The forwarding table `node` derived from this query.
    pub fn forwarding_table(
        &self,
        harness: &RoutingHarness,
        node: NodeId,
    ) -> BTreeMap<NodeId, NodeId> {
        harness.sim.app(node).forwarding_table(self.qid)
    }

    /// A fresh [`ResultCursor`] over this query's deployment-wide result
    /// set. The first poll reports every current result as added.
    pub fn cursor(&self) -> ResultCursor {
        ResultCursor { qid: self.qid, seen: BTreeMap::new() }
    }
}

/// Result-set changes observed between two [`ResultCursor`] polls.
///
/// Result tuples disappear as well as appear — keyed upserts replace a
/// route's row when a better path wins, ∞-tombstones poison rows during
/// recovery, and teardown removes the whole set — so a streaming consumer
/// needs both directions to mirror the result set incrementally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultsDelta {
    /// Result tuples that appeared since the last poll.
    pub added: Vec<Tuple>,
    /// Result tuples that disappeared since the last poll.
    pub removed: Vec<Tuple>,
}

impl ResultsDelta {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of changed rows.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// An incremental view over one query's deployment-wide result set.
///
/// The cursor remembers the result multiset it last reported;
/// [`ResultCursor::poll`] diffs the current state against that memory and
/// returns only the changes. Polling is pull-based and the cursor holds no
/// borrow on the harness, so a long-lived service can keep thousands of
/// cursors (one per subscriber) and poll them after each batch of simulated
/// time — a subscriber that temporarily stops polling simply sees a larger,
/// coalesced delta later, which is what bounds the per-subscriber memory to
/// the size of the result set rather than the length of the update history.
#[derive(Debug, Clone)]
pub struct ResultCursor {
    qid: QueryId,
    /// Result multiset as of the last poll (tuple → multiplicity; the same
    /// row may legitimately be stored at several nodes).
    seen: BTreeMap<Tuple, usize>,
}

impl ResultCursor {
    /// A fresh cursor over `qid`'s deployment-wide result set, equivalent
    /// to [`QueryHandle::cursor`] for callers that hold only the id (e.g. a
    /// service subscribing on behalf of a remote client).
    pub fn new(qid: QueryId) -> ResultCursor {
        ResultCursor { qid, seen: BTreeMap::new() }
    }

    /// The query this cursor observes.
    pub fn query(&self) -> QueryId {
        self.qid
    }

    /// Diff the query's current result set against the last poll, report
    /// the changes, and advance the cursor.
    pub fn poll(&mut self, harness: &RoutingHarness) -> ResultsDelta {
        let mut current: BTreeMap<Tuple, usize> = BTreeMap::new();
        for t in harness.collect_results(self.qid) {
            *current.entry(t).or_insert(0) += 1;
        }
        let mut delta = ResultsDelta::default();
        for (t, &now) in &current {
            let before = self.seen.get(t).copied().unwrap_or(0);
            for _ in before..now {
                delta.added.push(t.clone());
            }
        }
        for (t, &before) in &self.seen {
            let now = current.get(t).copied().unwrap_or(0);
            for _ in now..before {
                delta.removed.push(t.clone());
            }
        }
        self.seen = current;
        delta
    }
}

impl<T: FromTuple> QueryHandle<T> {
    /// All results of this query across every node, decoded as `T`.
    ///
    /// A tuple that does not match `T`'s shape is a
    /// [`dr_types::Error::Decode`] — never a silently skipped row.
    pub fn results(&self, harness: &RoutingHarness) -> Result<Vec<T>> {
        dr_types::view::decode_all(&self.raw_results(harness))
    }

    /// The results stored at `node`, decoded as `T`.
    pub fn results_at(&self, harness: &RoutingHarness, node: NodeId) -> Result<Vec<T>> {
        dr_types::view::decode_all(&self.raw_results_at(harness, node))
    }
}

impl<T: CostView> QueryHandle<T> {
    /// The results whose cost is finite (the paper's "routes found" count;
    /// rule NR3 derives infinite-cost tombstones during route repair).
    pub fn finite_results(&self, harness: &RoutingHarness) -> Result<Vec<T>> {
        Ok(self.results(harness)?.into_iter().filter(|r| r.cost().is_finite()).collect())
    }

    /// The average cost over all finite results (AvgPathRTT when link costs
    /// are RTTs), or 0 when there are none.
    pub fn average_cost(&self, harness: &RoutingHarness) -> Result<f64> {
        Ok(average_cost_of(&self.finite_results(harness)?))
    }
}

pub(crate) fn average_cost_of<T: CostView>(finite: &[T]) -> f64 {
    if finite.is_empty() {
        return 0.0;
    }
    finite.iter().map(|r| r.cost().value()).sum::<f64>() / finite.len() as f64
}

/// Fluent specification of a query issuance, created by
/// [`RoutingHarness::issue`].
///
/// Defaults mirror the paper's common case: issued from node 0 at t=0,
/// aggregate selections on (§7.1), sharing off, no replicated relations, no
/// extra facts. Call [`IssueBuilder::submit`] to localize the program,
/// register the canonical [`QuerySpec`], and disseminate the query.
#[must_use = "the query is only issued when submit() is called"]
pub struct IssueBuilder<'h> {
    harness: &'h mut RoutingHarness,
    program: Program,
    issuer: NodeId,
    at: SimTime,
    name: String,
    replicated: Vec<String>,
    aggregate_selections: bool,
    share_results: bool,
    cache_relation: String,
    facts: Vec<Tuple>,
    record_provenance: bool,
}

impl<'h> IssueBuilder<'h> {
    /// The node that issues (and floods) the query. Default: node 0.
    #[allow(clippy::should_implement_trait)] // fluent DSL: `.from(node)` reads as prose
    pub fn from(mut self, issuer: NodeId) -> Self {
        self.issuer = issuer;
        self
    }

    /// The simulated time at which the query is injected. Default: t=0.
    pub fn at(mut self, at: SimTime) -> Self {
        self.at = at;
        self
    }

    /// Human-readable name for logs and experiment output.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Relations replicated to every node during dissemination (query
    /// constants such as `magicSources` / `magicDsts`).
    pub fn replicated<I, S>(mut self, relations: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.replicated = relations.into_iter().map(Into::into).collect();
        self
    }

    /// Toggle the aggregate-selections optimization (§7.1). Default: on.
    pub fn aggregate_selections(mut self, on: bool) -> Self {
        self.aggregate_selections = on;
        self
    }

    /// Toggle multi-query result sharing through the cache relation (§7.3).
    /// Default: off.
    pub fn sharing(mut self, on: bool) -> Self {
        self.share_results = on;
        self
    }

    /// Override the cross-query cache relation (queries computing different
    /// metrics must not share each other's costs, §9.1.3).
    pub fn cache_relation(mut self, relation: impl Into<String>) -> Self {
        self.cache_relation = relation.into();
        self
    }

    /// Record derivation provenance for this query, enabling
    /// [`RoutingHarness::explain`]. Default: off (the evaluation hot path
    /// then stays byte-identical to a build without provenance).
    pub fn provenance(mut self, on: bool) -> Self {
        self.record_provenance = on;
        self
    }

    /// Facts installed together with the query (replicated relations go to
    /// every node, located facts only to the node they name).
    pub fn facts(mut self, facts: Vec<Tuple>) -> Self {
        self.facts = facts;
        self
    }

    /// Append one fact.
    pub fn fact(mut self, fact: Tuple) -> Self {
        self.facts.push(fact);
        self
    }

    /// Localize, register, and disseminate the query; results decode as
    /// [`RouteEntry`] (the shape of every best-path-family protocol).
    pub fn submit(self) -> Result<QueryHandle<RouteEntry>> {
        self.submit_view()
    }

    /// Like [`IssueBuilder::submit`], but type the handle with a different
    /// result view (e.g. `ReachEntry` for `reachable(@S,D)` results).
    pub fn submit_view<T: FromTuple>(self) -> Result<QueryHandle<T>> {
        let replicated: Vec<&str> = self.replicated.iter().map(String::as_str).collect();
        let localized = Arc::new(localize(&self.program, &replicated)?);
        let qid = self.harness.next_qid;
        self.harness.next_qid += 1;
        let name: Arc<str> = Arc::from(self.name.as_str());
        let spec = QuerySpec::new(qid, self.name, localized)
            .with_aggregate_selections(self.aggregate_selections)
            .with_sharing(self.share_results)
            .with_cache_relation(self.cache_relation)
            .with_replicated(self.replicated)
            .with_facts(self.facts)
            .with_provenance(self.record_provenance);
        self.harness.library.register(spec);
        self.harness.sim.inject(self.at, self.issuer, NetMsg::Install { qid });
        Ok(QueryHandle { qid, name, _view: PhantomData })
    }
}

/// Harness wrapping a simulator full of query processors.
pub struct RoutingHarness {
    sim: Simulator<QueryProcessor>,
    library: Arc<QueryLibrary>,
    next_qid: QueryId,
}

impl RoutingHarness {
    /// Build a harness over `topology` with default processor and simulator
    /// configuration.
    pub fn new(topology: Topology) -> RoutingHarness {
        RoutingHarness::with_batch_interval(topology, SimDuration::from_millis(200))
    }

    /// Build a harness with a custom batch interval (the paper uses 200 ms).
    pub fn with_batch_interval(topology: Topology, batch: SimDuration) -> RoutingHarness {
        RoutingHarness::with_transport(topology, batch, None)
    }

    /// Build a harness whose processors run the loss-tolerant reliable
    /// transport (sequence-numbered tuple batches with cumulative acks and
    /// retransmission) — required for exact result multisets when a
    /// [`dr_netsim::FaultPlan`] makes the wire lossy.
    pub fn with_reliability(
        topology: Topology,
        reliability: crate::processor::ReliabilityConfig,
    ) -> RoutingHarness {
        RoutingHarness::with_transport(topology, SimDuration::from_millis(200), Some(reliability))
    }

    /// Build a harness with an explicit batch interval and (optionally) the
    /// reliable transport — the general constructor behind
    /// [`RoutingHarness::new`] / [`RoutingHarness::with_batch_interval`] /
    /// [`RoutingHarness::with_reliability`].
    pub fn with_transport(
        topology: Topology,
        batch: SimDuration,
        reliability: Option<crate::processor::ReliabilityConfig>,
    ) -> RoutingHarness {
        let library = Arc::new(QueryLibrary::new());
        let mut config = ProcessorConfig::new(Arc::clone(&library));
        config.batch_interval = batch;
        config.reliability = reliability;
        let apps = (0..topology.num_nodes()).map(|_| QueryProcessor::new(config.clone())).collect();
        let sim = Simulator::new(topology, apps, SimConfig::default());
        RoutingHarness { sim, library, next_qid: 1 }
    }

    /// Install a deterministic fault plan on the underlying simulator
    /// (seeded loss / duplication / reordering / burst outages, applied at
    /// delivery time). Convenience over `sim_mut().set_fault_plan(..)`.
    pub fn set_fault_plan(&mut self, plan: dr_netsim::FaultPlan) {
        self.sim.set_fault_plan(plan);
    }

    /// The shared query library.
    pub fn library(&self) -> &Arc<QueryLibrary> {
        &self.library
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Simulator<QueryProcessor> {
        &self.sim
    }

    /// Mutable access to the underlying simulator (for churn / link-update
    /// schedules).
    pub fn sim_mut(&mut self) -> &mut Simulator<QueryProcessor> {
        &mut self.sim
    }

    /// Start issuing `program` as a query: returns a fluent builder whose
    /// [`IssueBuilder::submit`] localizes the program, registers the
    /// canonical [`QuerySpec`], disseminates the query, and returns a typed
    /// [`QueryHandle`].
    pub fn issue(&mut self, program: Program) -> IssueBuilder<'_> {
        IssueBuilder {
            harness: self,
            program,
            issuer: NodeId::new(0),
            at: SimTime::ZERO,
            name: "query".to_string(),
            replicated: Vec::new(),
            aggregate_selections: true,
            share_results: false,
            cache_relation: "bestPathCache".to_string(),
            facts: Vec::new(),
            record_provenance: false,
        }
    }

    /// Tear down an issued query across the whole deployment.
    ///
    /// A [`NetMsg::Teardown`] flood is injected at `from` at time `at`;
    /// every node that handles it unwinds the query's engine state — the
    /// instance with its stored tuples, pending delta buffers, prune maps,
    /// and compiled plans; the shared cache relation when this query was
    /// its last user; and the library's spec entry (which releases the
    /// localized program, its `RelCatalog`, and the statically compiled
    /// plans once the last node lets go of the `Arc`). Late messages for
    /// the query are dropped rather than resurrecting it. Run the
    /// simulation past `at` (plus flood propagation time) for the teardown
    /// to take effect everywhere.
    pub fn teardown_from(&mut self, qid: QueryId, from: NodeId, at: SimTime) {
        self.sim.inject(at, from, NetMsg::Teardown { qid });
    }

    /// [`RoutingHarness::teardown_from`] node 0 (by convention never
    /// failed by the churn schedules).
    pub fn teardown(&mut self, qid: QueryId, at: SimTime) {
        self.teardown_from(qid, NodeId::new(0), at);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Deployment-wide engine-state footprint, summed over every node (the
    /// teardown regression hook; see [`StateFootprint`]).
    pub fn state_footprint(&self) -> StateFootprint {
        let mut total = StateFootprint::default();
        for app in self.sim.apps() {
            total.merge(&app.state_footprint());
        }
        total
    }

    /// Run the simulation until `until` (events after that stay queued).
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(until);
    }

    /// Run until no events remain.
    pub fn run_to_quiescence(&mut self) {
        self.sim.run_to_quiescence();
    }

    /// All result tuples of `qid` across every node (shared by the handle
    /// methods).
    fn collect_results(&self, qid: QueryId) -> Vec<Tuple> {
        let mut out = Vec::new();
        for app in self.sim.apps() {
            out.extend(app.results(qid));
        }
        out
    }

    /// Per-node communication overhead in KB since the start of the run.
    pub fn per_node_overhead_kb(&self) -> f64 {
        self.sim.metrics().per_node_overhead_kb()
    }

    /// Deployment-wide processor counters, summed over every node: tuples
    /// derived/shipped/pruned and the ∞-tombstones collapsed during
    /// incremental maintenance (§8). The derived-tuple total is the number
    /// the churn regression tests budget against.
    pub fn processor_stats(&self) -> ProcessorStats {
        let mut total = ProcessorStats::default();
        for app in self.sim.apps() {
            total.merge(app.stats());
        }
        total
    }

    /// Explain how `tuple` was derived under query `qid`: materialize the
    /// full distributed proof tree rooted at the tuple's stored copy.
    ///
    /// The query must have been issued with [`IssueBuilder::provenance`]
    /// turned on. Local derivation records are read directly from their
    /// node's provenance store; cross-node pointers — a shipped tuple
    /// carries a `(node, ProvId)` reference back to its deriving node — are
    /// resolved on demand with a [`NetMsg::ProvFetch`] round trip over the
    /// simulated (and therefore faultable) wire, with bounded retries, so
    /// explanation works under the same loss the routes themselves survived.
    /// A pointer that never resolves (record pruned, node unreachable)
    /// renders as [`DerivationTree::Missing`] rather than failing the whole
    /// explanation.
    ///
    /// Advances simulated time by up to a few hundred milliseconds per
    /// remote fetch; route state is unaffected.
    pub fn explain(
        &mut self,
        qid: QueryId,
        tuple: &Tuple,
    ) -> std::result::Result<DerivationTree, ExplainError> {
        let nodes = self.sim.topology().num_nodes();
        let mut installed = false;
        let mut recording = false;
        let mut home = None;
        for i in 0..nodes {
            let node = NodeId::new(i as u32);
            let app = self.sim.app(node);
            if app.is_torn_down(qid) {
                return Err(ExplainError::TornDown);
            }
            if app.has_query(qid) {
                installed = true;
                recording = recording || app.provenance(qid).is_some();
                if home.is_none() && app.stores_tuple(qid, tuple) {
                    home = Some(node);
                }
            }
        }
        if !installed {
            return Err(ExplainError::UnknownQuery);
        }
        if !recording {
            return Err(ExplainError::NotRecorded);
        }
        let home = home.ok_or(ExplainError::NoSuchTuple)?;
        let root = self
            .sim
            .app(home)
            .provenance(qid)
            .map(|store| store.resolve(tuple))
            .unwrap_or(ProvRef::Base);
        let mut on_path = HashSet::new();
        Ok(self.build_tree(qid, home, tuple.clone(), root, &mut on_path, 0))
    }

    /// Materialize the proof tree hanging off one provenance reference.
    /// `node` is the node the reference was found on (`Local` ids resolve in
    /// its store; for `Remote` pointers it acts as the fetch requester).
    /// `on_path` holds the records on the current root-to-leaf path — a
    /// repeat means a cycle in (necessarily corrupt) provenance, rendered as
    /// `Missing` instead of recursing forever.
    fn build_tree(
        &mut self,
        qid: QueryId,
        node: NodeId,
        tuple: Tuple,
        prov: ProvRef,
        on_path: &mut HashSet<(NodeId, ProvId)>,
        depth: usize,
    ) -> DerivationTree {
        const MAX_DEPTH: usize = 256;
        match prov {
            ProvRef::Base => DerivationTree::Base { tuple },
            ProvRef::Local(id) => {
                if depth >= MAX_DEPTH || !on_path.insert((node, id)) {
                    return DerivationTree::Missing { tuple, node, id };
                }
                let record = self.sim.app(node).provenance(qid).and_then(|s| s.get(id)).cloned();
                let tree = match record {
                    Some(rec) => self.tree_from_record(qid, rec, tuple, on_path, depth),
                    None => DerivationTree::Missing { tuple, node, id },
                };
                on_path.remove(&(node, id));
                tree
            }
            ProvRef::Remote(owner, id) => {
                if depth >= MAX_DEPTH || !on_path.insert((owner, id)) {
                    return DerivationTree::Missing { tuple, node: owner, id };
                }
                let tree = match self.fetch_remote(qid, node, owner, id) {
                    Some(rec) => self.tree_from_record(qid, rec, tuple, on_path, depth),
                    None => DerivationTree::Missing { tuple, node: owner, id },
                };
                on_path.remove(&(owner, id));
                tree
            }
        }
    }

    /// Expand a derivation record into a `Derived` tree node. Body
    /// references are interpreted relative to the record's deriving node.
    fn tree_from_record(
        &mut self,
        qid: QueryId,
        record: ProvRecord,
        tuple: Tuple,
        on_path: &mut HashSet<(NodeId, ProvId)>,
        depth: usize,
    ) -> DerivationTree {
        let rule = self.rule_label(qid, record.rule);
        let rec_node = record.node;
        let mut children = Vec::with_capacity(record.body.len());
        for (body_tuple, body_ref) in record.body {
            children.push(self.build_tree(qid, rec_node, body_tuple, body_ref, on_path, depth + 1));
        }
        DerivationTree::Derived { tuple, rule, node: rec_node, children }
    }

    /// Resolve a remote provenance pointer by asking its owner over the
    /// wire: inject a [`NetMsg::ProvFetch`] at `owner`, run the simulation
    /// briefly so the [`NetMsg::ProvReply`] can travel (or be dropped by
    /// the fault plan), and read the requester's fetched-record cache.
    /// Bounded retries tolerate reply loss.
    fn fetch_remote(
        &mut self,
        qid: QueryId,
        requester: NodeId,
        owner: NodeId,
        id: ProvId,
    ) -> Option<ProvRecord> {
        if requester == owner {
            return self.sim.app(owner).provenance(qid).and_then(|s| s.get(id)).cloned();
        }
        let cached = |sim: &Simulator<QueryProcessor>| {
            sim.app(requester).provenance(qid).and_then(|s| s.fetched(owner, id)).cloned()
        };
        if let Some(rec) = cached(&self.sim) {
            return Some(rec);
        }
        for _ in 0..8 {
            let at = self.sim.now();
            self.sim.inject(at, owner, NetMsg::ProvFetch { qid, id, requester });
            self.sim.run_until(at + SimDuration::from_millis(50));
            if let Some(rec) = cached(&self.sim) {
                return Some(rec);
            }
        }
        None
    }

    /// The label of rule `rule` of query `qid` ("NR2", "BPR1", …), falling
    /// back to the rule index when the program left the rule unnamed or the
    /// spec is gone.
    fn rule_label(&self, qid: QueryId, rule: u32) -> String {
        self.library
            .get(qid)
            .and_then(|spec| {
                spec.program.rules.get(rule as usize).and_then(|lr| lr.rule.name.clone())
            })
            .unwrap_or_else(|| format!("rule{rule}"))
    }
}

/// Why [`RoutingHarness::explain`] could not produce a derivation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainError {
    /// The query id is not installed on any node (never issued, or the id
    /// is simply unknown).
    UnknownQuery,
    /// The query was torn down; its provenance stores died with it.
    TornDown,
    /// The query was issued without [`IssueBuilder::provenance`], so there
    /// is nothing to explain from.
    NotRecorded,
    /// No node currently stores the tuple (never derived, or pruned away).
    NoSuchTuple,
}

impl std::fmt::Display for ExplainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExplainError::UnknownQuery => write!(f, "query is not installed on any node"),
            ExplainError::TornDown => write!(f, "query was torn down"),
            ExplainError::NotRecorded => write!(f, "query was issued without provenance recording"),
            ExplainError::NoSuchTuple => write!(f, "no node stores the tuple"),
        }
    }
}

impl std::error::Error for ExplainError {}

/// The earliest sample time after which neither the result count nor the
/// average cost changes again.
pub(crate) fn converged_at(samples: &[Sample]) -> Option<SimTime> {
    if samples.is_empty() {
        return None;
    }
    let last = samples.last().expect("non-empty");
    if last.results == 0 {
        return None;
    }
    let mut converged = last.time;
    for pair in samples.windows(2).rev() {
        let (prev, cur) = (&pair[0], &pair[1]);
        if prev.results == cur.results && (prev.avg_cost - cur.avg_cost).abs() < 1e-9 {
            converged = prev.time;
        } else {
            break;
        }
    }
    Some(converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::parse_program;
    use dr_netsim::LinkParams;
    use dr_types::{Cost, CostEntry, Value};

    const BEST_PATH: &str = r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        NR3: path(@S,D,P,C) :- link(@S,W,C1), path(@S,D,P,C2),
             f_inPath(P,W) = true, C1 = infinity, C = infinity.
        BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        Query: bestPath(@S,D,P,C).
    "#;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// The five-node network of the paper's Figure 3 (a=0, b=1, c=2, d=3,
    /// e=4), unit link costs.
    fn figure3_topology() -> Topology {
        let mut t = Topology::new(5);
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (3, 4)] {
            t.add_bidirectional(
                n(a),
                n(b),
                LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
            );
        }
        t
    }

    fn line_topology(k: usize) -> Topology {
        let mut t = Topology::new(k);
        for i in 0..k - 1 {
            t.add_bidirectional(
                n(i as u32),
                n(i as u32 + 1),
                LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
            );
        }
        t
    }

    fn best_path_of(
        harness: &RoutingHarness,
        handle: &QueryHandle<RouteEntry>,
        s: u32,
        d: u32,
    ) -> Option<RouteEntry> {
        handle
            .results_at(harness, n(s))
            .expect("results decode as routes")
            .into_iter()
            .find(|r| r.src == n(s) && r.dst == n(d))
    }

    #[test]
    fn distributed_best_path_converges_on_figure3() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let handle = harness.issue(program).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));

        // Every node has a best path to every other node (5 * 4 = 20).
        let results = handle.finite_results(&harness).unwrap();
        assert_eq!(results.len(), 20, "expected all-pairs best paths, got {}", results.len());

        // Node a (0) reaches e (4) in 3 hops at cost 3.
        let route = best_path_of(&harness, &handle, 0, 4).unwrap();
        assert_eq!(route.cost, Cost::new(3.0));
        assert_eq!(route.path.len(), 4);
        assert_eq!(route.path.head(), Some(n(0)));
        assert_eq!(route.path.last(), Some(n(4)));

        // The forwarding table at a points toward b or c for destination e.
        let fwd = handle.forwarding_table(&harness, n(0));
        let next = fwd[&n(4)];
        assert!(next == n(1) || next == n(2));

        // Communication actually happened.
        assert!(harness.sim().metrics().total_bytes() > 0);
        assert!(harness.per_node_overhead_kb() > 0.0);
    }

    #[test]
    fn distributed_result_matches_centralized_evaluation() {
        // The distributed execution must agree with the centralized
        // evaluator on bestPathCost values.
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let handle = harness.issue(program).from(n(3)).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));

        let mut central_db = dr_datalog::Database::new();
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (3, 4)] {
            for (s, d) in [(a, b), (b, a)] {
                central_db.insert(Tuple::new(
                    "link",
                    vec![Value::Node(n(s)), Value::Node(n(d)), Value::Cost(Cost::new(1.0))],
                ));
            }
        }
        dr_datalog::Evaluator::new(parse_program(BEST_PATH).unwrap())
            .unwrap()
            .run(&mut central_db)
            .unwrap();
        let central: Vec<CostEntry> = central_db
            .tuples("bestPathCost")
            .iter()
            .map(|t| CostEntry::from_tuple(t).unwrap())
            .collect();

        for src in 0..5u32 {
            for dst in 0..5u32 {
                if src == dst {
                    continue;
                }
                let distributed = best_path_of(&harness, &handle, src, dst).map(|r| r.cost);
                let reference =
                    central.iter().find(|e| e.src == n(src) && e.dst == n(dst)).map(|e| e.cost);
                assert_eq!(distributed, reference, "cost mismatch for {src}->{dst}");
            }
        }
    }

    #[test]
    fn sampled_scenario_detects_stabilization() {
        let report = crate::scenario::ScenarioBuilder::over(line_topology(4))
            .query(crate::scenario::QueryDef::new(parse_program(BEST_PATH).unwrap()))
            .sample_every(SimDuration::from_millis(500))
            .until(SimTime::from_secs(20))
            .run()
            .unwrap();
        let query = &report.queries[0];
        let converged = query.converged_at.expect("query should converge");
        assert!(converged < SimTime::from_secs(20));
        assert_eq!(query.samples.last().map(|s| s.results), Some(12)); // 4*3 pairs
        assert!(report.per_node_overhead_kb > 0.0);
        // samples are monotone in time
        assert!(query.samples.windows(2).all(|w| w[0].time < w[1].time));
    }

    #[test]
    fn link_failure_triggers_incremental_recovery() {
        // Square: 0-1-3 and 0-2-3, plus spur 3-4 (figure 3 shape). Fail node
        // 3's neighbor link by failing node 1; route 0->3 must switch to via
        // 2 without reissuing the query.
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let handle = harness.issue(program).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));
        let before = best_path_of(&harness, &handle, 0, 3).unwrap();
        assert_eq!(before.cost, Cost::new(2.0));

        // Fail node 1 at t=30s; give the system time to recompute.
        harness.sim_mut().schedule_node_fail(SimTime::from_secs(30), n(1));
        harness.run_until(SimTime::from_secs(60));

        let after = best_path_of(&harness, &handle, 0, 3).unwrap();
        assert_eq!(after.cost, Cost::new(2.0), "route should recover via node 2: {after:?}");
        assert!(after.traverses(n(2)), "recovered path must avoid node 1: {after:?}");
        assert!(!after.traverses(n(1)));

        // Paths from 0 to 4 also recover (via 2).
        let to_e = best_path_of(&harness, &handle, 0, 4).unwrap();
        assert_eq!(to_e.cost, Cost::new(3.0));
        assert!(!to_e.traverses(n(1)));
    }

    #[test]
    fn link_cost_increase_recomputes_routes() {
        // Triangle 0-1-2 with a heavy direct edge 0-2; after the light path
        // through 1 gets expensive, the direct edge wins.
        let mut topo = Topology::new(3);
        topo.add_bidirectional(
            n(0),
            n(1),
            LinkParams::with_latency_ms(5.0).with_cost(Cost::new(1.0)),
        );
        topo.add_bidirectional(
            n(1),
            n(2),
            LinkParams::with_latency_ms(5.0).with_cost(Cost::new(1.0)),
        );
        topo.add_bidirectional(
            n(0),
            n(2),
            LinkParams::with_latency_ms(5.0).with_cost(Cost::new(5.0)),
        );
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(topo);
        let handle = harness.issue(program).submit().unwrap();
        harness.run_until(SimTime::from_secs(20));
        let before = best_path_of(&harness, &handle, 0, 2).unwrap();
        assert_eq!(before.cost, Cost::new(2.0));
        assert_eq!(before.path.len(), 3);

        // Make 1->2 (and 2->1) expensive.
        for (a, b) in [(1u32, 2u32), (2, 1)] {
            harness.sim_mut().schedule_link_metric_change(
                SimTime::from_secs(20),
                n(a),
                n(b),
                LinkParams::with_latency_ms(5.0).with_cost(Cost::new(50.0)),
            );
        }
        harness.run_until(SimTime::from_secs(60));
        let after = best_path_of(&harness, &handle, 0, 2).unwrap();
        assert_eq!(
            after.cost,
            Cost::new(5.0),
            "direct route should win after the cost increase: {after:?}"
        );
        assert_eq!(after.path.len(), 2);
    }

    #[test]
    fn aggregate_selections_reduce_traffic_but_keep_answers() {
        let program = parse_program(BEST_PATH).unwrap();

        let run = |agg: bool| {
            let mut harness = RoutingHarness::new(figure3_topology());
            let handle = harness.issue(program.clone()).aggregate_selections(agg).submit().unwrap();
            harness.run_until(SimTime::from_secs(40));
            let mut costs: Vec<(NodeId, NodeId, u64)> = handle
                .finite_results(&harness)
                .unwrap()
                .into_iter()
                .map(|r| (r.src, r.dst, r.cost.value() as u64))
                .collect();
            costs.sort();
            (harness.sim().metrics().total_bytes(), costs)
        };

        let (bytes_opt, costs_opt) = run(true);
        let (bytes_plain, costs_plain) = run(false);
        assert_eq!(costs_opt, costs_plain, "optimization must not change best paths");
        assert!(
            bytes_opt <= bytes_plain,
            "aggregate selections should not increase traffic ({bytes_opt} vs {bytes_plain})"
        );
    }

    #[test]
    fn issuing_from_any_node_reaches_the_whole_network() {
        // Dissemination is by flooding: issuing at the far end of a line
        // still installs the query everywhere.
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(line_topology(5));
        let handle = harness.issue(program).from(n(4)).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));
        for i in 0..5u32 {
            assert!(
                harness.sim().app(n(i)).installed_queries().contains(&handle.id()),
                "node {i} never installed the query"
            );
        }
        assert_eq!(handle.finite_results(&harness).unwrap().len(), 20);
    }

    #[test]
    fn unknown_query_id_is_ignored() {
        let mut harness = RoutingHarness::new(line_topology(2));
        harness.sim_mut().inject(SimTime::ZERO, n(0), NetMsg::Install { qid: 999 });
        harness.run_to_quiescence();
        assert!(harness.sim().app(n(0)).installed_queries().is_empty());
    }

    #[test]
    fn builder_records_the_canonical_spec() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(line_topology(2));
        let handle = harness
            .issue(program)
            .from(n(1))
            .at(SimTime::from_secs(1))
            .named("spec-check")
            .replicated(["magicDsts"])
            .aggregate_selections(false)
            .sharing(true)
            .cache_relation("latCache")
            .fact(Tuple::new("magicDsts", vec![Value::Node(n(1))]))
            .submit()
            .unwrap();
        assert_eq!(handle.name(), "spec-check");
        let spec = harness.library().get(handle.id()).expect("spec registered");
        assert_eq!(spec.name, "spec-check");
        assert!(!spec.aggregate_selections);
        assert!(spec.share_results);
        assert_eq!(spec.cache_relation, "latCache");
        assert_eq!(spec.replicated, vec!["magicDsts".to_string()]);
        assert_eq!(spec.facts.len(), 1);
    }

    #[test]
    fn handle_view_retyping_projects_reachability() {
        use dr_types::ReachEntry;
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(line_topology(3));
        let handle = harness.issue(program).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));
        let reach: Vec<ReachEntry> = handle.with_view::<ReachEntry>().results(&harness).unwrap();
        assert_eq!(reach.len(), 6); // 3*2 ordered pairs
        let routes = handle.results(&harness).unwrap();
        assert_eq!(reach.len(), routes.len());
    }

    #[test]
    fn mismatched_view_is_a_decode_error_not_a_silent_count() {
        // Regression for the Fig. 6-9 count inflation: typing a route-shaped
        // query with a 3-ary cost view must surface Error::Decode from
        // finite_results, not silently count malformed rows as finite.
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(line_topology(3));
        let handle = harness.issue(program).submit_view::<CostEntry>().unwrap();
        harness.run_until(SimTime::from_secs(30));
        let err = handle.finite_results(&harness).unwrap_err();
        assert!(matches!(err, dr_types::Error::Decode(_)), "{err}");
        let err = handle.average_cost(&harness).unwrap_err();
        assert!(matches!(err, dr_types::Error::Decode(_)), "{err}");
    }

    #[test]
    fn negated_atom_delta_recomputes_aggregate() {
        // Regression: the per-batch aggregate trigger must fire when the
        // only delta of the batch is on a *negated* body atom. The rule
        // keeps, per (S, D), the cheapest candidate whose via-node is not
        // suppressed; suppressing the current winner must promote the
        // runner-up even though no positive atom changed.
        let program = parse_program(
            r#"
            A1: best(@S,D,min<C>) :- cand(@S,D,Z,C), !suppressed(@S,Z).
            Query: best(@S,D,C).
            "#,
        )
        .unwrap();
        let cand = |z: u32, c: f64| {
            Tuple::new(
                "cand",
                vec![Value::Node(n(0)), Value::Node(n(1)), Value::Node(n(z)), Value::from(c)],
            )
        };
        let mut harness = RoutingHarness::new(line_topology(2));
        let handle = harness
            .issue(program)
            .from(n(0))
            .facts(vec![cand(7, 2.0), cand(8, 5.0)])
            .submit()
            .unwrap();
        harness.run_until(SimTime::from_secs(5));
        let qid = handle.id();
        let best = harness.sim().app(n(0)).tuples(qid, "best");
        assert_eq!(best.len(), 1);
        assert_eq!(best[0].field(2).and_then(Value::as_cost), Some(Cost::new(2.0)));

        // Suppress the winner's via-node: arrives as a delta on the negated
        // relation only.
        let suppress = Tuple::new("suppressed", vec![Value::Node(n(0)), Value::Node(n(7))]);
        harness.sim_mut().inject(
            SimTime::from_secs(5),
            n(0),
            NetMsg::Tuples { qid, seq: None, items: vec![suppress], provs: Vec::new() },
        );
        harness.run_until(SimTime::from_secs(10));
        let best = harness.sim().app(n(0)).tuples(qid, "best");
        assert_eq!(best.len(), 1, "aggregate output stays keyed per (S,D): {best:?}");
        assert_eq!(
            best[0].field(2).and_then(Value::as_cost),
            Some(Cost::new(5.0)),
            "suppressing the minimum's via-node must promote the runner-up"
        );
    }

    #[test]
    fn teardown_unwinds_every_node_and_the_library() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let baseline = harness.state_footprint();
        assert!(baseline.is_empty());

        let handle = harness.issue(program).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));
        assert_eq!(handle.finite_results(&harness).unwrap().len(), 20);
        assert!(!harness.state_footprint().is_empty());
        assert!(harness.library().get(handle.id()).is_some());

        harness.teardown(handle.id(), SimTime::from_secs(30));
        harness.run_to_quiescence();

        for i in 0..5u32 {
            let app = harness.sim().app(n(i));
            assert!(app.installed_queries().is_empty(), "node {i} kept the instance");
            assert!(app.is_torn_down(handle.id()));
            assert_eq!(app.pending_tuples(handle.id()), 0);
            assert_eq!(app.prune_entries(handle.id()), 0);
        }
        assert!(harness.library().get(handle.id()).is_none(), "spec must leave the library");
        assert_eq!(harness.state_footprint(), baseline, "teardown left residue");
        assert!(handle.raw_results(&harness).is_empty());

        // A late Install flood for the dead query must not resurrect it.
        harness.sim_mut().inject(
            SimTime::from_secs(61),
            n(2),
            NetMsg::Install { qid: handle.id() },
        );
        harness.run_to_quiescence();
        assert!(harness.sim().app(n(2)).installed_queries().is_empty());
    }

    #[test]
    fn teardown_drops_shared_cache_with_last_user() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let shared = harness.issue(program.clone()).sharing(true).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));
        let cached: usize =
            (0..5u32).map(|i| harness.sim().app(n(i)).best_path_cache().len()).sum();
        assert!(cached > 0, "sharing run must populate the cache");

        harness.teardown(shared.id(), SimTime::from_secs(30));
        harness.run_to_quiescence();
        for i in 0..5u32 {
            assert!(harness.sim().app(n(i)).best_path_cache().is_empty(), "node {i} kept cache");
        }
        assert!(harness.state_footprint().is_empty());

        // The engine stays fully usable: a fresh query converges as usual.
        let fresh = harness.issue(program).at(SimTime::from_secs(62)).submit().unwrap();
        harness.run_until(SimTime::from_secs(100));
        assert_eq!(fresh.finite_results(&harness).unwrap().len(), 20);
    }

    #[test]
    fn node_down_during_teardown_is_lazily_torn_down_on_rejoin() {
        // Node 1 misses the teardown flood (it is down when the flood
        // runs); when it rejoins and starts shipping tuples for the dead
        // query, its neighbors answer with a Teardown and the straggler
        // unwinds too.
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let handle = harness.issue(program).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));

        harness.sim_mut().schedule_node_fail(SimTime::from_secs(30), n(1));
        harness.run_until(SimTime::from_secs(40));
        harness.teardown(handle.id(), SimTime::from_secs(40));
        harness.run_until(SimTime::from_secs(50));
        assert!(
            harness.sim().app(n(1)).installed_queries().contains(&handle.id()),
            "down node cannot have seen the teardown yet"
        );

        // Rejoining alone moves no tuples (the refreshed link upserts are
        // no-ops); the repair fires on the first actual traffic for the
        // dead query — here a link-cost change that makes node 1 ship its
        // updated link tuple to a neighbor that already saw the teardown.
        harness.sim_mut().schedule_node_join(SimTime::from_secs(50), n(1));
        harness.run_until(SimTime::from_secs(55));
        for (a, b) in [(1u32, 0u32), (0, 1)] {
            harness.sim_mut().schedule_link_metric_change(
                SimTime::from_secs(55),
                n(a),
                n(b),
                LinkParams::with_latency_ms(10.0).with_cost(Cost::new(2.0)),
            );
        }
        harness.run_to_quiescence();
        assert!(harness.sim().app(n(1)).installed_queries().is_empty());
        assert!(harness.sim().app(n(1)).is_torn_down(handle.id()));
        assert!(harness.state_footprint().is_empty(), "{:?}", harness.state_footprint());
    }

    #[test]
    fn cursor_streams_added_and_removed_results() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let handle = harness.issue(program).submit().unwrap();
        let mut cursor = handle.cursor();
        assert!(cursor.poll(&harness).is_empty(), "nothing ran yet");

        harness.run_until(SimTime::from_secs(30));
        let first = cursor.poll(&harness);
        assert_eq!(first.added.len(), handle.raw_results(&harness).len());
        assert!(first.removed.is_empty());
        assert!(cursor.poll(&harness).is_empty(), "converged: second poll is empty");

        // A failure rewrites routes through node 1: the cursor reports both
        // directions of the change, and replaying its deltas against the
        // first snapshot reproduces the current result set exactly.
        harness.sim_mut().schedule_node_fail(SimTime::from_secs(30), n(1));
        harness.run_until(SimTime::from_secs(60));
        let repair = cursor.poll(&harness);
        assert!(!repair.added.is_empty() && !repair.removed.is_empty(), "{repair:?}");

        // Node 1 comes back; routes through it return.
        harness.sim_mut().schedule_node_join(SimTime::from_secs(60), n(1));
        harness.run_until(SimTime::from_secs(90));
        let heal = cursor.poll(&harness);

        let mut mirror: std::collections::BTreeMap<Tuple, usize> = BTreeMap::new();
        for t in first.added.iter().chain(&repair.added).chain(&heal.added) {
            *mirror.entry(t.clone()).or_insert(0) += 1;
        }
        for t in repair.removed.iter().chain(&heal.removed) {
            let count = mirror.get_mut(t).expect("removed tuple was reported added");
            *count -= 1;
            if *count == 0 {
                mirror.remove(t);
            }
        }
        let mut truth: std::collections::BTreeMap<Tuple, usize> = BTreeMap::new();
        for t in handle.raw_results(&harness) {
            *truth.entry(t).or_insert(0) += 1;
        }
        assert_eq!(mirror, truth, "cursor deltas must mirror the result set");

        // Teardown drains the rest.
        harness.teardown(handle.id(), SimTime::from_secs(90));
        harness.run_to_quiescence();
        let drained = cursor.poll(&harness);
        assert!(drained.added.is_empty());
        assert_eq!(drained.removed.len(), truth.values().sum::<usize>());
    }

    #[test]
    fn explain_materializes_distributed_proof_tree() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let handle = harness.issue(program).provenance(true).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));
        let qid = handle.id();

        // Explain the 3-hop route a -> e (0 -> 4): its proof spans several
        // nodes, so the tree must be stitched together with ProvFetch
        // round trips.
        let route = harness
            .sim()
            .app(n(0))
            .tuples(qid, "bestPath")
            .into_iter()
            .find(|t| t.field(1) == Some(&Value::Node(n(4))))
            .expect("route 0 -> 4 derived");
        let tree = harness.explain(qid, &route).expect("explainable");
        assert_eq!(tree.tuple(), &route);
        assert!(tree.is_fully_resolved(), "no Missing nodes in a live route:\n{tree}");
        // A 3-hop path needs at least NR1 + 2x NR2 + the BPR2 join.
        assert!(tree.depth() >= 4, "depth {} too shallow:\n{tree}", tree.depth());
        // Every leaf is a live base link fact.
        let leaves = tree.leaves();
        assert!(!leaves.is_empty());
        for leaf in &leaves {
            // Either the link fact itself or its shipped cache copy
            // ("link__to_NR2"), which aliases the same base fact.
            assert!(leaf.relation().starts_with("link"), "unexpected base fact {leaf:?}");
        }
        // The proof names more than one deriving node.
        let nodes: std::collections::BTreeSet<NodeId> =
            tree.steps().into_iter().map(|s| s.node).collect();
        assert!(nodes.len() > 1, "expected a distributed proof, got {nodes:?}");
        assert!(harness.processor_stats().prov_fetches > 0, "remote pointers were fetched");
    }

    #[test]
    fn explain_errors_are_typed() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(line_topology(3));
        let bogus = Tuple::new("bestPath", vec![Value::Node(n(0))]);

        // Unknown query id.
        assert_eq!(harness.explain(99, &bogus), Err(ExplainError::UnknownQuery));

        // Issued without provenance recording.
        let handle = harness.issue(program.clone()).submit().unwrap();
        harness.run_until(SimTime::from_secs(10));
        assert_eq!(harness.explain(handle.id(), &bogus), Err(ExplainError::NotRecorded));

        // Recorded, but the tuple does not exist anywhere.
        let handle2 = harness.issue(program).provenance(true).submit().unwrap();
        harness.run_until(SimTime::from_secs(20));
        assert_eq!(harness.explain(handle2.id(), &bogus), Err(ExplainError::NoSuchTuple));

        // A real route explains fine ...
        let route = harness
            .sim()
            .app(n(0))
            .tuples(handle2.id(), "bestPath")
            .into_iter()
            .next()
            .expect("some route");
        assert!(harness.explain(handle2.id(), &route).is_ok());

        // ... until teardown, after which the query is typed as torn down.
        let at = harness.now();
        harness.teardown(handle2.id(), at);
        harness.run_to_quiescence();
        assert_eq!(harness.explain(handle2.id(), &route), Err(ExplainError::TornDown));
    }

    #[test]
    fn explain_diff_reports_route_change_after_link_failure() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let handle = harness.issue(program).provenance(true).submit().unwrap();
        harness.run_until(SimTime::from_secs(30));
        let qid = handle.id();
        let route = |h: &RoutingHarness, d: u32| {
            h.sim()
                .app(n(0))
                .tuples(qid, "bestPath")
                .into_iter()
                .find(|t| t.field(1) == Some(&Value::Node(n(d))))
                .expect("route exists")
        };

        let before_tuple = route(&harness, 3);
        let before = harness.explain(qid, &before_tuple).unwrap();

        // Fail node 1: the a->d route re-derives through c (node 2).
        harness.sim_mut().schedule_node_fail(SimTime::from_secs(31), n(1));
        harness.run_until(SimTime::from_secs(60));
        let after_tuple = route(&harness, 3);
        let after = harness.explain(qid, &after_tuple).unwrap();

        let diff = dr_provenance::diff_explanations(&before, &after);
        if before_tuple == after_tuple {
            assert!(diff.removed.is_empty() && diff.added.is_empty());
        } else {
            assert!(
                !diff.removed.is_empty() || !diff.added.is_empty(),
                "a rerouted path must change the explanation"
            );
            // No step of the new proof fires on the failed node.
            assert!(diff.added.iter().all(|s| s.node != n(1)), "{diff:?}");
        }
    }

    #[test]
    fn converged_at_helper() {
        use super::converged_at;
        let mk = |t: u64, r: usize, c: f64| Sample {
            time: SimTime::from_secs(t),
            results: r,
            avg_cost: c,
        };
        assert_eq!(converged_at(&[]), None);
        assert_eq!(converged_at(&[mk(1, 0, 0.0)]), None);
        let samples = vec![mk(1, 2, 5.0), mk(2, 4, 4.0), mk(3, 4, 4.0), mk(4, 4, 4.0)];
        assert_eq!(converged_at(&samples), Some(SimTime::from_secs(2)));
        let still_changing = vec![mk(1, 2, 5.0), mk(2, 4, 4.0)];
        assert_eq!(converged_at(&still_changing), Some(SimTime::from_secs(2)));
    }
}
