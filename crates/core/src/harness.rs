//! Experiment harness: glue between topologies, the simulator, and the
//! query processors.
//!
//! The paper's evaluation repeatedly performs the same choreography: build a
//! topology, start a query processor on every node, issue one or more
//! queries from chosen nodes, let the system run (optionally injecting link
//! updates and churn), and measure convergence latency, per-node
//! communication overhead, average path cost, and recovery time.
//! [`RoutingHarness`] packages that choreography for the figures/tables
//! binaries in `dr-bench`, the examples, and the integration tests.

use crate::localize::localize;
use crate::processor::{NetMsg, ProcessorConfig, QueryProcessor};
use crate::query::{QueryId, QueryLibrary, QuerySpec};
use dr_datalog::ast::Program;
use dr_netsim::{SimConfig, SimDuration, SimTime, Simulator, Topology};
use dr_types::{Cost, NodeId, Result, Tuple, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Options controlling how a query is issued.
#[derive(Debug, Clone)]
pub struct IssueOptions {
    /// Relations replicated to every node (query constants such as
    /// `magicSources` / `magicDsts`).
    pub replicated: Vec<String>,
    /// Enable aggregate selections (§7.1) for this query.
    pub aggregate_selections: bool,
    /// Enable multi-query sharing through `bestPathCache` (§7.3).
    pub share_results: bool,
    /// Facts installed together with the query.
    pub facts: Vec<Tuple>,
    /// Human-readable name.
    pub name: String,
}

impl Default for IssueOptions {
    fn default() -> Self {
        IssueOptions {
            replicated: Vec::new(),
            aggregate_selections: true,
            share_results: false,
            facts: Vec::new(),
            name: "query".to_string(),
        }
    }
}

/// A sample of the global result-set state at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Simulated time of the snapshot.
    pub time: SimTime,
    /// Number of result tuples with finite cost across all nodes.
    pub results: usize,
    /// Average cost of those result tuples (the paper's AvgPathRTT when the
    /// metric is RTT), or 0 when there are none.
    pub avg_cost: f64,
}

/// The outcome of running a query while sampling its result set.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// Periodic snapshots of the result set.
    pub samples: Vec<Sample>,
    /// The earliest sampled time after which the result-set size and average
    /// cost never changed again, if the run converged at all.
    pub converged_at: Option<SimTime>,
    /// Per-node communication overhead (KB) accumulated over the run.
    pub per_node_overhead_kb: f64,
}

/// Harness wrapping a simulator full of query processors.
pub struct RoutingHarness {
    sim: Simulator<QueryProcessor>,
    library: Arc<QueryLibrary>,
    next_qid: QueryId,
}

impl RoutingHarness {
    /// Build a harness over `topology` with default processor and simulator
    /// configuration.
    pub fn new(topology: Topology) -> RoutingHarness {
        RoutingHarness::with_batch_interval(topology, SimDuration::from_millis(200))
    }

    /// Build a harness with a custom batch interval (the paper uses 200 ms).
    pub fn with_batch_interval(topology: Topology, batch: SimDuration) -> RoutingHarness {
        let library = Arc::new(QueryLibrary::new());
        let mut config = ProcessorConfig::new(Arc::clone(&library));
        config.batch_interval = batch;
        let apps = (0..topology.num_nodes()).map(|_| QueryProcessor::new(config.clone())).collect();
        let sim = Simulator::new(topology, apps, SimConfig::default());
        RoutingHarness { sim, library, next_qid: 1 }
    }

    /// The shared query library.
    pub fn library(&self) -> &Arc<QueryLibrary> {
        &self.library
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Simulator<QueryProcessor> {
        &self.sim
    }

    /// Mutable access to the underlying simulator (for churn / link-update
    /// schedules).
    pub fn sim_mut(&mut self) -> &mut Simulator<QueryProcessor> {
        &mut self.sim
    }

    /// Localize `program` and issue it as a query from `issuer` at time
    /// `at`. Returns the query id.
    pub fn issue_program(
        &mut self,
        issuer: NodeId,
        at: SimTime,
        program: &Program,
        options: IssueOptions,
    ) -> Result<QueryId> {
        let replicated: Vec<&str> = options.replicated.iter().map(String::as_str).collect();
        let localized = Arc::new(localize(program, &replicated)?);
        let qid = self.next_qid;
        self.next_qid += 1;
        let spec = QuerySpec::new(qid, options.name, localized)
            .with_aggregate_selections(options.aggregate_selections)
            .with_sharing(options.share_results)
            .with_facts(options.facts);
        self.library.register(spec);
        self.sim.inject(at, issuer, NetMsg::Install { qid });
        Ok(qid)
    }

    /// Run the simulation until `until` (events after that stay queued).
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(until);
    }

    /// Run until no events remain.
    pub fn run_to_quiescence(&mut self) {
        self.sim.run_to_quiescence();
    }

    /// Result tuples of `qid` stored at `node`.
    pub fn results_at(&self, node: NodeId, qid: QueryId) -> Vec<Tuple> {
        self.sim.app(node).results(qid)
    }

    /// All result tuples of `qid` across every node.
    pub fn results(&self, qid: QueryId) -> Vec<Tuple> {
        let mut out = Vec::new();
        for app in self.sim.apps() {
            out.extend(app.results(qid));
        }
        out
    }

    /// Result tuples with finite cost (assumes the last field is the cost,
    /// as in every 4-ary path-shaped result of the paper).
    pub fn finite_results(&self, qid: QueryId) -> Vec<Tuple> {
        self.results(qid)
            .into_iter()
            .filter(|t| {
                t.fields().last().and_then(Value::as_cost).map(|c| c.is_finite()).unwrap_or(true)
            })
            .collect()
    }

    /// The average cost over all finite result tuples of `qid` (the paper's
    /// AvgPathRTT when link costs are RTTs).
    pub fn average_result_cost(&self, qid: QueryId) -> f64 {
        let results = self.finite_results(qid);
        if results.is_empty() {
            return 0.0;
        }
        let total: f64 = results
            .iter()
            .filter_map(|t| t.fields().last().and_then(Value::as_cost))
            .map(Cost::value)
            .sum();
        total / results.len() as f64
    }

    /// Per-node communication overhead in KB since the start of the run.
    pub fn per_node_overhead_kb(&self) -> f64 {
        self.sim.metrics().per_node_overhead_kb()
    }

    /// The forwarding table `node` derived from query `qid`.
    pub fn forwarding_table(&self, node: NodeId, qid: QueryId) -> BTreeMap<NodeId, NodeId> {
        self.sim.app(node).forwarding_table(qid)
    }

    /// Run until `until`, sampling the result set of `qid` every `interval`
    /// and reporting convergence.
    pub fn run_and_sample(
        &mut self,
        qid: QueryId,
        interval: SimDuration,
        until: SimTime,
    ) -> ConvergenceReport {
        let mut samples = Vec::new();
        let mut t = self.sim.now();
        while t < until {
            let next = t + interval;
            self.sim.run_until(next);
            t = next;
            let finite = self.finite_results(qid);
            let avg = self.average_result_cost(qid);
            samples.push(Sample { time: t, results: finite.len(), avg_cost: avg });
        }
        let converged_at = converged_at(&samples);
        ConvergenceReport {
            samples,
            converged_at,
            per_node_overhead_kb: self.per_node_overhead_kb(),
        }
    }
}

/// The earliest sample time after which neither the result count nor the
/// average cost changes again.
fn converged_at(samples: &[Sample]) -> Option<SimTime> {
    if samples.is_empty() {
        return None;
    }
    let last = samples.last().expect("non-empty");
    if last.results == 0 {
        return None;
    }
    let mut converged = last.time;
    for pair in samples.windows(2).rev() {
        let (prev, cur) = (&pair[0], &pair[1]);
        if prev.results == cur.results && (prev.avg_cost - cur.avg_cost).abs() < 1e-9 {
            converged = prev.time;
        } else {
            break;
        }
    }
    Some(converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::parse_program;
    use dr_netsim::LinkParams;
    use dr_types::PathVector;

    const BEST_PATH: &str = r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        NR3: path(@S,D,P,C) :- link(@S,W,C1), path(@S,D,P,C2),
             f_inPath(P,W) = true, C1 = infinity, C = infinity.
        BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        Query: bestPath(@S,D,P,C).
    "#;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// The five-node network of the paper's Figure 3 (a=0, b=1, c=2, d=3,
    /// e=4), unit link costs.
    fn figure3_topology() -> Topology {
        let mut t = Topology::new(5);
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (3, 4)] {
            t.add_bidirectional(
                n(a),
                n(b),
                LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
            );
        }
        t
    }

    fn line_topology(k: usize) -> Topology {
        let mut t = Topology::new(k);
        for i in 0..k - 1 {
            t.add_bidirectional(
                n(i as u32),
                n(i as u32 + 1),
                LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
            );
        }
        t
    }

    fn best_path_of(
        harness: &RoutingHarness,
        qid: QueryId,
        s: u32,
        d: u32,
    ) -> Option<(Vec<NodeId>, f64)> {
        harness
            .results_at(n(s), qid)
            .into_iter()
            .filter(|t| t.relation() == "bestPath")
            .find(|t| t.node_at(0) == Some(n(s)) && t.node_at(1) == Some(n(d)))
            .map(|t| {
                let p = t.field(2).and_then(Value::as_path).cloned().unwrap_or(PathVector::nil());
                let c = t.field(3).and_then(Value::as_cost).map(Cost::value).unwrap_or(f64::NAN);
                (p.nodes().to_vec(), c)
            })
    }

    #[test]
    fn distributed_best_path_converges_on_figure3() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let qid =
            harness.issue_program(n(0), SimTime::ZERO, &program, IssueOptions::default()).unwrap();
        harness.run_until(SimTime::from_secs(30));

        // Every node has a best path to every other node (5 * 4 = 20).
        let results = harness.finite_results(qid);
        assert_eq!(results.len(), 20, "expected all-pairs best paths, got {}", results.len());

        // Node a (0) reaches e (4) in 3 hops at cost 3.
        let (path, cost) = best_path_of(&harness, qid, 0, 4).unwrap();
        assert_eq!(cost, 3.0);
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], n(0));
        assert_eq!(path[3], n(4));

        // The forwarding table at a points toward b or c for destination e.
        let fwd = harness.forwarding_table(n(0), qid);
        let next = fwd[&n(4)];
        assert!(next == n(1) || next == n(2));

        // Communication actually happened.
        assert!(harness.sim().metrics().total_bytes() > 0);
        assert!(harness.per_node_overhead_kb() > 0.0);
    }

    #[test]
    fn distributed_result_matches_centralized_evaluation() {
        // The distributed execution must agree with the centralized
        // evaluator on bestPathCost values.
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let qid =
            harness.issue_program(n(3), SimTime::ZERO, &program, IssueOptions::default()).unwrap();
        harness.run_until(SimTime::from_secs(30));

        let mut central_db = dr_datalog::Database::new();
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (3, 4)] {
            for (s, d) in [(a, b), (b, a)] {
                central_db.insert(Tuple::new(
                    "link",
                    vec![Value::Node(n(s)), Value::Node(n(d)), Value::Cost(Cost::new(1.0))],
                ));
            }
        }
        dr_datalog::Evaluator::new(parse_program(BEST_PATH).unwrap())
            .unwrap()
            .run(&mut central_db)
            .unwrap();

        for src in 0..5u32 {
            for dst in 0..5u32 {
                if src == dst {
                    continue;
                }
                let distributed = best_path_of(&harness, qid, src, dst).map(|(_, c)| c);
                let central = central_db
                    .tuples("bestPathCost")
                    .into_iter()
                    .find(|t| t.node_at(0) == Some(n(src)) && t.node_at(1) == Some(n(dst)))
                    .and_then(|t| t.field(2).and_then(Value::as_cost))
                    .map(Cost::value);
                assert_eq!(distributed, central, "cost mismatch for {src}->{dst}");
            }
        }
    }

    #[test]
    fn convergence_report_detects_stabilization() {
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(line_topology(4));
        let qid =
            harness.issue_program(n(0), SimTime::ZERO, &program, IssueOptions::default()).unwrap();
        let report =
            harness.run_and_sample(qid, SimDuration::from_millis(500), SimTime::from_secs(20));
        let converged = report.converged_at.expect("query should converge");
        assert!(converged < SimTime::from_secs(20));
        assert!(report.samples.last().unwrap().results == 12); // 4*3 pairs
        assert!(report.per_node_overhead_kb > 0.0);
        // samples are monotone in time
        assert!(report.samples.windows(2).all(|w| w[0].time < w[1].time));
    }

    #[test]
    fn link_failure_triggers_incremental_recovery() {
        // Square: 0-1-3 and 0-2-3, plus spur 3-4 (figure 3 shape). Fail node
        // 3's neighbor link by failing node 1; route 0->3 must switch to via
        // 2 without reissuing the query.
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(figure3_topology());
        let qid =
            harness.issue_program(n(0), SimTime::ZERO, &program, IssueOptions::default()).unwrap();
        harness.run_until(SimTime::from_secs(30));
        let before = best_path_of(&harness, qid, 0, 3).unwrap();
        assert_eq!(before.1, 2.0);

        // Fail node 1 at t=30s; give the system time to recompute.
        harness.sim_mut().schedule_node_fail(SimTime::from_secs(30), n(1));
        harness.run_until(SimTime::from_secs(60));

        let after = best_path_of(&harness, qid, 0, 3).unwrap();
        assert_eq!(after.1, 2.0, "route should recover via node 2: {after:?}");
        assert!(after.0.contains(&n(2)), "recovered path must avoid node 1: {after:?}");
        assert!(!after.0.contains(&n(1)));

        // Paths from 0 to 4 also recover (via 2).
        let to_e = best_path_of(&harness, qid, 0, 4).unwrap();
        assert_eq!(to_e.1, 3.0);
        assert!(!to_e.0.contains(&n(1)));
    }

    #[test]
    fn link_cost_increase_recomputes_routes() {
        // Triangle 0-1-2 with a heavy direct edge 0-2; after the light path
        // through 1 gets expensive, the direct edge wins.
        let mut topo = Topology::new(3);
        topo.add_bidirectional(
            n(0),
            n(1),
            LinkParams::with_latency_ms(5.0).with_cost(Cost::new(1.0)),
        );
        topo.add_bidirectional(
            n(1),
            n(2),
            LinkParams::with_latency_ms(5.0).with_cost(Cost::new(1.0)),
        );
        topo.add_bidirectional(
            n(0),
            n(2),
            LinkParams::with_latency_ms(5.0).with_cost(Cost::new(5.0)),
        );
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(topo);
        let qid =
            harness.issue_program(n(0), SimTime::ZERO, &program, IssueOptions::default()).unwrap();
        harness.run_until(SimTime::from_secs(20));
        let before = best_path_of(&harness, qid, 0, 2).unwrap();
        assert_eq!(before.1, 2.0);
        assert_eq!(before.0.len(), 3);

        // Make 1->2 (and 2->1) expensive.
        for (a, b) in [(1u32, 2u32), (2, 1)] {
            harness.sim_mut().schedule_link_metric_change(
                SimTime::from_secs(20),
                n(a),
                n(b),
                LinkParams::with_latency_ms(5.0).with_cost(Cost::new(50.0)),
            );
        }
        harness.run_until(SimTime::from_secs(60));
        let after = best_path_of(&harness, qid, 0, 2).unwrap();
        assert_eq!(after.1, 5.0, "direct route should win after the cost increase: {after:?}");
        assert_eq!(after.0.len(), 2);
    }

    #[test]
    fn aggregate_selections_reduce_traffic_but_keep_answers() {
        let program = parse_program(BEST_PATH).unwrap();

        let run = |agg: bool| {
            let mut harness = RoutingHarness::new(figure3_topology());
            let options = IssueOptions { aggregate_selections: agg, ..Default::default() };
            let qid = harness.issue_program(n(0), SimTime::ZERO, &program, options).unwrap();
            harness.run_until(SimTime::from_secs(40));
            let mut costs: Vec<(NodeId, NodeId, u64)> = harness
                .finite_results(qid)
                .into_iter()
                .map(|t| {
                    (
                        t.node_at(0).unwrap(),
                        t.node_at(1).unwrap(),
                        t.field(3).and_then(Value::as_cost).unwrap().value() as u64,
                    )
                })
                .collect();
            costs.sort();
            (harness.sim().metrics().total_bytes(), costs)
        };

        let (bytes_opt, costs_opt) = run(true);
        let (bytes_plain, costs_plain) = run(false);
        assert_eq!(costs_opt, costs_plain, "optimization must not change best paths");
        assert!(
            bytes_opt <= bytes_plain,
            "aggregate selections should not increase traffic ({bytes_opt} vs {bytes_plain})"
        );
    }

    #[test]
    fn issuing_from_any_node_reaches_the_whole_network() {
        // Dissemination is by flooding: issuing at the far end of a line
        // still installs the query everywhere.
        let program = parse_program(BEST_PATH).unwrap();
        let mut harness = RoutingHarness::new(line_topology(5));
        let qid =
            harness.issue_program(n(4), SimTime::ZERO, &program, IssueOptions::default()).unwrap();
        harness.run_until(SimTime::from_secs(30));
        for i in 0..5u32 {
            assert!(
                harness.sim().app(n(i)).installed_queries().contains(&qid),
                "node {i} never installed the query"
            );
        }
        assert_eq!(harness.finite_results(qid).len(), 20);
    }

    #[test]
    fn unknown_query_id_is_ignored() {
        let mut harness = RoutingHarness::new(line_topology(2));
        harness.sim_mut().inject(SimTime::ZERO, n(0), NetMsg::Install { qid: 999 });
        harness.run_to_quiescence();
        assert!(harness.sim().app(n(0)).installed_queries().is_empty());
    }

    #[test]
    fn converged_at_helper() {
        use super::converged_at;
        let mk = |t: u64, r: usize, c: f64| Sample {
            time: SimTime::from_secs(t),
            results: r,
            avg_cost: c,
        };
        assert_eq!(converged_at(&[]), None);
        assert_eq!(converged_at(&[mk(1, 0, 0.0)]), None);
        let samples = vec![mk(1, 2, 5.0), mk(2, 4, 4.0), mk(3, 4, 4.0), mk(4, 4, 4.0)];
        assert_eq!(converged_at(&samples), Some(SimTime::from_secs(2)));
        let still_changing = vec![mk(1, 2, 5.0), mk(2, 4, 4.0)];
        assert_eq!(converged_at(&still_changing), Some(SimTime::from_secs(2)));
    }
}
