//! Query specifications and the per-deployment query library.
//!
//! A [`QuerySpec`] is one routing protocol or route request: a localized
//! program plus runtime options (aggregate selections, result sharing) and
//! per-issuance facts (e.g. the `magicSources` / `magicDsts` constants of a
//! Best-Path-Pairs query). The [`QueryLibrary`] maps query identifiers to
//! specs; every node holds the same library, so disseminating a query over
//! the network only requires flooding its identifier and facts — mirroring
//! the paper's observation (§3.5) that queries may be "baked in" or
//! disseminated on first use.

use crate::localize::LocalizedProgram;
use dr_datalog::eval::RuleEval;
use dr_types::Tuple;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Identifier of an issued query.
pub type QueryId = u64;

/// A query (routing protocol or route request) ready for distributed
/// execution.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Unique identifier used in dissemination and tuple messages.
    pub id: QueryId,
    /// Human-readable name for logs and experiment output.
    pub name: String,
    /// The localized program.
    pub program: Arc<LocalizedProgram>,
    /// Enable the aggregate-selections optimization (§7.1) for this query.
    pub aggregate_selections: bool,
    /// Share results across queries through a node-local cache table
    /// (§7.3): completed best paths are cached, and cached sub-paths are
    /// reused by later queries that consult the cache.
    pub share_results: bool,
    /// Name of the cross-query cache table used when `share_results` is on.
    /// Queries computing different link metrics should use different cache
    /// relations so they never share each other's (incomparable) costs —
    /// the paper's mixed-workload observation that "only queries that
    /// compute the same metric are likely to benefit from sharing" (§9.1.3).
    pub cache_relation: String,
    /// Relations whose facts are replicated to every node during
    /// dissemination (query constants such as `magicSources` / `magicDsts`).
    /// Recorded here so the spec is the single canonical description of an
    /// issuance; the localized program already bakes the rewrite in.
    pub replicated: Vec<String>,
    /// Facts installed when the query is disseminated. Facts of replicated
    /// relations are installed at every node; other facts are installed only
    /// at the node named by their location field.
    pub facts: Vec<Tuple>,
    /// Record derivation provenance for this query: every rule firing is
    /// written into a per-node arena (see `dr_provenance::ProvStore`) and
    /// shipped tuples carry a `(node, ProvId)` pointer back to their
    /// deriving node, enabling distributed route explanations. Off by
    /// default — when off, no store is allocated and the evaluation hot
    /// path is byte-identical to a build without provenance.
    pub record_provenance: bool,
    /// Statically compiled rule plans, built lazily on the first
    /// installation and shared by every node instance of this spec. Every
    /// local table is empty at installation time, so the static plans are
    /// identical across nodes — compiling them per node would repeat the
    /// same work `O(nodes)` times (see [`QuerySpec::static_plans`]).
    static_plans: OnceLock<Arc<Vec<RuleEval>>>,
}

impl QuerySpec {
    /// Create a spec with default options (aggregate selections on, sharing
    /// off, no extra facts).
    pub fn new(id: QueryId, name: impl Into<String>, program: Arc<LocalizedProgram>) -> QuerySpec {
        QuerySpec {
            id,
            name: name.into(),
            program,
            aggregate_selections: true,
            share_results: false,
            cache_relation: "bestPathCache".to_string(),
            replicated: Vec::new(),
            facts: Vec::new(),
            record_provenance: false,
            static_plans: OnceLock::new(),
        }
    }

    /// The statically compiled evaluation plans, one per localized rule
    /// (same order as `program.rules`). Compiled on first call and cached on
    /// the spec: the library hands the same `Arc<QuerySpec>` to every node,
    /// so a deployment compiles each query once instead of once per node.
    /// Instances that later re-plan against real cardinalities swap in their
    /// own plan vector and leave the shared one untouched.
    pub fn static_plans(&self) -> Arc<Vec<RuleEval>> {
        Arc::clone(self.static_plans.get_or_init(|| {
            Arc::new(self.program.rules.iter().map(|lrule| RuleEval::new(&lrule.rule)).collect())
        }))
    }

    /// Builder-style override of the cross-query cache relation name.
    pub fn with_cache_relation(mut self, relation: impl Into<String>) -> QuerySpec {
        self.cache_relation = relation.into();
        self
    }

    /// Builder-style toggle for aggregate selections.
    pub fn with_aggregate_selections(mut self, on: bool) -> QuerySpec {
        self.aggregate_selections = on;
        self
    }

    /// Builder-style toggle for multi-query sharing.
    pub fn with_sharing(mut self, on: bool) -> QuerySpec {
        self.share_results = on;
        self
    }

    /// Builder-style record of the replicated relations.
    pub fn with_replicated(mut self, replicated: Vec<String>) -> QuerySpec {
        self.replicated = replicated;
        self
    }

    /// Builder-style fact installation.
    pub fn with_facts(mut self, facts: Vec<Tuple>) -> QuerySpec {
        self.facts = facts;
        self
    }

    /// Builder-style toggle for derivation-provenance recording.
    pub fn with_provenance(mut self, on: bool) -> QuerySpec {
        self.record_provenance = on;
        self
    }
}

/// The set of query specs known to every node in a deployment.
///
/// The library is shared (via `Arc`) by every node's processor and by the
/// experiment harness, which keeps registering new queries while the
/// simulation runs; it therefore uses interior mutability.
#[derive(Debug, Default)]
pub struct QueryLibrary {
    specs: std::sync::RwLock<HashMap<QueryId, Arc<QuerySpec>>>,
}

impl QueryLibrary {
    /// An empty library.
    pub fn new() -> QueryLibrary {
        QueryLibrary::default()
    }

    /// Register a spec; replaces any previous spec with the same id.
    pub fn register(&self, spec: QuerySpec) -> Arc<QuerySpec> {
        let arc = Arc::new(spec);
        self.specs.write().expect("query library lock poisoned").insert(arc.id, Arc::clone(&arc));
        arc
    }

    /// Look up a spec by id.
    pub fn get(&self, id: QueryId) -> Option<Arc<QuerySpec>> {
        self.specs.read().expect("query library lock poisoned").get(&id).cloned()
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.specs.read().expect("query library lock poisoned").len()
    }

    /// True when the library has no specs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-register an already-shared spec under its own id (lazy install
    /// repair: a node answering a `QueryRequest` puts the spec back so the
    /// requester's installation finds it). No-op if the id is already bound.
    pub fn restore(&self, spec: Arc<QuerySpec>) {
        self.specs.write().expect("query library lock poisoned").entry(spec.id).or_insert(spec);
    }

    /// Remove a spec (e.g. when its query's lifetime expires).
    pub fn remove(&self, id: QueryId) -> Option<Arc<QuerySpec>> {
        self.specs.write().expect("query library lock poisoned").remove(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localize::localize;
    use dr_datalog::parse_program;
    use dr_types::{NodeId, Value};

    fn sample_program() -> Arc<LocalizedProgram> {
        let p = parse_program(
            r#"
            NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
            Query: path(@S,D,P,C).
            "#,
        )
        .unwrap();
        Arc::new(localize(&p, &[]).unwrap())
    }

    #[test]
    fn spec_builder_options() {
        let spec = QuerySpec::new(7, "best-path", sample_program())
            .with_aggregate_selections(false)
            .with_sharing(true)
            .with_facts(vec![Tuple::new("magicSources", vec![Value::Node(NodeId::new(3))])]);
        assert_eq!(spec.id, 7);
        assert_eq!(spec.name, "best-path");
        assert!(!spec.aggregate_selections);
        assert!(spec.share_results);
        assert_eq!(spec.facts.len(), 1);
    }

    #[test]
    fn defaults_enable_aggregate_selections_only() {
        let spec = QuerySpec::new(1, "q", sample_program());
        assert!(spec.aggregate_selections);
        assert!(!spec.share_results);
        assert!(spec.facts.is_empty());
        assert!(!spec.record_provenance);
        assert!(spec.with_provenance(true).record_provenance);
    }

    #[test]
    fn library_register_get_remove() {
        let lib = QueryLibrary::new();
        assert!(lib.is_empty());
        lib.register(QuerySpec::new(1, "a", sample_program()));
        lib.register(QuerySpec::new(2, "b", sample_program()));
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.get(1).unwrap().name, "a");
        assert!(lib.get(9).is_none());
        assert!(lib.remove(1).is_some());
        assert!(lib.get(1).is_none());
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn register_replaces_existing_id() {
        let lib = QueryLibrary::new();
        lib.register(QuerySpec::new(1, "old", sample_program()));
        lib.register(QuerySpec::new(1, "new", sample_program()));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.get(1).unwrap().name, "new");
    }

    #[test]
    fn library_is_shareable_across_nodes() {
        let lib = Arc::new(QueryLibrary::new());
        let other = Arc::clone(&lib);
        lib.register(QuerySpec::new(5, "shared", sample_program()));
        assert_eq!(other.get(5).unwrap().name, "shared");
    }
}
