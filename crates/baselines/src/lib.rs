//! # dr-baselines
//!
//! Hand-coded implementations of the traditional routing protocols the paper
//! compares against: a **path-vector** protocol (the "PV" line of Figure 6)
//! and a **distance-vector** protocol. They run directly as
//! [`dr_netsim::NodeApp`]s — no query engine involved — and exchange batched
//! route advertisements exactly like classic implementations, so their
//! convergence latency and communication overhead provide the reference
//! point for the declarative versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance_vector;
pub mod path_vector;

pub use distance_vector::{DistanceVectorConfig, DistanceVectorNode};
pub use path_vector::{PathVectorConfig, PathVectorNode, RouteEntry};
