//! A classic distance-vector protocol (RIP-style) with split horizon and
//! poison reverse, hand-coded against the simulator. Unlike the path-vector
//! baseline it advertises only (destination, cost) pairs — the traditional
//! "batches together a vector of costs" behaviour the paper contrasts with
//! its per-tuple execution (§3.6).

use dr_netsim::{Context, LinkEvent, NodeApp, SimDuration};
use dr_types::{Cost, NodeId};
use std::collections::{BTreeMap, HashMap};

/// A distance-vector advertisement: destination → advertised cost.
#[derive(Debug, Clone)]
pub struct DistanceVector {
    entries: Vec<(NodeId, Cost)>,
}

impl DistanceVector {
    /// Wire size estimate (8 bytes per entry plus header).
    pub fn wire_size(&self) -> usize {
        16 + 8 * self.entries.len()
    }
}

/// Configuration of the distance-vector baseline.
#[derive(Debug, Clone)]
pub struct DistanceVectorConfig {
    /// Advertisement batching interval.
    pub advertisement_interval: SimDuration,
    /// Cost treated as unreachable (RIP's 16).
    pub infinity: Cost,
}

impl Default for DistanceVectorConfig {
    fn default() -> Self {
        DistanceVectorConfig {
            advertisement_interval: SimDuration::from_millis(200),
            infinity: Cost::new(1e6),
        }
    }
}

/// The per-node distance-vector protocol instance.
pub struct DistanceVectorNode {
    config: DistanceVectorConfig,
    id: NodeId,
    /// destination → (next hop, cost)
    routes: BTreeMap<NodeId, (NodeId, Cost)>,
    /// (neighbor, destination) → cost advertised by that neighbor.
    heard: HashMap<(NodeId, NodeId), Cost>,
    neighbors: BTreeMap<NodeId, Cost>,
    dirty: bool,
    advert_scheduled: bool,
}

impl DistanceVectorNode {
    /// Create a node with the given configuration.
    pub fn new(config: DistanceVectorConfig) -> DistanceVectorNode {
        DistanceVectorNode {
            config,
            id: NodeId::new(0),
            routes: BTreeMap::new(),
            heard: HashMap::new(),
            neighbors: BTreeMap::new(),
            dirty: false,
            advert_scheduled: false,
        }
    }

    /// destination → (next hop, cost) routing table.
    pub fn routes(&self) -> &BTreeMap<NodeId, (NodeId, Cost)> {
        &self.routes
    }

    /// The next hop and cost toward `dest`, if reachable.
    pub fn route_to(&self, dest: NodeId) -> Option<(NodeId, Cost)> {
        self.routes.get(&dest).copied().filter(|(_, c)| c.is_finite())
    }

    /// Number of destinations with a finite route.
    pub fn reachable_destinations(&self) -> usize {
        self.routes.values().filter(|(_, c)| c.is_finite()).count()
    }

    fn recompute(&mut self) -> bool {
        let mut new_routes: BTreeMap<NodeId, (NodeId, Cost)> = BTreeMap::new();
        for (&nb, &cost) in &self.neighbors {
            if cost.is_finite() {
                new_routes.insert(nb, (nb, cost));
            }
        }
        for ((nb, dest), &cost) in &self.heard {
            let Some(&link_cost) = self.neighbors.get(nb) else { continue };
            if !link_cost.is_finite() {
                continue;
            }
            let total = link_cost + cost;
            if total >= self.config.infinity {
                continue;
            }
            match new_routes.get(dest) {
                Some((_, existing)) if *existing <= total => {}
                _ => {
                    new_routes.insert(*dest, (*nb, total));
                }
            }
        }
        new_routes.remove(&self.id);
        let changed = new_routes != self.routes;
        self.routes = new_routes;
        changed
    }

    /// Build the advertisement for one neighbor, applying split horizon with
    /// poison reverse: routes learned through that neighbor are advertised
    /// back with infinite cost.
    fn advertisement_for(&self, neighbor: NodeId) -> DistanceVector {
        DistanceVector {
            entries: self
                .routes
                .iter()
                .map(
                    |(&dest, &(next, cost))| {
                        if next == neighbor {
                            (dest, self.config.infinity)
                        } else {
                            (dest, cost)
                        }
                    },
                )
                .collect(),
        }
    }

    fn schedule_advert(&mut self, ctx: &mut Context<'_, DistanceVector>) {
        if !self.advert_scheduled {
            self.advert_scheduled = true;
            ctx.set_timer(self.config.advertisement_interval);
        }
    }
}

impl NodeApp for DistanceVectorNode {
    type Message = DistanceVector;

    fn on_start(&mut self, ctx: &mut Context<'_, DistanceVector>) {
        self.id = ctx.id();
        self.neighbors = ctx.neighbors().into_iter().map(|(nb, p)| (nb, p.cost)).collect();
        self.recompute();
        self.dirty = true;
        self.schedule_advert(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, DistanceVector>,
        from: NodeId,
        msg: DistanceVector,
    ) {
        self.heard.retain(|(nb, _), _| *nb != from);
        for (dest, cost) in msg.entries {
            let stored = if cost >= self.config.infinity { Cost::INFINITY } else { cost };
            self.heard.insert((from, dest), stored);
        }
        if self.recompute() {
            self.dirty = true;
            self.schedule_advert(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DistanceVector>, _timer: u64) {
        self.advert_scheduled = false;
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let neighbors: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for nb in neighbors {
            let advert = self.advertisement_for(nb);
            let size = advert.wire_size();
            ctx.send(nb, advert, size);
        }
    }

    fn on_link_event(&mut self, ctx: &mut Context<'_, DistanceVector>, event: LinkEvent) {
        match event {
            LinkEvent::MetricChanged { neighbor, params } => {
                self.neighbors.insert(neighbor, params.cost);
            }
            LinkEvent::NeighborDown { neighbor } => {
                self.neighbors.insert(neighbor, Cost::INFINITY);
                self.heard.retain(|(nb, _), _| *nb != neighbor);
            }
            LinkEvent::NeighborUp { neighbor, params } => {
                self.neighbors.insert(neighbor, params.cost);
            }
        }
        self.recompute();
        self.dirty = true;
        self.schedule_advert(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_netsim::{LinkParams, SimConfig, SimTime, Simulator, Topology};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn line(k: usize) -> Topology {
        let mut t = Topology::new(k);
        for i in 0..k - 1 {
            t.add_bidirectional(
                n(i as u32),
                n(i as u32 + 1),
                LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
            );
        }
        t
    }

    fn build(topology: Topology) -> Simulator<DistanceVectorNode> {
        let apps = (0..topology.num_nodes())
            .map(|_| DistanceVectorNode::new(DistanceVectorConfig::default()))
            .collect();
        Simulator::new(topology, apps, SimConfig::default())
    }

    #[test]
    fn converges_on_a_line() {
        let mut sim = build(line(5));
        sim.run_until(SimTime::from_secs(30));
        for i in 0..5u32 {
            assert_eq!(sim.app(n(i)).reachable_destinations(), 4, "node {i}");
        }
        assert_eq!(sim.app(n(0)).route_to(n(4)), Some((n(1), Cost::new(4.0))));
        assert_eq!(sim.app(n(4)).route_to(n(0)), Some((n(3), Cost::new(4.0))));
    }

    #[test]
    fn split_horizon_poisons_reverse_advertisements() {
        let mut node = DistanceVectorNode::new(DistanceVectorConfig::default());
        node.id = n(1);
        node.neighbors.insert(n(0), Cost::new(1.0));
        node.neighbors.insert(n(2), Cost::new(1.0));
        node.heard.insert((n(2), n(3)), Cost::new(1.0));
        node.recompute();
        // Route to 3 goes via 2; advertising back to 2 must poison it.
        let to_2 = node.advertisement_for(n(2));
        let entry = to_2.entries.iter().find(|(d, _)| *d == n(3)).unwrap();
        assert!(entry.1 >= node.config.infinity);
        // ...but the same route advertised to 0 carries the real cost.
        let to_0 = node.advertisement_for(n(0));
        let entry = to_0.entries.iter().find(|(d, _)| *d == n(3)).unwrap();
        assert_eq!(entry.1, Cost::new(2.0));
    }

    #[test]
    fn recovers_from_failure_without_counting_to_infinity() {
        // Square 0-1, 1-3, 0-2, 2-3: fail node 1, route 0->3 flips to via 2.
        let mut t = Topology::new(4);
        for (a, b) in [(0u32, 1u32), (1, 3), (0, 2), (2, 3)] {
            t.add_bidirectional(
                n(a),
                n(b),
                LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
            );
        }
        let mut sim = build(t);
        sim.run_until(SimTime::from_secs(20));
        assert_eq!(sim.app(n(0)).route_to(n(3)).unwrap().1, Cost::new(2.0));
        sim.schedule_node_fail(SimTime::from_secs(20), n(1));
        sim.run_until(SimTime::from_secs(60));
        let (next, cost) = sim.app(n(0)).route_to(n(3)).unwrap();
        assert_eq!(next, n(2));
        assert_eq!(cost, Cost::new(2.0));
    }

    #[test]
    fn unreachable_destinations_eventually_disappear() {
        let mut sim = build(line(3));
        sim.run_until(SimTime::from_secs(20));
        assert!(sim.app(n(0)).route_to(n(2)).is_some());
        sim.schedule_node_fail(SimTime::from_secs(20), n(2));
        sim.run_until(SimTime::from_secs(120));
        assert!(sim.app(n(0)).route_to(n(2)).is_none());
    }

    #[test]
    fn advertisement_wire_size() {
        let dv = DistanceVector { entries: vec![(n(1), Cost::new(1.0)), (n(2), Cost::new(2.0))] };
        assert_eq!(dv.wire_size(), 32);
    }
}
