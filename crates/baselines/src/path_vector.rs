//! A classic path-vector protocol (BGP-style, without policy), hand-coded
//! against the simulator. This is the paper's "PV" baseline in Figure 6: it
//! computes all-pairs shortest paths by exchanging full path vectors with
//! neighbors, batching advertisements every `advertisement_interval`.

use dr_netsim::{Context, LinkEvent, NodeApp, SimDuration};
use dr_types::{Cost, NodeId, PathVector};
use std::collections::BTreeMap;

/// One route in the routing table.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteEntry {
    /// Destination.
    pub dest: NodeId,
    /// Full path from this node to the destination.
    pub path: PathVector,
    /// Total path cost.
    pub cost: Cost,
    /// The neighbor this route was learned from (self for direct routes).
    pub learned_from: NodeId,
}

/// An advertisement: the sender's current best routes.
#[derive(Debug, Clone)]
pub struct Advertisement {
    routes: Vec<(NodeId, PathVector, Cost)>,
}

impl Advertisement {
    /// Wire size estimate: 4 bytes per node id in every path plus per-route
    /// overhead (comparable to the tuple encoding used by the query engine).
    pub fn wire_size(&self) -> usize {
        16 + self.routes.iter().map(|(_, p, _)| 16 + 4 * p.len()).sum::<usize>()
    }
}

/// Configuration of the path-vector baseline.
#[derive(Debug, Clone)]
pub struct PathVectorConfig {
    /// How often pending route changes are advertised to neighbors
    /// (matches the query processor's 200 ms batching for a fair
    /// comparison).
    pub advertisement_interval: SimDuration,
}

impl Default for PathVectorConfig {
    fn default() -> Self {
        PathVectorConfig { advertisement_interval: SimDuration::from_millis(200) }
    }
}

/// The per-node path-vector protocol instance.
pub struct PathVectorNode {
    config: PathVectorConfig,
    id: NodeId,
    /// Best route per destination.
    routes: BTreeMap<NodeId, RouteEntry>,
    /// Best route heard from each neighbor per destination (per-neighbor
    /// RIB-in, needed to recover alternatives on failure).
    rib_in: BTreeMap<(NodeId, NodeId), (PathVector, Cost)>,
    /// Current cost to each neighbor (∞ = down).
    neighbors: BTreeMap<NodeId, Cost>,
    /// Destinations whose route changed since the last advertisement.
    dirty: bool,
    advert_scheduled: bool,
}

impl PathVectorNode {
    /// Create a node with the given configuration.
    pub fn new(config: PathVectorConfig) -> PathVectorNode {
        PathVectorNode {
            config,
            id: NodeId::new(0),
            routes: BTreeMap::new(),
            rib_in: BTreeMap::new(),
            neighbors: BTreeMap::new(),
            dirty: false,
            advert_scheduled: false,
        }
    }

    /// The node's current routing table.
    pub fn routes(&self) -> &BTreeMap<NodeId, RouteEntry> {
        &self.routes
    }

    /// The route to `dest`, if any.
    pub fn route_to(&self, dest: NodeId) -> Option<&RouteEntry> {
        self.routes.get(&dest)
    }

    /// Number of destinations with a finite-cost route.
    pub fn reachable_destinations(&self) -> usize {
        self.routes.values().filter(|r| r.cost.is_finite()).count()
    }

    fn schedule_advert(&mut self, ctx: &mut Context<'_, Advertisement>) {
        if !self.advert_scheduled {
            self.advert_scheduled = true;
            ctx.set_timer(self.config.advertisement_interval);
        }
    }

    /// Recompute the best route for every destination from direct links and
    /// the per-neighbor RIB. Returns true when anything changed.
    fn recompute(&mut self) -> bool {
        let mut new_routes: BTreeMap<NodeId, RouteEntry> = BTreeMap::new();
        // Direct routes.
        for (&nb, &cost) in &self.neighbors {
            if cost.is_finite() {
                new_routes.insert(
                    nb,
                    RouteEntry {
                        dest: nb,
                        path: PathVector::from_nodes(vec![self.id, nb]),
                        cost,
                        learned_from: self.id,
                    },
                );
            }
        }
        // Routes via neighbors.
        for ((nb, dest), (path, cost)) in &self.rib_in {
            let Some(&link_cost) = self.neighbors.get(nb) else { continue };
            if !link_cost.is_finite() || !cost.is_finite() {
                continue;
            }
            // Loop prevention: reject paths that already contain us.
            if path.contains(self.id) {
                continue;
            }
            let total = link_cost + *cost;
            let candidate = RouteEntry {
                dest: *dest,
                path: path.prepend(self.id),
                cost: total,
                learned_from: *nb,
            };
            match new_routes.get(dest) {
                Some(existing) if existing.cost <= total => {}
                _ => {
                    new_routes.insert(*dest, candidate);
                }
            }
        }
        new_routes.remove(&self.id);
        let changed = new_routes != self.routes;
        self.routes = new_routes;
        changed
    }

    fn advertisement(&self) -> Advertisement {
        Advertisement {
            routes: self.routes.values().map(|r| (r.dest, r.path.clone(), r.cost)).collect(),
        }
    }
}

impl NodeApp for PathVectorNode {
    type Message = Advertisement;

    fn on_start(&mut self, ctx: &mut Context<'_, Advertisement>) {
        self.id = ctx.id();
        self.neighbors = ctx.neighbors().into_iter().map(|(nb, p)| (nb, p.cost)).collect();
        self.recompute();
        self.dirty = true;
        self.schedule_advert(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Advertisement>,
        from: NodeId,
        msg: Advertisement,
    ) {
        // Replace everything previously heard from this neighbor.
        self.rib_in.retain(|(nb, _), _| *nb != from);
        for (dest, path, cost) in msg.routes {
            self.rib_in.insert((from, dest), (path, cost));
        }
        if self.recompute() {
            self.dirty = true;
            self.schedule_advert(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Advertisement>, _timer: u64) {
        self.advert_scheduled = false;
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let advert = self.advertisement();
        let size = advert.wire_size();
        let neighbors: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for nb in neighbors {
            ctx.send(nb, advert.clone(), size);
        }
    }

    fn on_link_event(&mut self, ctx: &mut Context<'_, Advertisement>, event: LinkEvent) {
        match event {
            LinkEvent::MetricChanged { neighbor, params } => {
                self.neighbors.insert(neighbor, params.cost);
            }
            LinkEvent::NeighborDown { neighbor } => {
                self.neighbors.insert(neighbor, Cost::INFINITY);
                self.rib_in.retain(|(nb, _), _| *nb != neighbor);
            }
            LinkEvent::NeighborUp { neighbor, params } => {
                self.neighbors.insert(neighbor, params.cost);
            }
        }
        if self.recompute() {
            self.dirty = true;
        }
        // Always re-advertise after a topology event so neighbors hear about
        // withdrawn routes.
        self.dirty = true;
        self.schedule_advert(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_netsim::{LinkParams, SimConfig, SimTime, Simulator, Topology};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn build(topology: Topology) -> Simulator<PathVectorNode> {
        let apps = (0..topology.num_nodes())
            .map(|_| PathVectorNode::new(PathVectorConfig::default()))
            .collect();
        Simulator::new(topology, apps, SimConfig::default())
    }

    fn diamond() -> Topology {
        let mut t = Topology::new(4);
        t.add_bidirectional(
            n(0),
            n(1),
            LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
        );
        t.add_bidirectional(
            n(1),
            n(3),
            LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
        );
        t.add_bidirectional(
            n(0),
            n(2),
            LinkParams::with_latency_ms(10.0).with_cost(Cost::new(5.0)),
        );
        t.add_bidirectional(
            n(2),
            n(3),
            LinkParams::with_latency_ms(10.0).with_cost(Cost::new(5.0)),
        );
        t
    }

    #[test]
    fn converges_to_all_pairs_shortest_paths() {
        let mut sim = build(diamond());
        sim.run_until(SimTime::from_secs(30));
        for i in 0..4u32 {
            assert_eq!(sim.app(n(i)).reachable_destinations(), 3, "node {i}");
        }
        let route = sim.app(n(0)).route_to(n(3)).unwrap();
        assert_eq!(route.cost, Cost::new(2.0));
        assert_eq!(route.path.nodes(), &[n(0), n(1), n(3)]);
        assert!(sim.metrics().total_bytes() > 0);
    }

    #[test]
    fn reacts_to_node_failure() {
        let mut sim = build(diamond());
        sim.run_until(SimTime::from_secs(30));
        sim.schedule_node_fail(SimTime::from_secs(30), n(1));
        sim.run_until(SimTime::from_secs(60));
        let route = sim.app(n(0)).route_to(n(3)).unwrap();
        assert_eq!(route.cost, Cost::new(10.0));
        assert!(!route.path.contains(n(1)));
    }

    #[test]
    fn reacts_to_cost_changes() {
        let mut sim = build(diamond());
        sim.run_until(SimTime::from_secs(30));
        // Make the cheap edge 1-3 expensive; route flips to via 2.
        for (a, b) in [(1u32, 3u32), (3, 1)] {
            sim.schedule_link_metric_change(
                SimTime::from_secs(30),
                n(a),
                n(b),
                LinkParams::with_latency_ms(10.0).with_cost(Cost::new(50.0)),
            );
        }
        sim.run_until(SimTime::from_secs(60));
        let route = sim.app(n(0)).route_to(n(3)).unwrap();
        assert_eq!(route.cost, Cost::new(10.0));
        assert_eq!(route.path.nodes(), &[n(0), n(2), n(3)]);
    }

    #[test]
    fn loop_prevention_rejects_paths_containing_self() {
        let mut node = PathVectorNode::new(PathVectorConfig::default());
        node.id = n(0);
        node.neighbors.insert(n(1), Cost::new(1.0));
        node.rib_in
            .insert((n(1), n(2)), (PathVector::from_nodes(vec![n(1), n(0), n(2)]), Cost::new(2.0)));
        node.recompute();
        assert!(node.route_to(n(2)).is_none());
    }

    #[test]
    fn advertisement_size_scales_with_routes() {
        let empty = Advertisement { routes: vec![] };
        let one = Advertisement {
            routes: vec![(n(1), PathVector::from_nodes(vec![n(0), n(1)]), Cost::new(1.0))],
        };
        assert!(one.wire_size() > empty.wire_size());
    }
}
