//! Derivation provenance for declarative routing.
//!
//! The paper's pitch is that routes are *derived facts*; this crate gives a
//! deployment the vocabulary to answer "why is this the best path, and why
//! did it change?". Every derived tuple can carry a compact
//! [`ProvRecord`] — which rule fired, on which node, during which batch,
//! from which body tuples — stored in an arena-backed [`ProvStore`] whose
//! lifetime is tied to the tuple's own: a pruned tuple forgets its record,
//! a torn-down query drops its whole store.
//!
//! Cross-node derivations do not copy proof trees around; a shipped tuple
//! links back to its deriving node as a `(node, ProvId)` pointer
//! ([`ProvRef::Remote`]) that is resolved on demand. Materializing the full
//! distributed proof yields a [`DerivationTree`]; two trees (say, before
//! and after a link failure) are compared with [`diff_explanations`].
//!
//! The engine integration lives in `dr-core` (recording, shipping,
//! fetching, the `explain` entry point); this crate is deliberately small
//! and depends only on `dr-types`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use dr_types::{NodeId, Tuple};

/// Handle of one derivation record inside a node's [`ProvStore`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProvId(pub u32);

impl fmt::Display for ProvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Where a body tuple's own derivation lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProvRef {
    /// A base fact (network link, injected constant, shipped copy of a
    /// base fact): it has no deriving rule, it is simply *in* the store.
    Base,
    /// Derived on this node; the record is in the local arena.
    Local(ProvId),
    /// Derived on another node; resolve by asking `node` for `id`.
    Remote(NodeId, ProvId),
}

/// One rule firing: the compact "why" of a single derived tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvRecord {
    /// The derived tuple itself.
    pub tuple: Tuple,
    /// Index of the firing rule in the query's localized program (both
    /// ends of a [`ProvRef::Remote`] pointer share the program, so an
    /// index resolves anywhere).
    pub rule: u32,
    /// The node the rule fired on.
    pub node: NodeId,
    /// Batch timestamp (simulated milliseconds) of the firing.
    pub batch: u64,
    /// The body tuples the firing joined, each with its own provenance.
    pub body: Vec<(Tuple, ProvRef)>,
}

/// Arena-backed per-(node, query) provenance store.
///
/// Records live in a slab (the [`ProvId`] is the slot index); a side index
/// maps stored tuples to their [`ProvRef`] so admission and pruning are
/// O(1). Slots freed by [`ProvStore::forget`] are reused. Dropping the
/// store (with its owning query instance) drops every record at once —
/// provenance never outlives the state it explains.
#[derive(Debug, Default)]
pub struct ProvStore {
    records: Vec<Option<ProvRecord>>,
    free: Vec<u32>,
    by_tuple: HashMap<Tuple, ProvRef>,
    /// Remote records pulled over the wire, cached per `(node, id)` so
    /// repeated explanations (and lossy retries) are idempotent.
    fetched: HashMap<(NodeId, ProvId), ProvRecord>,
}

impl ProvStore {
    /// An empty store.
    pub fn new() -> ProvStore {
        ProvStore::default()
    }

    /// Record a rule firing for `tuple` and index it as [`ProvRef::Local`].
    /// Any previous binding of the tuple (a re-derivation) is replaced.
    pub fn record(
        &mut self,
        tuple: Tuple,
        rule: u32,
        node: NodeId,
        batch: u64,
        body: Vec<(Tuple, ProvRef)>,
    ) -> ProvId {
        self.release(&tuple);
        let record = ProvRecord { tuple: tuple.clone(), rule, node, batch, body };
        let id = match self.free.pop() {
            Some(slot) => {
                self.records[slot as usize] = Some(record);
                ProvId(slot)
            }
            None => {
                self.records.push(Some(record));
                ProvId(self.records.len() as u32 - 1)
            }
        };
        self.by_tuple.insert(tuple, ProvRef::Local(id));
        id
    }

    /// Bind `tuple` to an existing provenance (a shipped copy pointing at
    /// its origin, or a received tuple pointing at its deriving node).
    pub fn alias(&mut self, tuple: Tuple, prov: ProvRef) {
        self.release(&tuple);
        self.by_tuple.insert(tuple, prov);
    }

    /// The provenance of `tuple`; unknown tuples are base facts.
    pub fn resolve(&self, tuple: &Tuple) -> ProvRef {
        self.by_tuple.get(tuple).copied().unwrap_or(ProvRef::Base)
    }

    /// Look up a record by arena id.
    pub fn get(&self, id: ProvId) -> Option<&ProvRecord> {
        self.records.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Drop `tuple`'s provenance (the tuple was pruned, replaced, or
    /// invalidated). Frees the arena slot if the binding was local.
    pub fn forget(&mut self, tuple: &Tuple) {
        self.release(tuple);
        self.by_tuple.remove(tuple);
    }

    fn release(&mut self, tuple: &Tuple) {
        if let Some(ProvRef::Local(id)) = self.by_tuple.get(tuple) {
            if self.records[id.0 as usize].take().is_some() {
                self.free.push(id.0);
            }
        }
    }

    /// Cache a record fetched from `node` (idempotent).
    pub fn remember_fetched(&mut self, node: NodeId, id: ProvId, record: ProvRecord) {
        self.fetched.insert((node, id), record);
    }

    /// A previously fetched remote record.
    pub fn fetched(&self, node: NodeId, id: ProvId) -> Option<&ProvRecord> {
        self.fetched.get(&(node, id))
    }

    /// Live records in the arena.
    pub fn live_records(&self) -> usize {
        self.records.iter().filter(|slot| slot.is_some()).count()
    }

    /// Everything the store holds: live records, tuple bindings, and the
    /// fetched-record cache. This is the residue a state-footprint audit
    /// counts — it must reach zero when the owning query unwinds.
    pub fn residue(&self) -> usize {
        self.live_records() + self.by_tuple.len() + self.fetched.len()
    }

    /// True when the store holds nothing at all.
    pub fn is_empty(&self) -> bool {
        self.residue() == 0
    }
}

/// A materialized (possibly distributed) proof tree for one derived tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum DerivationTree {
    /// A leaf: a base fact with no deriving rule.
    Base {
        /// The base fact.
        tuple: Tuple,
    },
    /// An internal node: a rule firing and the proofs of its body.
    Derived {
        /// The derived tuple.
        tuple: Tuple,
        /// Label of the firing rule (resolved from the rule index).
        rule: String,
        /// The node the rule fired on.
        node: NodeId,
        /// Proofs of the body tuples, in body order.
        children: Vec<DerivationTree>,
    },
    /// A remote pointer that could not be resolved (the record was pruned
    /// or its node is gone). Explanations of live routes never contain
    /// this; it keeps partially-unwound deployments inspectable.
    Missing {
        /// The tuple whose derivation is unavailable.
        tuple: Tuple,
        /// The node that held the record.
        node: NodeId,
        /// The arena id that no longer resolves.
        id: ProvId,
    },
}

impl DerivationTree {
    /// The tuple this (sub)tree proves.
    pub fn tuple(&self) -> &Tuple {
        match self {
            DerivationTree::Base { tuple }
            | DerivationTree::Derived { tuple, .. }
            | DerivationTree::Missing { tuple, .. } => tuple,
        }
    }

    /// Total nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            DerivationTree::Derived { children, .. } => {
                1 + children.iter().map(DerivationTree::size).sum::<usize>()
            }
            _ => 1,
        }
    }

    /// Longest root-to-leaf path (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            DerivationTree::Derived { children, .. } => {
                1 + children.iter().map(DerivationTree::depth).max().unwrap_or(0)
            }
            _ => 1,
        }
    }

    /// The base-fact leaves, left to right.
    pub fn leaves(&self) -> Vec<&Tuple> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'t>(&'t self, out: &mut Vec<&'t Tuple>) {
        match self {
            DerivationTree::Base { tuple } | DerivationTree::Missing { tuple, .. } => {
                out.push(tuple)
            }
            DerivationTree::Derived { children, .. } => {
                for child in children {
                    child.collect_leaves(out);
                }
            }
        }
    }

    /// True when every leaf is a resolved base fact (no [`Missing`]
    /// pointers anywhere).
    ///
    /// [`Missing`]: DerivationTree::Missing
    pub fn is_fully_resolved(&self) -> bool {
        match self {
            DerivationTree::Base { .. } => true,
            DerivationTree::Missing { .. } => false,
            DerivationTree::Derived { children, .. } => {
                children.iter().all(DerivationTree::is_fully_resolved)
            }
        }
    }

    /// Every rule firing in the tree as a flat, comparable step set.
    pub fn steps(&self) -> BTreeSet<DerivationStep> {
        let mut out = BTreeSet::new();
        self.collect_steps(&mut out);
        out
    }

    fn collect_steps(&self, out: &mut BTreeSet<DerivationStep>) {
        if let DerivationTree::Derived { tuple, rule, node, children } = self {
            out.insert(DerivationStep {
                node: *node,
                rule: rule.clone(),
                head: tuple.clone(),
                body: children.iter().map(|c| c.tuple().clone()).collect(),
            });
            for child in children {
                child.collect_steps(out);
            }
        }
    }

    /// Structural well-formedness: every internal edge passes `check_edge`
    /// (typically: re-firing the named rule on exactly the body tuples
    /// re-derives the head) and every base leaf passes `check_base`
    /// (typically: the fact is still live in some node's store). Returns
    /// the first violation as a human-readable message.
    pub fn validate<E, B>(&self, check_edge: &E, check_base: &B) -> Result<(), String>
    where
        E: Fn(&str, NodeId, &[Tuple], &Tuple) -> bool,
        B: Fn(&Tuple) -> bool,
    {
        match self {
            DerivationTree::Base { tuple } => {
                if check_base(tuple) {
                    Ok(())
                } else {
                    Err(format!("leaf {tuple} is not a live base fact"))
                }
            }
            DerivationTree::Missing { tuple, node, id } => {
                Err(format!("unresolved remote derivation of {tuple} ({node} {id})"))
            }
            DerivationTree::Derived { tuple, rule, node, children } => {
                let body: Vec<Tuple> = children.iter().map(|c| c.tuple().clone()).collect();
                if !check_edge(rule, *node, &body, tuple) {
                    return Err(format!("rule {rule} on {node} does not re-derive {tuple}"));
                }
                for child in children {
                    child.validate(check_edge, check_base)?;
                }
                Ok(())
            }
        }
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            DerivationTree::Base { tuple } => writeln!(f, "{pad}{tuple}"),
            DerivationTree::Missing { tuple, node, id } => {
                writeln!(f, "{pad}{tuple}  [unresolved @{node} {id}]")
            }
            DerivationTree::Derived { tuple, rule, node, children } => {
                writeln!(f, "{pad}{tuple}  [{rule} @{node}]")?;
                for child in children {
                    child.render(f, indent + 1)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for DerivationTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// One rule firing extracted from a tree, in comparable form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DerivationStep {
    /// The node the rule fired on.
    pub node: NodeId,
    /// Label of the firing rule.
    pub rule: String,
    /// The derived tuple.
    pub head: Tuple,
    /// The body tuples the firing joined.
    pub body: Vec<Tuple>,
}

impl fmt::Display for DerivationStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @{} : {} :- ", self.rule, self.node, self.head)?;
        for (i, tuple) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{tuple}")?;
        }
        Ok(())
    }
}

/// What changed between two explanations of "the same" route.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplanationDiff {
    /// Firings present only in the *before* tree (derivation steps the
    /// change invalidated).
    pub removed: Vec<DerivationStep>,
    /// Firings present only in the *after* tree (steps the change
    /// introduced).
    pub added: Vec<DerivationStep>,
}

impl ExplanationDiff {
    /// True when both trees use exactly the same firings.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

impl fmt::Display for ExplanationDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.removed {
            writeln!(f, "- {step}")?;
        }
        for step in &self.added {
            writeln!(f, "+ {step}")?;
        }
        Ok(())
    }
}

/// Compare two derivation trees (typically the same route explained before
/// and after churn) as sets of rule firings.
pub fn diff_explanations(before: &DerivationTree, after: &DerivationTree) -> ExplanationDiff {
    let old = before.steps();
    let new = after.steps();
    ExplanationDiff {
        removed: old.difference(&new).cloned().collect(),
        added: new.difference(&old).cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_types::Value;

    fn t(rel: &str, fields: Vec<i64>) -> Tuple {
        Tuple::new(rel, fields.into_iter().map(Value::Int).collect())
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn arena_records_resolves_and_forgets() {
        let mut store = ProvStore::new();
        assert!(store.is_empty());

        let link = t("link", vec![0, 1]);
        let path = t("path", vec![0, 1, 1]);
        let id = store.record(path.clone(), 0, n(0), 200, vec![(link.clone(), ProvRef::Base)]);
        assert_eq!(store.resolve(&path), ProvRef::Local(id));
        assert_eq!(store.resolve(&link), ProvRef::Base);
        assert_eq!(store.get(id).unwrap().rule, 0);
        assert_eq!(store.live_records(), 1);

        // Re-deriving the same tuple replaces its record in place.
        let id2 = store.record(path.clone(), 1, n(0), 400, vec![(link.clone(), ProvRef::Base)]);
        assert_eq!(store.live_records(), 1);
        assert_eq!(store.get(id2).unwrap().rule, 1);

        store.forget(&path);
        assert_eq!(store.resolve(&path), ProvRef::Base);
        assert!(store.is_empty(), "forget must free the slot and the binding");

        // Freed slots are reused: the arena does not grow under churn.
        let id3 = store.record(path, 2, n(0), 600, vec![(link, ProvRef::Base)]);
        assert_eq!(id3.0, id2.0, "freed slot must be reused");
    }

    #[test]
    fn aliases_and_fetched_records_count_as_residue() {
        let mut store = ProvStore::new();
        let copy = t("link__to_NR2", vec![0, 1]);
        store.alias(copy.clone(), ProvRef::Remote(n(3), ProvId(7)));
        assert_eq!(store.resolve(&copy), ProvRef::Remote(n(3), ProvId(7)));
        assert_eq!(store.residue(), 1);

        let rec = ProvRecord {
            tuple: t("path", vec![3, 1, 2]),
            rule: 0,
            node: n(3),
            batch: 200,
            body: Vec::new(),
        };
        store.remember_fetched(n(3), ProvId(7), rec.clone());
        assert_eq!(store.fetched(n(3), ProvId(7)), Some(&rec));
        assert_eq!(store.residue(), 2);

        store.forget(&copy);
        assert_eq!(store.residue(), 1, "fetched cache persists until the store drops");
    }

    fn sample_tree() -> DerivationTree {
        DerivationTree::Derived {
            tuple: t("path", vec![0, 2, 2]),
            rule: "NR2".to_string(),
            node: n(1),
            children: vec![
                DerivationTree::Base { tuple: t("link", vec![0, 1]) },
                DerivationTree::Derived {
                    tuple: t("path", vec![1, 2, 1]),
                    rule: "NR1".to_string(),
                    node: n(1),
                    children: vec![DerivationTree::Base { tuple: t("link", vec![1, 2]) }],
                },
            ],
        }
    }

    #[test]
    fn tree_shape_accessors() {
        let tree = sample_tree();
        assert_eq!(tree.size(), 4);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.leaves().len(), 2);
        assert!(tree.is_fully_resolved());
        assert_eq!(tree.steps().len(), 2);

        let missing =
            DerivationTree::Missing { tuple: t("path", vec![9, 9, 9]), node: n(4), id: ProvId(0) };
        assert!(!missing.is_fully_resolved());
    }

    #[test]
    fn validate_checks_edges_and_leaves() {
        let tree = sample_tree();
        let all_edges = |_: &str, _: NodeId, _: &[Tuple], _: &Tuple| true;
        let all_base = |_: &Tuple| true;
        assert!(tree.validate(&all_edges, &all_base).is_ok());

        let no_nr1 = |rule: &str, _: NodeId, _: &[Tuple], _: &Tuple| rule != "NR1";
        let err = tree.validate(&no_nr1, &all_base).unwrap_err();
        assert!(err.contains("NR1"), "violation names the failing rule: {err}");

        let no_base = |_: &Tuple| false;
        assert!(tree.validate(&all_edges, &no_base).is_err());
    }

    #[test]
    fn diff_reports_changed_firings_only() {
        let before = sample_tree();
        assert!(diff_explanations(&before, &before).is_empty());

        // Reroute: the inner hop derives through a different rule firing.
        let after = DerivationTree::Derived {
            tuple: t("path", vec![0, 2, 2]),
            rule: "NR2".to_string(),
            node: n(1),
            children: vec![
                DerivationTree::Base { tuple: t("link", vec![0, 1]) },
                DerivationTree::Derived {
                    tuple: t("path", vec![1, 2, 1]),
                    rule: "NR1".to_string(),
                    node: n(3),
                    children: vec![DerivationTree::Base { tuple: t("link", vec![1, 3]) }],
                },
            ],
        };
        let diff = diff_explanations(&before, &after);
        assert_eq!(diff.removed.len(), 1);
        assert_eq!(diff.added.len(), 1);
        assert_eq!(diff.removed[0].node, n(1));
        assert_eq!(diff.added[0].node, n(3));
        let rendered = diff.to_string();
        assert!(rendered.contains("- NR1") && rendered.contains("+ NR1"), "{rendered}");
    }
}
