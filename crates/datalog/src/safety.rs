//! Static safety and termination analysis (paper §6).
//!
//! The paper argues that Datalog is a good DSL for the routing control plane
//! because (a) the *core* language (no function symbols) has polynomial time
//! and space complexity in the size of the input, and (b) for the augmented
//! language, "several powerful static tests have been developed to check for
//! the termination of an augmented Datalog query on a given input". This
//! module implements those checks at the level used by the paper:
//!
//! 1. **Range restriction / safety** — every head variable must be bound by a
//!    positive body atom or by an assignment whose inputs are bound;
//!    variables in negated atoms that also occur in the head must be bound
//!    positively.
//! 2. **Polynomial core detection** — a program with no function calls and
//!    no arithmetic is flagged as polynomial-time evaluable.
//! 3. **Termination heuristics** — recursive rules that *grow* values through
//!    function calls (path concatenation, cost addition) must also carry a
//!    bounding constraint: a cycle check (`f_inPath(P,X) = false`) for a
//!    growing path argument, or an upper bound (`C < k`) for a growing cost.
//!    The paper's Network-Reachability query without the cycle check is
//!    exactly the example it calls out as unsafe; with the check it passes.

use crate::ast::{CompareOp, Expr, Literal, Program, Rule, Term};
use std::collections::BTreeSet;
use std::fmt;

/// The outcome of the static analysis for a whole program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyReport {
    /// True when every rule is range-restricted (safe).
    pub range_restricted: bool,
    /// True when the program lies in the polynomial core (no functions, no
    /// arithmetic).
    pub polynomial_core: bool,
    /// True when every recursive growing rule carries a bounding constraint.
    pub terminating: bool,
    /// Human-readable findings, one per problem.
    pub issues: Vec<String>,
    /// Per-rule diagnoses (rule label or index, finding).
    pub rule_findings: Vec<RuleFinding>,
}

impl SafetyReport {
    /// True when the program passes every check: safe to execute on behalf
    /// of an untrusted third party (the paper's admission criterion).
    pub fn is_safe(&self) -> bool {
        self.range_restricted && self.terminating
    }
}

impl fmt::Display for SafetyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "safety: range_restricted={} polynomial_core={} terminating={}",
            self.range_restricted, self.polynomial_core, self.terminating
        )?;
        for issue in &self.issues {
            writeln!(f, "  - {issue}")?;
        }
        Ok(())
    }
}

/// The category of a per-rule finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A head variable is not bound by the body.
    UnboundHeadVariable,
    /// A variable used in a comparison or assignment is never bound.
    UnboundBodyVariable,
    /// A recursive rule grows a value without a bounding constraint.
    UnboundedRecursion,
    /// Informational: the rule uses function symbols (outside the core).
    UsesFunctions,
}

/// One finding attached to one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleFinding {
    /// The rule's label, or `rule#<i>` when unnamed.
    pub rule: String,
    /// What was found.
    pub kind: FindingKind,
    /// Human-readable detail.
    pub detail: String,
}

/// Functions whose results are structurally larger than (one of) their
/// inputs: deriving through them recursively can grow tuples without bound.
const GROWING_FUNCTIONS: &[&str] = &["f_prepend", "f_append", "f_concat", "f_initPath"];

/// Run the full static analysis on a program.
pub fn check_safety(program: &Program) -> SafetyReport {
    let mut report = SafetyReport {
        range_restricted: true,
        polynomial_core: true,
        terminating: true,
        issues: Vec::new(),
        rule_findings: Vec::new(),
    };

    let recursive_relations = recursive_relations(program);

    for (i, rule) in program.rules.iter().enumerate() {
        let label = rule.name.clone().unwrap_or_else(|| format!("rule#{i}"));

        // --- range restriction ------------------------------------------------
        let bound = bound_variables(rule);
        for hv in head_variables(rule) {
            if !bound.contains(hv.as_str()) {
                report.range_restricted = false;
                let detail = format!("head variable {hv} is not bound by the body");
                report.issues.push(format!("{label}: {detail}"));
                report.rule_findings.push(RuleFinding {
                    rule: label.clone(),
                    kind: FindingKind::UnboundHeadVariable,
                    detail,
                });
            }
        }
        for lit in &rule.body {
            let vars: Vec<String> = match lit {
                Literal::Compare { lhs, rhs, .. } => {
                    let mut v: Vec<String> =
                        lhs.variables().iter().map(|s| s.to_string()).collect();
                    v.extend(rhs.variables().iter().map(|s| s.to_string()));
                    v
                }
                Literal::Assign { expr, .. } => {
                    expr.variables().iter().map(|s| s.to_string()).collect()
                }
                _ => Vec::new(),
            };
            for v in vars {
                if !bound.contains(v.as_str()) {
                    report.range_restricted = false;
                    let detail = format!("variable {v} used in a constraint is never bound");
                    report.issues.push(format!("{label}: {detail}"));
                    report.rule_findings.push(RuleFinding {
                        rule: label.clone(),
                        kind: FindingKind::UnboundBodyVariable,
                        detail,
                    });
                }
            }
        }

        // --- polynomial core ---------------------------------------------------
        let uses_functions = rule.body.iter().any(|lit| match lit {
            Literal::Assign { expr, .. } => expr.has_call() || matches!(expr, Expr::BinOp { .. }),
            Literal::Compare { lhs, rhs, .. } => lhs.has_call() || rhs.has_call(),
            _ => false,
        });
        if uses_functions {
            report.polynomial_core = false;
            report.rule_findings.push(RuleFinding {
                rule: label.clone(),
                kind: FindingKind::UsesFunctions,
                detail: "rule uses function symbols or arithmetic (outside the polynomial core)"
                    .to_string(),
            });
        }

        // --- termination -------------------------------------------------------
        // A rule can loop only when some body relation is *mutually*
        // recursive with its head (same dependency cycle); growth through a
        // relation computed in an earlier stratum terminates trivially.
        let in_head_cycle = rule
            .body_relations()
            .iter()
            .any(|r| mutually_recursive(program, &rule.head.relation, r));
        if recursive_relations.contains(rule.head.relation.as_str())
            && in_head_cycle
            && rule_grows(rule)
            && !rule_is_bounded(rule)
        {
            report.terminating = false;
            let detail = "recursive rule grows a path or cost without a bounding \
                          constraint (add a cycle check such as `f_inPath(P,S) = false` \
                          or an upper bound such as `C < k`)"
                .to_string();
            report.issues.push(format!("{label}: {detail}"));
            report.rule_findings.push(RuleFinding {
                rule: label,
                kind: FindingKind::UnboundedRecursion,
                detail,
            });
        }
    }

    report
}

/// True when `a` and `b` lie on a common dependency cycle: `a` (directly or
/// transitively) reads `b` and `b` reads `a`.
fn mutually_recursive(program: &Program, a: &str, b: &str) -> bool {
    reads_transitively(program, a, b) && reads_transitively(program, b, a)
}

/// True when evaluating `from` requires (directly or transitively) reading
/// `to`.
fn reads_transitively(program: &Program, from: &str, to: &str) -> bool {
    let mut stack = vec![from.to_string()];
    let mut visited: BTreeSet<String> = BTreeSet::new();
    while let Some(current) = stack.pop() {
        for rule in &program.rules {
            if rule.head.relation != current {
                continue;
            }
            for body_rel in rule.body_relations() {
                if body_rel == to {
                    return true;
                }
                if visited.insert(body_rel.to_string()) {
                    stack.push(body_rel.to_string());
                }
            }
        }
    }
    false
}

/// Relations involved in a recursive cycle of the rule dependency graph
/// (including mutual recursion).
fn recursive_relations(program: &Program) -> BTreeSet<String> {
    // Build adjacency: head -> body relations (edges point from the defined
    // relation to what it reads).
    let mut edges: Vec<(String, String)> = Vec::new();
    for rule in &program.rules {
        for body_rel in rule.body_relations() {
            edges.push((rule.head.relation.clone(), body_rel.to_string()));
        }
    }
    let relations: BTreeSet<String> =
        edges.iter().flat_map(|(a, b)| [a.clone(), b.clone()]).collect();

    // A relation is recursive when it can reach itself.
    let mut recursive = BTreeSet::new();
    for rel in &relations {
        let mut stack = vec![rel.clone()];
        let mut visited: BTreeSet<String> = BTreeSet::new();
        while let Some(current) = stack.pop() {
            for (from, to) in &edges {
                if *from == current && visited.insert(to.clone()) {
                    if to == rel {
                        recursive.insert(rel.clone());
                        stack.clear();
                        break;
                    }
                    stack.push(to.clone());
                }
            }
        }
    }
    recursive
}

/// Variables that get bound when evaluating the body: positive atom
/// variables plus assignment targets.
fn bound_variables(rule: &Rule) -> BTreeSet<String> {
    let mut bound: BTreeSet<String> = BTreeSet::new();
    for lit in &rule.body {
        match lit {
            Literal::Atom(a) => {
                for v in a.variables() {
                    bound.insert(v.to_string());
                }
            }
            Literal::Assign { var, .. } => {
                bound.insert(var.clone());
            }
            _ => {}
        }
    }
    bound
}

/// Head variables that need to be bound (constants and aggregates excluded;
/// aggregate variables must themselves be bound and are included).
fn head_variables(rule: &Rule) -> Vec<String> {
    let mut out = Vec::new();
    for t in &rule.head.terms {
        match t {
            crate::ast::HeadTerm::Plain(Term::Var(v)) => out.push(v.clone()),
            crate::ast::HeadTerm::Agg(_, v) => out.push(v.clone()),
            crate::ast::HeadTerm::Plain(Term::Const(_)) => {}
        }
    }
    out
}

/// True when the rule derives values through growing functions or additive
/// arithmetic (so repeated recursive application can produce ever-new
/// tuples).
fn rule_grows(rule: &Rule) -> bool {
    rule.body.iter().any(|lit| match lit {
        Literal::Assign { expr, .. } => expr_grows(expr),
        _ => false,
    })
}

fn expr_grows(expr: &Expr) -> bool {
    match expr {
        Expr::Term(_) => false,
        Expr::Call { func, args } => {
            GROWING_FUNCTIONS.contains(&func.as_str()) || args.iter().any(expr_grows)
        }
        Expr::BinOp { op, lhs, rhs } => {
            matches!(op, crate::ast::ArithOp::Add | crate::ast::ArithOp::Mul)
                || expr_grows(lhs)
                || expr_grows(rhs)
        }
    }
}

/// True when the rule carries a constraint that bounds the growth: a cycle
/// check on a path variable, or an upper-bound comparison on a variable.
fn rule_is_bounded(rule: &Rule) -> bool {
    rule.body.iter().any(|lit| match lit {
        // f_inPath(P, X) = false   (or != true)
        Literal::Compare { op, lhs, rhs } => {
            let cycle_check = |call: &Expr, val: &Expr| -> bool {
                matches!(call, Expr::Call { func, .. } if func == "f_inPath" || func == "f_hasCycle")
                    && matches!(
                        (op, val),
                        (CompareOp::Eq, Expr::Term(Term::Const(dr_types::Value::Bool(false))))
                            | (CompareOp::Ne, Expr::Term(Term::Const(dr_types::Value::Bool(true))))
                    )
            };
            if cycle_check(lhs, rhs) || cycle_check(rhs, lhs) {
                return true;
            }
            // C < k or C <= k with a constant bound (either side).
            let upper_bound = |var_side: &Expr, const_side: &Expr, op: CompareOp| -> bool {
                matches!(var_side, Expr::Term(Term::Var(_)))
                    && matches!(const_side, Expr::Term(Term::Const(_)))
                    && matches!(op, CompareOp::Lt | CompareOp::Le)
            };
            upper_bound(lhs, rhs, *op)
                || upper_bound(rhs, lhs, match op {
                    CompareOp::Gt => CompareOp::Lt,
                    CompareOp::Ge => CompareOp::Le,
                    other => *other,
                })
        }
        // f_size(P) / f_hops(P) bounded via assignment then comparison is
        // covered by the comparison arm; nothing to do for other literals.
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SAFE_REACHABILITY: &str = r#"
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
    "#;

    const UNSAFE_REACHABILITY: &str = r#"
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2).
    "#;

    #[test]
    fn paper_example_with_cycle_check_is_safe() {
        let report = check_safety(&parse_program(SAFE_REACHABILITY).unwrap());
        assert!(report.range_restricted);
        assert!(report.terminating);
        assert!(report.is_safe());
        assert!(!report.polynomial_core); // uses f_* functions
    }

    #[test]
    fn paper_example_without_cycle_check_is_flagged() {
        // §6: "This query has a rule NR2 that recurse infinitely ...
        // However, with the addition of the boolean function f_inPath ...
        // the query is safe."
        let report = check_safety(&parse_program(UNSAFE_REACHABILITY).unwrap());
        assert!(!report.terminating);
        assert!(!report.is_safe());
        assert!(report
            .rule_findings
            .iter()
            .any(|f| f.kind == FindingKind::UnboundedRecursion && f.rule == "NR2"));
    }

    #[test]
    fn cost_upper_bound_also_terminates() {
        let src = r#"
            DV1: path(@S,D,D,C) :- link(@S,D,C).
            DV2: path(@S,D,Z,C) :- link(@S,Z,C1), path(@Z,D,W,C2), C = C1 + C2, C < 16.
        "#;
        let report = check_safety(&parse_program(src).unwrap());
        assert!(report.terminating);
        // reversed comparison also counts
        let src2 = r#"
            DV1: path(@S,D,D,C) :- link(@S,D,C).
            DV2: path(@S,D,Z,C) :- link(@S,Z,C1), path(@Z,D,W,C2), C = C1 + C2, 16 > C.
        "#;
        assert!(check_safety(&parse_program(src2).unwrap()).terminating);
    }

    #[test]
    fn pure_core_program_is_polynomial() {
        let src = r#"
            r1: reachable(@S,D) :- link(@S,D,C).
            r2: reachable(@S,D) :- link(@S,Z,C), reachable(@Z,D).
        "#;
        let report = check_safety(&parse_program(src).unwrap());
        assert!(report.polynomial_core);
        assert!(report.terminating);
        assert!(report.is_safe());
        assert!(report.issues.is_empty());
    }

    #[test]
    fn unbound_head_variable_is_reported() {
        let src = "r1: out(@X,Y) :- q(@X).";
        let report = check_safety(&parse_program(src).unwrap());
        assert!(!report.range_restricted);
        assert!(!report.is_safe());
        assert!(report.rule_findings.iter().any(|f| f.kind == FindingKind::UnboundHeadVariable));
    }

    #[test]
    fn unbound_constraint_variable_is_reported() {
        let src = "r1: out(@X) :- q(@X), Y < 3.";
        let report = check_safety(&parse_program(src).unwrap());
        assert!(!report.range_restricted);
        assert!(report.rule_findings.iter().any(|f| f.kind == FindingKind::UnboundBodyVariable));
    }

    #[test]
    fn mutual_recursion_is_detected() {
        // p and q grow a path through each other without any bound.
        let src = r#"
            r1: p(@S,P) :- base(@S,P).
            r2: p(@S,P) :- q(@S,P1), P = f_append(P1,S).
            r3: q(@S,P) :- p(@S,P1), P = f_append(P1,S).
        "#;
        let report = check_safety(&parse_program(src).unwrap());
        assert!(!report.terminating);
    }

    #[test]
    fn nonrecursive_growth_is_fine() {
        // Growing a path once in a non-recursive rule terminates trivially.
        let src = "r1: twohop(@S,D,P) :- link(@S,Z,C1), link(@Z,D,C2), P = f_initPath(S,D).";
        let report = check_safety(&parse_program(src).unwrap());
        assert!(report.terminating);
        assert!(report.is_safe());
    }

    #[test]
    fn aggregate_head_variables_must_be_bound() {
        let src = "r1: best(@S,min<C>) :- q(@S).";
        let report = check_safety(&parse_program(src).unwrap());
        assert!(!report.range_restricted);
    }

    #[test]
    fn display_summarises_findings() {
        let report = check_safety(&parse_program(UNSAFE_REACHABILITY).unwrap());
        let text = report.to_string();
        assert!(text.contains("terminating=false"));
        assert!(text.contains("NR2"));
    }
}
