//! Built-in function library.
//!
//! The paper augments core Datalog with "a limited set of function calls ...
//! including boolean predicates, arithmetic computations and simple list
//! manipulation" (§3.1). This module implements every function used by the
//! paper's example programs plus a few generic helpers, and lets callers
//! register additional functions (the extensibility hook mentioned in §6).
//!
//! | Paper | Here | Meaning |
//! |---|---|---|
//! | `f_concatPath(link(S,D,C), nil)` | `f_initPath(S,D)` | one-hop path `[S,D]` |
//! | `f_concatPath(link(S,Z,C), P2)` | `f_prepend(S,P2)` | prepend link source |
//! | `f_concatPath(P1, link(Z,D,C))` | `f_append(P1,D)` | append link destination |
//! | `f_concatPath(P1, P2)` | `f_concat(P1,P2)` | splice two path vectors |
//! | `f_inPath(P,S)` | `f_inPath(P,S)` | membership test |
//! | `f_head(P)` / `f_tail(P)` / `f_isEmpty(P)` | same | list inspection |
//! | `f_compute(C1,C2)` | `f_sum` / `f_min` / `f_max` | metric composition |
//! | `f_size(P)` | `f_size(P)` | number of nodes in path |

use crate::ast::ArithOp;
use dr_types::{Cost, Error, PathVector, Result, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Signature of a built-in function: total over well-typed inputs, returning
/// an [`Error::Eval`] on arity or type mismatch.
pub type BuiltinFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A registry of built-in functions, preloaded with the paper's `f_*`
/// library. Cloning shares the registrations.
#[derive(Clone)]
pub struct Builtins {
    funcs: HashMap<String, BuiltinFn>,
}

impl std::fmt::Debug for Builtins {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.funcs.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("Builtins").field("functions", &names).finish()
    }
}

fn arity_err(name: &str, want: usize, got: usize) -> Error {
    Error::eval(format!("{name}: expected {want} arguments, got {got}"))
}

fn type_err(name: &str, want: &str, got: &Value) -> Error {
    Error::eval(format!("{name}: expected {want}, got {} ({got})", got.type_name()))
}

fn need_path<'a>(name: &str, v: &'a Value) -> Result<&'a PathVector> {
    v.as_path().ok_or_else(|| type_err(name, "path", v))
}

fn need_node(name: &str, v: &Value) -> Result<dr_types::NodeId> {
    v.as_node().ok_or_else(|| type_err(name, "node", v))
}

fn need_cost(name: &str, v: &Value) -> Result<Cost> {
    v.as_cost().ok_or_else(|| type_err(name, "cost", v))
}

impl Default for Builtins {
    fn default() -> Self {
        Builtins::standard()
    }
}

impl Builtins {
    /// An empty registry with no functions at all (useful for testing the
    /// "core Datalog" polynomial fragment of §6).
    pub fn empty() -> Builtins {
        Builtins { funcs: HashMap::new() }
    }

    /// The standard library used by the paper's programs.
    pub fn standard() -> Builtins {
        let mut b = Builtins::empty();

        b.register("f_initPath", |args| {
            if args.len() != 2 {
                return Err(arity_err("f_initPath", 2, args.len()));
            }
            let s = need_node("f_initPath", &args[0])?;
            let d = need_node("f_initPath", &args[1])?;
            Ok(Value::Path(PathVector::from_nodes(vec![s, d])))
        });

        b.register("f_prepend", |args| {
            if args.len() != 2 {
                return Err(arity_err("f_prepend", 2, args.len()));
            }
            let n = need_node("f_prepend", &args[0])?;
            let p = need_path("f_prepend", &args[1])?;
            Ok(Value::Path(p.prepend(n)))
        });

        b.register("f_append", |args| {
            if args.len() != 2 {
                return Err(arity_err("f_append", 2, args.len()));
            }
            let p = need_path("f_append", &args[0])?;
            let n = need_node("f_append", &args[1])?;
            Ok(Value::Path(p.append(n)))
        });

        b.register("f_concat", |args| {
            if args.len() != 2 {
                return Err(arity_err("f_concat", 2, args.len()));
            }
            let a = need_path("f_concat", &args[0])?;
            let c = need_path("f_concat", &args[1])?;
            Ok(Value::Path(a.join(c)))
        });

        b.register("f_inPath", |args| {
            if args.len() != 2 {
                return Err(arity_err("f_inPath", 2, args.len()));
            }
            let p = need_path("f_inPath", &args[0])?;
            let n = need_node("f_inPath", &args[1])?;
            Ok(Value::Bool(p.contains(n)))
        });

        b.register("f_head", |args| {
            if args.len() != 1 {
                return Err(arity_err("f_head", 1, args.len()));
            }
            let p = need_path("f_head", &args[0])?;
            p.head().map(Value::Node).ok_or_else(|| Error::eval("f_head: empty path"))
        });

        b.register("f_tail", |args| {
            if args.len() != 1 {
                return Err(arity_err("f_tail", 1, args.len()));
            }
            let p = need_path("f_tail", &args[0])?;
            Ok(Value::Path(p.tail()))
        });

        b.register("f_last", |args| {
            if args.len() != 1 {
                return Err(arity_err("f_last", 1, args.len()));
            }
            let p = need_path("f_last", &args[0])?;
            p.last().map(Value::Node).ok_or_else(|| Error::eval("f_last: empty path"))
        });

        b.register("f_isEmpty", |args| {
            if args.len() != 1 {
                return Err(arity_err("f_isEmpty", 1, args.len()));
            }
            let p = need_path("f_isEmpty", &args[0])?;
            Ok(Value::Bool(p.is_empty()))
        });

        b.register("f_size", |args| {
            if args.len() != 1 {
                return Err(arity_err("f_size", 1, args.len()));
            }
            let p = need_path("f_size", &args[0])?;
            Ok(Value::Int(p.len() as i64))
        });

        b.register("f_hops", |args| {
            if args.len() != 1 {
                return Err(arity_err("f_hops", 1, args.len()));
            }
            let p = need_path("f_hops", &args[0])?;
            Ok(Value::Int(p.hops() as i64))
        });

        b.register("f_hasCycle", |args| {
            if args.len() != 1 {
                return Err(arity_err("f_hasCycle", 1, args.len()));
            }
            let p = need_path("f_hasCycle", &args[0])?;
            Ok(Value::Bool(p.has_cycle()))
        });

        b.register("f_sum", |args| {
            if args.len() != 2 {
                return Err(arity_err("f_sum", 2, args.len()));
            }
            let a = need_cost("f_sum", &args[0])?;
            let c = need_cost("f_sum", &args[1])?;
            Ok(Value::Cost(a + c))
        });

        b.register("f_min", |args| {
            if args.len() != 2 {
                return Err(arity_err("f_min", 2, args.len()));
            }
            let a = need_cost("f_min", &args[0])?;
            let c = need_cost("f_min", &args[1])?;
            Ok(Value::Cost(a.min(c)))
        });

        b.register("f_max", |args| {
            if args.len() != 2 {
                return Err(arity_err("f_max", 2, args.len()));
            }
            let a = need_cost("f_max", &args[0])?;
            let c = need_cost("f_max", &args[1])?;
            Ok(Value::Cost(a.max(c)))
        });

        b
    }

    /// Register (or replace) a function under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.funcs.insert(name.into(), Arc::new(f));
    }

    /// True when `name` is a registered function.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(name)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True when no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// The registered implementation of `name`, if any. Compiled rule plans
    /// resolve their function table through this once per evaluation, so the
    /// join loop never hashes a function name.
    pub fn get(&self, name: &str) -> Option<&BuiltinFn> {
        self.funcs.get(name)
    }

    /// Invoke a function by name.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value> {
        match self.get(name) {
            Some(f) => f(args),
            None => Err(Error::eval(format!("unknown function {name}"))),
        }
    }

    /// Evaluate a binary arithmetic operator on two values. Costs and
    /// integers mix freely; the result is a [`Value::Cost`] unless both
    /// operands are integers.
    pub fn arith(op: ArithOp, lhs: &Value, rhs: &Value) -> Result<Value> {
        if let (Some(a), Some(b)) = (lhs.as_int(), rhs.as_int()) {
            let r = match op {
                ArithOp::Add => a.checked_add(b),
                ArithOp::Sub => a.checked_sub(b),
                ArithOp::Mul => a.checked_mul(b),
                ArithOp::Div => {
                    if b == 0 {
                        return Err(Error::eval("integer division by zero"));
                    }
                    a.checked_div(b)
                }
            };
            return r.map(Value::Int).ok_or_else(|| Error::eval("integer arithmetic overflow"));
        }
        let a = lhs.as_cost().ok_or_else(|| type_err("arithmetic", "numeric", lhs))?;
        let b = rhs.as_cost().ok_or_else(|| type_err("arithmetic", "numeric", rhs))?;
        let r = match op {
            ArithOp::Add => a.value() + b.value(),
            ArithOp::Sub => a.value() - b.value(),
            ArithOp::Mul => a.value() * b.value(),
            ArithOp::Div => {
                if b.value() == 0.0 {
                    return Err(Error::eval("division by zero"));
                }
                a.value() / b.value()
            }
        };
        Ok(Value::Cost(Cost::new(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_types::NodeId;

    fn n(i: u32) -> Value {
        Value::Node(NodeId::new(i))
    }

    fn path(ids: &[u32]) -> Value {
        Value::Path(PathVector::from_nodes(ids.iter().map(|&i| NodeId::new(i)).collect()))
    }

    #[test]
    fn standard_library_is_populated() {
        let b = Builtins::standard();
        for f in [
            "f_initPath",
            "f_prepend",
            "f_append",
            "f_concat",
            "f_inPath",
            "f_head",
            "f_tail",
            "f_last",
            "f_isEmpty",
            "f_size",
            "f_hops",
            "f_hasCycle",
            "f_sum",
            "f_min",
            "f_max",
        ] {
            assert!(b.contains(f), "missing builtin {f}");
        }
        assert!(!b.is_empty());
        assert!(Builtins::empty().is_empty());
    }

    #[test]
    fn path_construction_functions() {
        let b = Builtins::standard();
        assert_eq!(b.call("f_initPath", &[n(1), n(2)]).unwrap(), path(&[1, 2]));
        assert_eq!(b.call("f_prepend", &[n(0), path(&[1, 2])]).unwrap(), path(&[0, 1, 2]));
        assert_eq!(b.call("f_append", &[path(&[1, 2]), n(3)]).unwrap(), path(&[1, 2, 3]));
        assert_eq!(b.call("f_concat", &[path(&[1, 2]), path(&[2, 3])]).unwrap(), path(&[1, 2, 3]));
    }

    #[test]
    fn path_inspection_functions() {
        let b = Builtins::standard();
        assert_eq!(b.call("f_inPath", &[path(&[1, 2]), n(2)]).unwrap(), Value::Bool(true));
        assert_eq!(b.call("f_inPath", &[path(&[1, 2]), n(5)]).unwrap(), Value::Bool(false));
        assert_eq!(b.call("f_head", &[path(&[4, 5])]).unwrap(), n(4));
        assert_eq!(b.call("f_last", &[path(&[4, 5])]).unwrap(), n(5));
        assert_eq!(b.call("f_tail", &[path(&[4, 5])]).unwrap(), path(&[5]));
        assert_eq!(b.call("f_isEmpty", &[path(&[])]).unwrap(), Value::Bool(true));
        assert_eq!(b.call("f_size", &[path(&[1, 2, 3])]).unwrap(), Value::Int(3));
        assert_eq!(b.call("f_hops", &[path(&[1, 2, 3])]).unwrap(), Value::Int(2));
        assert_eq!(b.call("f_hasCycle", &[path(&[1, 2, 1])]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn head_of_empty_path_is_an_error() {
        let b = Builtins::standard();
        assert!(b.call("f_head", &[path(&[])]).is_err());
        assert!(b.call("f_last", &[path(&[])]).is_err());
    }

    #[test]
    fn cost_functions() {
        let b = Builtins::standard();
        assert_eq!(
            b.call("f_sum", &[Value::from(1.5), Value::from(2.5)]).unwrap(),
            Value::from(4.0)
        );
        assert_eq!(
            b.call("f_min", &[Value::from(1.5), Value::from(2.5)]).unwrap(),
            Value::from(1.5)
        );
        assert_eq!(b.call("f_max", &[Value::from(1.5), Value::Int(3)]).unwrap(), Value::from(3.0));
        assert_eq!(
            b.call("f_sum", &[Value::Cost(Cost::INFINITY), Value::from(1.0)]).unwrap(),
            Value::Cost(Cost::INFINITY)
        );
    }

    #[test]
    fn arity_and_type_errors() {
        let b = Builtins::standard();
        assert!(b.call("f_initPath", &[n(1)]).is_err());
        assert!(b.call("f_prepend", &[path(&[1]), path(&[2])]).is_err());
        assert!(b.call("f_sum", &[n(1), Value::from(1.0)]).is_err());
        assert!(b.call("f_nonexistent", &[]).is_err());
    }

    #[test]
    fn custom_registration_overrides() {
        let mut b = Builtins::standard();
        b.register("f_double", |args| {
            let c = args[0].as_cost().unwrap();
            Ok(Value::Cost(Cost::new(c.value() * 2.0)))
        });
        assert_eq!(b.call("f_double", &[Value::from(2.0)]).unwrap(), Value::from(4.0));
    }

    #[test]
    fn arithmetic_mixes_int_and_cost() {
        assert_eq!(
            Builtins::arith(ArithOp::Add, &Value::Int(1), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Builtins::arith(ArithOp::Add, &Value::Int(1), &Value::from(2.0)).unwrap(),
            Value::from(3.0)
        );
        assert_eq!(
            Builtins::arith(ArithOp::Mul, &Value::from(2.0), &Value::from(3.0)).unwrap(),
            Value::from(6.0)
        );
        assert!(Builtins::arith(ArithOp::Div, &Value::Int(1), &Value::Int(0)).is_err());
        assert!(Builtins::arith(ArithOp::Div, &Value::from(1.0), &Value::from(0.0)).is_err());
        assert!(Builtins::arith(ArithOp::Add, &n(1), &Value::Int(1)).is_err());
    }

    #[test]
    fn subtraction_clamps_costs_at_zero() {
        let r = Builtins::arith(ArithOp::Sub, &Value::from(1.0), &Value::from(5.0)).unwrap();
        assert_eq!(r, Value::Cost(Cost::ZERO));
    }

    #[test]
    fn debug_lists_functions() {
        let b = Builtins::standard();
        let dbg = format!("{b:?}");
        assert!(dbg.contains("f_inPath"));
    }
}
