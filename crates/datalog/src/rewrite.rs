//! Query rewrites and optimization analyses (paper §7).
//!
//! * [`aggregate_selections`] — detect min/max aggregates whose running value
//!   can prune dominated inputs (§7.1). The descriptors it returns are used
//!   both by the centralized [`crate::eval::Evaluator`] and by the
//!   distributed processor in `dr-core` to suppress derivation *and*
//!   shipping of paths that cannot win.
//! * [`magic_sets`] — restrict a query to the nodes reachable from a set of
//!   source constants by adding a `magicSources` filter relation and a
//!   propagation rule, mirroring rules MRR1–MRR5 (§7.2).
//! * [`flip_recursion`] — convert between right-recursive (distance-vector
//!   style) and left-recursive (dynamic-source-routing style) forms of a
//!   transitive-closure rule (§5.3, §7.2). The paper's key observation is
//!   that these protocols "differ only in a simple, traditional query
//!   optimization decision: the order in which a query's predicates are
//!   evaluated".

use crate::ast::{AggFunc, Atom, Expr, Head, Literal, Program, Rule, Term};
use dr_types::{NodeId, RelId, Value};

/// A detected aggregate-selection opportunity.
///
/// `bestPathCost(@S,D,min<C>) :- path(@S,D,P,C)` yields an `AggSelection`
/// with `input_relation = path`, `group_fields = [0,1]`, `value_field = 3`,
/// and `func = Min`: while evaluating, any `path` tuple whose cost is worse
/// than the best already known for its `(S,D)` group can be discarded.
///
/// Relations are carried as interned [`RelId`]s — the admission check runs
/// once per derived tuple, so it must never compare relation names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSelection {
    /// The relation whose tuples feed the aggregate (the rule's single body
    /// atom), interned.
    pub input_relation: RelId,
    /// Field positions of the input relation forming the group-by key.
    pub group_fields: Vec<usize>,
    /// Field position of the input relation carrying the aggregated value.
    pub value_field: usize,
    /// The aggregate function (only `min`/`max` generate selections).
    pub func: AggFunc,
    /// The relation defined by the aggregate rule (e.g. `bestPathCost`),
    /// interned.
    pub output_relation: RelId,
}

/// Detect aggregate selections: aggregate rules whose body is a single
/// positive atom and whose aggregate function is monotonic (`min`/`max`).
pub fn aggregate_selections(program: &Program) -> Vec<AggSelection> {
    let mut out = Vec::new();
    for rule in &program.rules {
        let Some((func, agg_var, _)) = rule.head.aggregate() else { continue };
        if !func.is_monotonic_selection() {
            continue;
        }
        // Body must be a single positive atom (plus optional constraints that
        // do not change groupings).
        let atoms = rule.positive_atoms();
        if atoms.len() != 1 {
            continue;
        }
        let atom = atoms[0];
        // The aggregated variable must be a field of that atom.
        let Some(value_field) = atom.terms.iter().position(|t| t.as_var() == Some(agg_var)) else {
            continue;
        };
        // Each plain head variable must also be a field of the atom.
        let mut group_fields = Vec::new();
        let mut ok = true;
        for hv in rule.head.plain_variables() {
            match atom.terms.iter().position(|t| t.as_var() == Some(hv)) {
                Some(pos) => group_fields.push(pos),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        out.push(AggSelection {
            input_relation: RelId::intern(&atom.relation),
            group_fields,
            value_field,
            func,
            output_relation: RelId::intern(&rule.head.relation),
        });
    }
    out
}

/// Options for the magic-sets rewrite.
#[derive(Debug, Clone, Default)]
pub struct MagicSetsOptions {
    /// Name of the magic relation to introduce (default `magicSources`).
    pub magic_relation: Option<String>,
    /// When true, also add the propagation rule
    /// `magicSources(@D) :- magicSources(@S), link(@S,D,C).` (rule MRR1),
    /// which extends the filter to every node reachable from the seeds.
    pub propagate_over_links: bool,
    /// Name of the link relation used for propagation (default `link`).
    pub link_relation: Option<String>,
}

/// Apply the magic-sets rewrite of §7.2 to `program`.
///
/// Every rule defining `target_relation` gets an additional body atom
/// `magicSources(@S)` where `S` is the rule head's location variable, and a
/// seed fact is added for every node in `sources`. With
/// `propagate_over_links`, rule MRR1 is added so the computation is
/// restricted to the part of the network reachable from the seeds.
pub fn magic_sets(
    program: &Program,
    target_relation: &str,
    sources: &[NodeId],
    options: &MagicSetsOptions,
) -> Program {
    let magic = options.magic_relation.clone().unwrap_or_else(|| "magicSources".to_string());
    let link_rel = options.link_relation.clone().unwrap_or_else(|| "link".to_string());

    let mut out = Program::new();

    // Seed facts (MRR4, MRR5).
    for s in sources {
        out.rules.push(Rule::new(
            Head::plain(magic.clone(), vec![Term::Const(Value::Node(*s))], Some(0)),
            vec![],
        ));
    }

    // Propagation rule (MRR1): magicSources(@D) :- magicSources(@S), link(@S,D,C).
    if options.propagate_over_links {
        out.rules.push(Rule::named(
            "MAGIC_PROP",
            Head::plain(magic.clone(), vec![Term::var("MagicD")], Some(0)),
            vec![
                Literal::Atom(Atom::with_location(magic.clone(), vec![Term::var("MagicS")], 0)),
                Literal::Atom(Atom::with_location(
                    link_rel,
                    vec![Term::var("MagicS"), Term::var("MagicD"), Term::var("MagicC")],
                    0,
                )),
            ],
        ));
    }

    // Filtered copies of the original rules (MRR2, MRR3).
    for rule in &program.rules {
        let mut new_rule = rule.clone();
        if rule.head.relation == target_relation && !rule.is_fact() {
            if let Some(loc_var) = rule.head.location_var() {
                let filter =
                    Literal::Atom(Atom::with_location(magic.clone(), vec![Term::var(loc_var)], 0));
                new_rule.body.insert(0, filter);
                if let Some(name) = &mut new_rule.name {
                    *name = format!("{name}_magic");
                }
            }
        }
        out.rules.push(new_rule);
    }
    out.queries = program.queries.clone();
    out.key_pragmas = program.key_pragmas.clone();
    out
}

/// Direction of recursion for a transitive-closure rule (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecursionDirection {
    /// `path(S,D) :- link(S,Z), path(Z,D)` — the recursive atom is to the
    /// *right* of the link; execution resembles distance-vector / path-vector
    /// protocols (paths grow from the destination toward the source).
    Right,
    /// `path(S,D) :- path(S,Z), link(Z,D)` — the recursive atom is to the
    /// *left*; execution resembles dynamic source routing (paths grow from
    /// the source outward).
    Left,
}

/// Classify a recursive two-atom rule as left- or right-recursive.
///
/// Returns `None` when the rule does not have exactly one occurrence of its
/// own head relation and one other atom.
pub fn recursion_direction(rule: &Rule) -> Option<RecursionDirection> {
    let atoms = rule.positive_atoms();
    if atoms.len() != 2 {
        return None;
    }
    let head_rel = &rule.head.relation;
    let first_recursive = atoms[0].relation == *head_rel;
    let second_recursive = atoms[1].relation == *head_rel;
    match (first_recursive, second_recursive) {
        (true, false) => Some(RecursionDirection::Left),
        (false, true) => Some(RecursionDirection::Right),
        _ => None,
    }
}

/// Flip a right-recursive transitive-closure rule into the equivalent
/// left-recursive form, or vice versa (§5.3 / §7.2's left-right recursion
/// rewrite).
///
/// The rewrite recognizes the paper's canonical shape
///
/// ```text
/// path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
///                   C = C1 + C2, P = f_prepend(S,P2), ...
/// ```
///
/// and produces
///
/// ```text
/// path(@D,S,...)-style left recursion:
/// path(S,D,P,C)  :- path(@S,Z,P1,C1), link(@Z,D,C2),
///                   C = C1 + C2, P = f_append(P1,D), ...
/// ```
///
/// Only the atom order, the join variable rôles, and the path-construction
/// function change; cost arithmetic and extra constraints are preserved.
/// Returns `None` when the rule does not match the canonical shape.
pub fn flip_recursion(rule: &Rule) -> Option<Rule> {
    let dir = recursion_direction(rule)?;
    let atoms = rule.positive_atoms();
    let (link_atom, path_atom) = match dir {
        RecursionDirection::Right => (atoms[0].clone(), atoms[1].clone()),
        RecursionDirection::Left => (atoms[1].clone(), atoms[0].clone()),
    };
    if link_atom.arity() < 2 || path_atom.arity() < 2 {
        return None;
    }

    // Variable names used in the original rule.
    let s = rule.head.terms.first()?.as_plain()?.as_var()?.to_string();
    let d = rule.head.terms.get(1)?.as_plain()?.as_var()?.to_string();

    let constraints: Vec<Literal> =
        rule.body.iter().filter(|l| !matches!(l, Literal::Atom(_))).cloned().collect();

    match dir {
        RecursionDirection::Right => {
            // link(@S,Z,C1), path(@Z,D,P2,C2)  →  path(@S,Z,P1,C1), link(@Z,D,C2)
            let z = link_atom.terms.get(1)?.as_var()?.to_string();
            let c1 = link_atom.terms.get(2).and_then(Term::as_var).map(str::to_string);
            let c2 = path_atom.terms.get(3).and_then(Term::as_var).map(str::to_string);
            let p2 = path_atom.terms.get(2).and_then(Term::as_var).map(str::to_string);

            let new_path = Atom::with_location(
                path_atom.relation.clone(),
                vec![
                    Term::var(s.clone()),
                    Term::var(z.clone()),
                    Term::var(p2.clone().unwrap_or_else(|| "P1".into())),
                    Term::var(c1.clone().unwrap_or_else(|| "C1".into())),
                ],
                0,
            );
            let new_link = Atom::with_location(
                link_atom.relation.clone(),
                vec![
                    Term::var(z),
                    Term::var(d.clone()),
                    Term::var(c2.clone().unwrap_or_else(|| "C2".into())),
                ],
                0,
            );
            let mut body = vec![Literal::Atom(new_path), Literal::Atom(new_link)];
            for c in constraints {
                body.push(rewrite_path_constraint(c, &s, &d, true));
            }
            Some(Rule {
                name: rule.name.clone().map(|n| format!("{n}_left")),
                head: rule.head.clone(),
                body,
            })
        }
        RecursionDirection::Left => {
            // path(@S,Z,P1,C1), link(@Z,D,C2)  →  link(@S,Z,C1), path(@Z,D,P2,C2)
            let z = path_atom.terms.get(1)?.as_var()?.to_string();
            let p1 = path_atom.terms.get(2).and_then(Term::as_var).map(str::to_string);
            let c1 = path_atom.terms.get(3).and_then(Term::as_var).map(str::to_string);
            let c2 = link_atom.terms.get(2).and_then(Term::as_var).map(str::to_string);

            let new_link = Atom::with_location(
                link_atom.relation.clone(),
                vec![
                    Term::var(s.clone()),
                    Term::var(z.clone()),
                    Term::var(c1.clone().unwrap_or_else(|| "C1".into())),
                ],
                0,
            );
            let new_path = Atom::with_location(
                path_atom.relation.clone(),
                vec![
                    Term::var(z),
                    Term::var(d.clone()),
                    Term::var(p1.clone().unwrap_or_else(|| "P2".into())),
                    Term::var(c2.clone().unwrap_or_else(|| "C2".into())),
                ],
                0,
            );
            let mut body = vec![Literal::Atom(new_link), Literal::Atom(new_path)];
            for c in constraints {
                body.push(rewrite_path_constraint(c, &s, &d, false));
            }
            Some(Rule {
                name: rule.name.clone().map(|n| format!("{n}_right")),
                head: rule.head.clone(),
                body,
            })
        }
    }
}

/// Rewrite path-sensitive constraints when flipping recursion.
///
/// * The path-construction assignment `f_prepend(S, P2)` (right recursion
///   builds the path by prepending the source) becomes `f_append(P2, D)`
///   (left recursion appends the newly reached destination), and vice versa.
/// * The cycle check `f_inPath(P2, S) = false` (right recursion: the source
///   must not already be on the suffix) becomes `f_inPath(P2, D) = false`
///   (left recursion: the new destination must not already be on the
///   prefix), and vice versa.
///
/// Other constraints pass through unchanged.
fn rewrite_path_constraint(lit: Literal, s: &str, d: &str, to_left: bool) -> Literal {
    match lit {
        Literal::Assign { var, expr: Expr::Call { func, args } } => {
            let (new_func, new_args) = match (func.as_str(), to_left) {
                ("f_prepend", true) => (
                    "f_append".to_string(),
                    vec![args.get(1).cloned().unwrap_or(Expr::var("P1")), Expr::var(d)],
                ),
                ("f_append", false) => (
                    "f_prepend".to_string(),
                    vec![Expr::var(s), args.first().cloned().unwrap_or(Expr::var("P2"))],
                ),
                _ => (func, args),
            };
            Literal::Assign { var, expr: Expr::Call { func: new_func, args: new_args } }
        }
        Literal::Compare { op, lhs: Expr::Call { func, args }, rhs } if func == "f_inPath" => {
            let path_arg = args.first().cloned().unwrap_or(Expr::var("P2"));
            let member = if to_left { Expr::var(d) } else { Expr::var(s) };
            Literal::Compare { op, lhs: Expr::Call { func, args: vec![path_arg, member] }, rhs }
        }
        other => other,
    }
}

/// Convenience: flip every flippable recursive rule in a program.
pub fn flip_program_recursion(program: &Program) -> Program {
    let mut out = program.clone();
    for rule in &mut out.rules {
        if let Some(flipped) = flip_recursion(rule) {
            *rule = flipped;
        }
    }
    out
}

/// Build the head terms of a standard 4-ary path head `path(@S,D,P,C)`.
/// Shared helper for protocol builders and tests.
pub fn path_head(relation: &str) -> Head {
    Head::plain(
        relation,
        vec![Term::var("S"), Term::var("D"), Term::var("P"), Term::var("C")],
        Some(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const BEST_PATH: &str = r#"
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        Query: bestPath(@S,D,P,C).
    "#;

    #[test]
    fn detects_min_aggregate_selection() {
        let p = parse_program(BEST_PATH).unwrap();
        let sels = aggregate_selections(&p);
        assert_eq!(sels.len(), 1);
        let s = &sels[0];
        assert_eq!(s.input_relation, RelId::intern("path"));
        assert_eq!(s.output_relation, RelId::intern("bestPathCost"));
        assert_eq!(s.group_fields, vec![0, 1]);
        assert_eq!(s.value_field, 3);
        assert_eq!(s.func, AggFunc::Min);
    }

    #[test]
    fn count_aggregates_do_not_generate_selections() {
        let p = parse_program("r1: degree(@S,count<D>) :- link(@S,D,C).").unwrap();
        assert!(aggregate_selections(&p).is_empty());
    }

    #[test]
    fn multi_atom_aggregate_bodies_are_skipped() {
        let p = parse_program("r1: best(@S,D,min<C>) :- path(@S,D,P,C), permit(@S,D).").unwrap();
        assert!(aggregate_selections(&p).is_empty());
    }

    #[test]
    fn max_aggregates_generate_selections() {
        let p = parse_program("r1: widest(@S,D,max<B>) :- path(@S,D,P,B).").unwrap();
        let sels = aggregate_selections(&p);
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].func, AggFunc::Max);
    }

    #[test]
    fn magic_sets_adds_seeds_filter_and_propagation() {
        let p = parse_program(BEST_PATH).unwrap();
        let opts = MagicSetsOptions { propagate_over_links: true, ..Default::default() };
        let rewritten = magic_sets(&p, "path", &[NodeId::new(1), NodeId::new(2)], &opts);

        // 2 seeds + 1 propagation + 4 original rules = 7
        assert_eq!(rewritten.rules.len(), 7);
        // Seed facts come first.
        assert!(rewritten.rules[0].is_fact());
        assert!(rewritten.rules[1].is_fact());
        assert_eq!(rewritten.rules[0].head.relation, "magicSources");
        // Propagation rule present.
        assert!(rewritten.rule("MAGIC_PROP").is_some());
        // path rules got the filter atom prepended.
        let nr2 = rewritten.rule("NR2_magic").unwrap();
        assert_eq!(nr2.body[0].as_atom().unwrap().relation, "magicSources");
        // Non-target rules untouched.
        let bpr1 = rewritten.rule("BPR1").unwrap();
        assert_eq!(bpr1.body.len(), 1);
        // queries preserved
        assert_eq!(rewritten.queries.len(), 1);
    }

    #[test]
    fn magic_rules_plan_filter_first() {
        let p = parse_program(BEST_PATH).unwrap();
        let opts = MagicSetsOptions { propagate_over_links: true, ..Default::default() };
        let rewritten = magic_sets(&p, "path", &[NodeId::new(1)], &opts);
        let nr2 = rewritten.rule("NR2_magic").unwrap();
        let plan = crate::eval::RuleEval::new(nr2);
        // The 1-ary magic filter leads (fewest unbound variables), then
        // each subsequent atom is probed on the location variable it shares
        // with the atoms joined before it — the rewrite's restriction is
        // applied before any path tuple is enumerated.
        assert_eq!(plan.plan().atom_order(), &[0, 1, 2]);
        assert_eq!(plan.plan().probes(), &[None, Some(0), Some(0)]);
        assert_eq!(plan.plan().to_string(), "magicSources ⋈ link[0] ⋈ path[0]");
    }

    #[test]
    fn magic_sets_respects_custom_relation_name() {
        let p = parse_program(BEST_PATH).unwrap();
        let opts = MagicSetsOptions {
            magic_relation: Some("magicDsts".into()),
            propagate_over_links: false,
            ..Default::default()
        };
        let rewritten = magic_sets(&p, "path", &[NodeId::new(5)], &opts);
        assert_eq!(rewritten.rules[0].head.relation, "magicDsts");
        assert!(rewritten.rule("MAGIC_PROP").is_none());
    }

    #[test]
    fn recursion_direction_classification() {
        let p = parse_program(BEST_PATH).unwrap();
        let nr2 = p.rule("NR2").unwrap();
        assert_eq!(recursion_direction(nr2), Some(RecursionDirection::Right));
        let nr1 = p.rule("NR1").unwrap();
        assert_eq!(recursion_direction(nr1), None);

        let dsr = parse_program(
            r#"
            DSR1: path(@S,D,P,C) :- path(@S,Z,P1,C1), link(@Z,D,C2),
                  C = C1 + C2, P = f_append(P1,D).
            "#,
        )
        .unwrap();
        assert_eq!(recursion_direction(dsr.rule("DSR1").unwrap()), Some(RecursionDirection::Left));
    }

    #[test]
    fn flip_right_to_left_changes_atom_order_and_path_function() {
        let p = parse_program(BEST_PATH).unwrap();
        let nr2 = p.rule("NR2").unwrap();
        let flipped = flip_recursion(nr2).unwrap();
        assert_eq!(recursion_direction(&flipped), Some(RecursionDirection::Left));
        assert_eq!(flipped.name.as_deref(), Some("NR2_left"));
        // path-construction now appends
        assert!(flipped.body.iter().any(|l| matches!(
            l,
            Literal::Assign { expr: Expr::Call { func, .. }, .. } if func == "f_append"
        )));
        // Cost arithmetic survives.
        assert!(flipped
            .body
            .iter()
            .any(|l| matches!(l, Literal::Assign { var, .. } if var == "C")));
    }

    #[test]
    fn flip_is_involutive_on_direction() {
        let p = parse_program(BEST_PATH).unwrap();
        let nr2 = p.rule("NR2").unwrap();
        let left = flip_recursion(nr2).unwrap();
        let right_again = flip_recursion(&left).unwrap();
        assert_eq!(recursion_direction(&right_again), Some(RecursionDirection::Right));
        assert!(right_again.body.iter().any(|l| matches!(
            l,
            Literal::Assign { expr: Expr::Call { func, .. }, .. } if func == "f_prepend"
        )));
    }

    #[test]
    fn flip_program_recursion_flips_only_recursive_rules() {
        let p = parse_program(BEST_PATH).unwrap();
        let flipped = flip_program_recursion(&p);
        assert_eq!(flipped.rules.len(), p.rules.len());
        // NR1 untouched, NR2 flipped.
        assert_eq!(flipped.rules[0], p.rules[0]);
        assert_ne!(flipped.rules[1], p.rules[1]);
    }

    #[test]
    fn flipped_rule_computes_same_paths() {
        use crate::database::Database;
        use crate::eval::Evaluator;
        use dr_types::Tuple;

        // Evaluate the right-recursive and the flipped (left-recursive)
        // programs on the same network; path sets must agree.
        let right = parse_program(BEST_PATH).unwrap();
        let left = flip_program_recursion(&right);

        let mut db_r = Database::new();
        let mut db_l = Database::new();
        for (s, d) in [(0u32, 1u32), (1, 2), (2, 3), (0, 3)] {
            for db in [&mut db_r, &mut db_l] {
                db.insert(Tuple::new(
                    "link",
                    vec![
                        Value::Node(NodeId::new(s)),
                        Value::Node(NodeId::new(d)),
                        Value::from(1.0),
                    ],
                ));
            }
        }
        Evaluator::new(right).unwrap().run(&mut db_r).unwrap();
        Evaluator::new(left).unwrap().run(&mut db_l).unwrap();
        assert_eq!(db_r.sorted_tuples("path"), db_l.sorted_tuples("path"));
        assert_eq!(db_r.sorted_tuples("bestPath"), db_l.sorted_tuples("bestPath"));
    }

    #[test]
    fn path_head_helper() {
        let h = path_head("path");
        assert_eq!(h.relation, "path");
        assert_eq!(h.arity(), 4);
        assert_eq!(h.location, Some(0));
    }
}
