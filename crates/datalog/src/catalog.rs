//! Relation catalog: schema information about every table a program touches.
//!
//! The catalog records, per relation:
//! * whether it is a **base** table (fed from outside the query processor,
//!   like `link` or `excludeNode`) or a **derived** table (defined by rules),
//! * the position of its **location attribute** (which field holds the node
//!   address that stores the tuple — the paper's underlined field),
//! * its **primary key** (the paper's "unique key", used for keyed upserts
//!   during incremental maintenance, §8).

use crate::ast::Program;
use dr_types::{Error, RelId, Result};
use std::collections::HashMap;

/// Schema information for one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationInfo {
    /// Interned relation id (the catalog produces interned programs: every
    /// relation a program touches is interned when its schema is recorded).
    pub id: RelId,
    /// Arity (number of fields), when known.
    pub arity: Option<usize>,
    /// Position of the location attribute (defaults to 0: the first field,
    /// matching every example in the paper).
    pub location_field: usize,
    /// Field positions forming the primary key. Empty means "all fields"
    /// (pure set semantics).
    pub key_fields: Vec<usize>,
    /// True when the relation is a base table (never defined by a rule head).
    pub is_base: bool,
}

impl RelationInfo {
    /// A derived relation with default location (field 0) and set semantics.
    pub fn derived(name: impl Into<RelId>) -> RelationInfo {
        RelationInfo {
            id: name.into(),
            arity: None,
            location_field: 0,
            key_fields: Vec::new(),
            is_base: false,
        }
    }

    /// A base relation with default location (field 0) and set semantics.
    pub fn base(name: impl Into<RelId>) -> RelationInfo {
        RelationInfo { is_base: true, ..RelationInfo::derived(name) }
    }

    /// The relation's name (resolved from the interned id).
    pub fn name(&self) -> &'static str {
        self.id.name()
    }

    /// The key fields to use for upserts: the declared primary key, or all
    /// fields when none is declared.
    pub fn effective_key(&self, arity: usize) -> Vec<usize> {
        if self.key_fields.is_empty() {
            (0..arity).collect()
        } else {
            self.key_fields.clone()
        }
    }
}

/// The catalog: interned [`RelId`] → [`RelationInfo`]. Name-based entry
/// points accept `impl Into<RelId>`, so both `catalog.get("link")` and
/// `catalog.get(rel_id)` work; runtime lookups on hot paths pass the id.
///
/// Building a catalog *interns the program*: every relation the program
/// names gets its dense id, and all schema lookups afterwards are by id.
///
/// ```
/// use dr_datalog::{parse_program, Catalog};
/// use dr_types::RelId;
///
/// let program = parse_program(
///     r#"
///     #key(path, 0, 1, 2).
///     NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
///     Query: path(@S,D,P,C).
///     "#,
/// )?;
/// let catalog = Catalog::from_program(&program)?;
///
/// // Schema lookups work by name or by interned id — same entry.
/// let path = RelId::intern("path");
/// assert_eq!(catalog.get("path"), catalog.get(path));
/// assert_eq!(catalog.key_fields(path, 4), vec![0, 1, 2]);
/// assert!(catalog.is_base("link"));
/// assert!(!catalog.is_base(path));
/// # Ok::<(), dr_types::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: HashMap<RelId, RelationInfo>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Build a catalog from a program: derived vs base classification from
    /// rule heads, location fields from `@` annotations, keys from
    /// `#key(...)` pragmas.
    ///
    /// Conflicting location annotations for the same relation are an error —
    /// the paper stores each relation at exactly one address attribute.
    pub fn from_program(program: &Program) -> Result<Catalog> {
        let mut cat = Catalog::new();
        let derived = program.derived_relations();

        for rel in program.all_relations() {
            let info = if derived.contains(rel) {
                RelationInfo::derived(rel)
            } else {
                RelationInfo::base(rel)
            };
            cat.relations.insert(info.id, info);
        }

        // Record arity + location annotations from heads and body atoms.
        let mut observe = |rel: &str, arity: usize, loc: Option<usize>| -> Result<()> {
            let info = cat
                .relations
                .get_mut(&RelId::intern(rel))
                .expect("all_relations covers every atom relation");
            match info.arity {
                None => info.arity = Some(arity),
                Some(a) if a != arity => {
                    return Err(Error::planning(format!(
                        "relation {rel} used with arity {arity} and {a}"
                    )))
                }
                Some(_) => {}
            }
            if let Some(l) = loc {
                if info.arity.map(|a| l >= a).unwrap_or(false) {
                    return Err(Error::planning(format!(
                        "relation {rel}: location field {l} out of range"
                    )));
                }
                info.location_field = l;
            }
            Ok(())
        };

        for rule in &program.rules {
            observe(&rule.head.relation, rule.head.arity(), rule.head.location)?;
            for lit in &rule.body {
                if let crate::ast::Literal::Atom(a) | crate::ast::Literal::NegAtom(a) = lit {
                    observe(&a.relation, a.arity(), a.location)?;
                }
            }
        }
        for q in &program.queries {
            observe(&q.relation, q.arity(), q.location)?;
        }

        for (rel, keys) in &program.key_pragmas {
            let id = RelId::intern(rel);
            let info = cat.relations.entry(id).or_insert_with(|| RelationInfo::base(id));
            if let Some(a) = info.arity {
                if keys.iter().any(|&k| k >= a) {
                    return Err(Error::planning(format!(
                        "relation {rel}: key field out of range (arity {a})"
                    )));
                }
            }
            info.key_fields = keys.clone();
        }

        Ok(cat)
    }

    /// Declare or replace a relation's schema explicitly.
    pub fn declare(&mut self, info: RelationInfo) {
        self.relations.insert(info.id, info);
    }

    /// Set the primary key of a relation (creating a base entry if missing).
    pub fn set_key(&mut self, relation: impl Into<RelId>, key_fields: Vec<usize>) {
        let id = relation.into();
        self.relations.entry(id).or_insert_with(|| RelationInfo::base(id)).key_fields = key_fields;
    }

    /// Look up a relation by name or interned id.
    pub fn get(&self, relation: impl Into<RelId>) -> Option<&RelationInfo> {
        self.relations.get(&relation.into())
    }

    /// The location field of a relation (default 0 when unknown).
    pub fn location_field(&self, relation: impl Into<RelId>) -> usize {
        self.get(relation).map(|i| i.location_field).unwrap_or(0)
    }

    /// The primary key of a relation given a concrete arity.
    pub fn key_fields(&self, relation: impl Into<RelId>, arity: usize) -> Vec<usize> {
        match self.get(relation) {
            Some(info) => info.effective_key(arity),
            None => (0..arity).collect(),
        }
    }

    /// True when the relation is a base table.
    pub fn is_base(&self, relation: impl Into<RelId>) -> bool {
        self.get(relation).map(|i| i.is_base).unwrap_or(true)
    }

    /// Iterate over all relations in the catalog, in name order (the dense
    /// id order is an interning artifact; names keep output deterministic).
    pub fn relations(&self) -> impl Iterator<Item = &RelationInfo> {
        let mut infos: Vec<&RelationInfo> = self.relations.values().collect();
        infos.sort_unstable_by_key(|i| i.name());
        infos.into_iter()
    }

    /// Number of relations known to the catalog.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const NR: &str = r#"
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        #key(path, 0, 1, 2).
        Query: path(@S,D,P,C).
    "#;

    #[test]
    fn classifies_base_and_derived() {
        let p = parse_program(NR).unwrap();
        let c = Catalog::from_program(&p).unwrap();
        assert!(c.is_base("link"));
        assert!(!c.is_base("path"));
        assert_eq!(c.get("path").unwrap().arity, Some(4));
        assert_eq!(c.get("link").unwrap().arity, Some(3));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn records_location_and_keys() {
        let p = parse_program(NR).unwrap();
        let c = Catalog::from_program(&p).unwrap();
        assert_eq!(c.location_field("path"), 0);
        assert_eq!(c.location_field("link"), 0);
        assert_eq!(c.key_fields("path", 4), vec![0, 1, 2]);
        // link has no pragma: all fields are the key
        assert_eq!(c.key_fields("link", 3), vec![0, 1, 2]);
        // unknown relation defaults
        assert_eq!(c.key_fields("mystery", 2), vec![0, 1]);
        assert!(c.is_base("mystery"));
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let bad = r#"
            r1: p(@X,Y) :- q(@X,Y).
            r2: p(@X,Y,Z) :- q(@X,Y), s(@Y,Z).
        "#;
        let p = parse_program(bad).unwrap();
        assert!(Catalog::from_program(&p).is_err());
    }

    #[test]
    fn key_pragma_out_of_range_is_rejected() {
        let bad = r#"
            r1: p(@X,Y) :- q(@X,Y).
            #key(p, 0, 5).
        "#;
        let p = parse_program(bad).unwrap();
        assert!(Catalog::from_program(&p).is_err());
    }

    #[test]
    fn manual_declarations() {
        let mut c = Catalog::new();
        c.declare(RelationInfo {
            id: RelId::intern("nextHop"),
            arity: Some(4),
            location_field: 0,
            key_fields: vec![0, 1],
            is_base: false,
        });
        c.set_key("link", vec![0, 1]);
        assert_eq!(c.key_fields("nextHop", 4), vec![0, 1]);
        assert_eq!(c.key_fields("link", 3), vec![0, 1]);
        assert_eq!(c.relations().count(), 2);
    }

    #[test]
    fn effective_key_defaults_to_all_fields() {
        let info = RelationInfo::derived("p");
        assert_eq!(info.effective_key(3), vec![0, 1, 2]);
        let keyed = RelationInfo { key_fields: vec![1], ..RelationInfo::derived("p") };
        assert_eq!(keyed.effective_key(3), vec![1]);
    }
}
