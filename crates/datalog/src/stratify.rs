//! Stratification of programs with negation and aggregation.
//!
//! Negated body atoms and aggregate heads are non-monotonic: they may only
//! read relations that are *completely* evaluated. We therefore assign every
//! relation to a stratum so that
//!
//! * positive dependencies stay within the same or a lower stratum, and
//! * negative/aggregate dependencies come from a strictly lower stratum.
//!
//! Programs that need a relation to depend negatively on itself (directly or
//! through a cycle) are rejected — they have no stratified model.

use crate::ast::{Literal, Program};
use dr_types::{Error, Result};
use std::collections::BTreeMap;

/// A stratification: relation → stratum index, plus the rule evaluation
/// order grouped by stratum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    /// Stratum of every relation mentioned in the program.
    pub relation_stratum: BTreeMap<String, usize>,
    /// For each stratum, the indices (into `program.rules`) of the rules
    /// whose head belongs to that stratum.
    pub strata_rules: Vec<Vec<usize>>,
}

impl Stratification {
    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata_rules.len()
    }

    /// Stratum of a relation (base relations default to stratum 0).
    pub fn stratum_of(&self, relation: &str) -> usize {
        self.relation_stratum.get(relation).copied().unwrap_or(0)
    }
}

/// Dependency edge polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Polarity {
    Positive,
    /// Negated atom or aggregate head: requires a strictly lower stratum.
    Negative,
}

/// Compute a stratification for `program`, or an error when the program is
/// not stratifiable.
pub fn stratify(program: &Program) -> Result<Stratification> {
    // Collect dependency edges: (body_rel, head_rel, polarity).
    let mut edges: Vec<(String, String, Polarity)> = Vec::new();
    for rule in &program.rules {
        let head = rule.head.relation.clone();
        let head_is_agg = rule.head.has_aggregate();
        for lit in &rule.body {
            match lit {
                Literal::Atom(a) => {
                    let pol = if head_is_agg { Polarity::Negative } else { Polarity::Positive };
                    edges.push((a.relation.clone(), head.clone(), pol));
                }
                Literal::NegAtom(a) => {
                    edges.push((a.relation.clone(), head.clone(), Polarity::Negative));
                }
                Literal::Compare { .. } | Literal::Assign { .. } => {}
            }
        }
    }

    // Initialise every mentioned relation at stratum 0.
    let mut stratum: BTreeMap<String, usize> = BTreeMap::new();
    for rel in program.all_relations() {
        stratum.insert(rel.to_string(), 0);
    }

    // Bellman-Ford style relaxation. With R relations, any valid
    // stratification needs at most R strata; more iterations imply a
    // negative cycle (not stratifiable).
    let max_rounds = stratum.len() + 1;
    for round in 0..=max_rounds {
        let mut changed = false;
        for (body, head, pol) in &edges {
            let b = *stratum.get(body).unwrap_or(&0);
            let needed = match pol {
                Polarity::Positive => b,
                Polarity::Negative => b + 1,
            };
            let h = stratum.entry(head.clone()).or_insert(0);
            if *h < needed {
                *h = needed;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == max_rounds {
            return Err(Error::safety(
                "program is not stratifiable: a relation depends negatively on itself \
                 (through negation or aggregation)",
            ));
        }
    }

    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    let mut strata_rules: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (i, rule) in program.rules.iter().enumerate() {
        let s = *stratum.get(&rule.head.relation).unwrap_or(&0);
        strata_rules[s].push(i);
    }

    Ok(Stratification { relation_stratum: stratum, strata_rules })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn positive_recursion_is_single_stratum() {
        let p = parse_program(
            r#"
            NR1: path(@S,D,C) :- link(@S,D,C).
            NR2: path(@S,D,C) :- link(@S,Z,C1), path(@Z,D,C2), C = C1 + C2.
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.num_strata(), 1);
        assert_eq!(s.stratum_of("path"), 0);
        assert_eq!(s.stratum_of("link"), 0);
        assert_eq!(s.strata_rules[0].len(), 2);
    }

    #[test]
    fn aggregates_get_a_higher_stratum() {
        let p = parse_program(
            r#"
            NR1: path(@S,D,C) :- link(@S,D,C).
            NR2: path(@S,D,C) :- link(@S,Z,C1), path(@Z,D,C2), C = C1 + C2.
            BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,C).
            BPR2: bestPath(@S,D,C) :- bestPathCost(@S,D,C), path(@S,D,C).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of("path"), 0);
        assert_eq!(s.stratum_of("bestPathCost"), 1);
        assert_eq!(s.stratum_of("bestPath"), 1);
        assert_eq!(s.num_strata(), 2);
        // rules NR1, NR2 in stratum 0; BPR1, BPR2 in stratum 1
        assert_eq!(s.strata_rules[0], vec![0, 1]);
        assert_eq!(s.strata_rules[1], vec![2, 3]);
    }

    #[test]
    fn negation_forces_strictly_lower_stratum() {
        let p = parse_program(
            r#"
            r1: reachable(@S,D) :- link(@S,D,C).
            r2: reachable(@S,D) :- link(@S,Z,C), reachable(@Z,D).
            r3: unreachable(@S,D) :- node(@S), node(@D), !reachable(@S,D).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of("reachable"), 0);
        assert_eq!(s.stratum_of("unreachable"), 1);
    }

    #[test]
    fn negative_self_dependency_is_rejected() {
        let p = parse_program("r1: p(@X) :- q(@X), !p(@X).").unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn negative_cycle_through_two_relations_is_rejected() {
        let p = parse_program(
            r#"
            r1: p(@X) :- q(@X), !r(@X).
            r2: r(@X) :- q(@X), !p(@X).
            "#,
        )
        .unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn aggregate_over_own_output_is_rejected() {
        // shortest(@S,D,min<C>) depends on itself through path2 — not stratifiable.
        let p = parse_program(
            r#"
            r1: shortest(@S,D,min<C>) :- path2(@S,D,C).
            r2: path2(@S,D,C) :- shortest(@S,D,C).
            "#,
        )
        .unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn chained_aggregates_stack_strata() {
        let p = parse_program(
            r#"
            r1: a(@X,min<C>) :- base(@X,C).
            r2: b(@X,min<C>) :- a(@X,C).
            r3: c(@X,min<C>) :- b(@X,C).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of("a"), 1);
        assert_eq!(s.stratum_of("b"), 2);
        assert_eq!(s.stratum_of("c"), 3);
        assert_eq!(s.num_strata(), 4);
        assert!(s.strata_rules[0].is_empty());
    }

    #[test]
    fn base_relations_default_to_stratum_zero() {
        let p = parse_program("r1: p(@X) :- q(@X).").unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of("q"), 0);
        assert_eq!(s.stratum_of("unknown_relation"), 0);
    }
}
