//! Rule evaluation and the centralized semi-naïve fixpoint engine.
//!
//! Two layers live here:
//!
//! * [`RuleEval`] evaluates a *single* rule against any [`RelationSource`]
//!   (index-probing nested-loop join, eager constraint application,
//!   wildcard negation). A `RuleEval` is a *compiled plan*: it is built
//!   once per rule — choosing, for every body atom, the probe field whose
//!   stored secondary index the join will hit — and reused across calls,
//!   so per-call work is only the join itself: no re-gathering of
//!   candidate tuples, no per-call hash building, no cloning of relation
//!   contents. The distributed processor in `dr-core` reuses this layer
//!   directly: each network node evaluates its localized rules against its
//!   local tables through the same plans.
//! * [`Evaluator`] runs a whole program to fixpoint on a [`Database`] using
//!   stratified semi-naïve evaluation (paper §3.3's "semi-naïve fixpoint
//!   evaluation"), with optional naïve mode (for the ablation benchmark) and
//!   the aggregate-selections optimization of §7.1.

use crate::ast::{AggFunc, Atom, Expr, Head, HeadTerm, Literal, Program, Rule, Term};
use crate::builtins::Builtins;
use crate::catalog::Catalog;
use crate::database::{Database, Scan};
use crate::rewrite::{aggregate_selections, AggSelection};
use crate::stratify::{stratify, Stratification};
use dr_types::{Error, RelId, Result, Tuple, Value};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Bindings
// ---------------------------------------------------------------------------

/// A variable substitution built up while evaluating a rule body.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    map: HashMap<String, Value>,
}

impl Bindings {
    /// An empty substitution.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// The value bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.map.get(var)
    }

    /// Bind `var` to `value`; returns false (and leaves the binding intact)
    /// when `var` is already bound to a *different* value.
    pub fn bind(&mut self, var: &str, value: Value) -> bool {
        match self.map.get(var) {
            Some(existing) => *existing == value,
            None => {
                self.map.insert(var.to_string(), value);
                true
            }
        }
    }

    /// True when `var` has a binding.
    pub fn is_bound(&self, var: &str) -> bool {
        self.map.contains_key(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Evaluate an expression under a substitution.
pub fn eval_expr(expr: &Expr, bindings: &Bindings, builtins: &Builtins) -> Result<Value> {
    match expr {
        Expr::Term(Term::Const(v)) => Ok(v.clone()),
        Expr::Term(Term::Var(v)) => {
            bindings.get(v).cloned().ok_or_else(|| Error::eval(format!("unbound variable {v}")))
        }
        Expr::Call { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, bindings, builtins)?);
            }
            builtins.call(func, &vals)
        }
        Expr::BinOp { op, lhs, rhs } => {
            let l = eval_expr(lhs, bindings, builtins)?;
            let r = eval_expr(rhs, bindings, builtins)?;
            Builtins::arith(*op, &l, &r)
        }
    }
}

/// Try to unify an atom's terms against a tuple's fields, extending
/// `bindings`. Returns false on mismatch (bindings may be partially extended;
/// callers clone before attempting).
fn unify_atom(atom: &Atom, tuple: &Tuple, bindings: &mut Bindings) -> bool {
    if atom.arity() != tuple.arity() {
        return false;
    }
    for (term, value) in atom.terms.iter().zip(tuple.fields()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => {
                if !bindings.bind(v, value.clone()) {
                    return false;
                }
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Relation sources
// ---------------------------------------------------------------------------

/// Anything that can supply the current contents of a relation *by
/// reference*. The centralized [`Database`] implements it; so does the
/// local ∪ shared overlay of the distributed processor (which chains two
/// stores without materializing either).
///
/// Relations are addressed by interned [`RelId`] — the join loop probes a
/// source once per candidate binding, so lookups must never hash a name.
pub trait RelationSource {
    /// Borrowing cursor over all tuples currently stored for `relation`.
    fn scan(&self, relation: RelId) -> Scan<'_>;

    /// Borrowing cursor over (at least) the tuples of `relation` whose
    /// `field` equals `value`. Implementations backed by a secondary index
    /// return only the hits; the default falls back to a full scan — the
    /// contract is over-approximation, since join loops re-check the probe
    /// field when unifying.
    fn probe(&self, relation: RelId, field: usize, value: &Value) -> Scan<'_> {
        let _ = (field, value);
        self.scan(relation)
    }
}

impl RelationSource for Database {
    fn scan(&self, relation: RelId) -> Scan<'_> {
        Database::scan(self, relation)
    }

    fn probe(&self, relation: RelId, field: usize, value: &Value) -> Scan<'_> {
        Database::probe(self, relation, field, value)
    }
}

// ---------------------------------------------------------------------------
// Single-rule evaluation
// ---------------------------------------------------------------------------

/// Compiled evaluator for a single rule.
///
/// Construction analyses the rule once: positive atoms are split from
/// constraints and negations, and every atom gets a *probe field* — the
/// first argument that is a constant or a variable bound by earlier atoms —
/// whose stored secondary index the join will hit at run time. Evaluation
/// then borrows tuples straight out of the [`RelationSource`] through
/// [`Scan`] cursors; nothing is gathered, re-hashed, or cloned per call.
#[derive(Debug, Clone)]
pub struct RuleEval {
    rule: Rule,
    /// Positive body atoms, in body order (delta positions refer to these).
    positive: Vec<Atom>,
    /// Interned relation of each positive atom (compile-time interning:
    /// the join loop addresses sources by id, never by name).
    positive_rels: Vec<RelId>,
    /// Non-atom body literals (assignments and comparisons), in body order.
    constraints: Vec<Literal>,
    /// Per positive atom: the field to probe the stored index with.
    probes: Vec<Option<usize>>,
    /// Negated body atoms, checked once all positive atoms are joined.
    neg_atoms: Vec<Atom>,
    /// Interned relation of each negated atom.
    neg_rels: Vec<RelId>,
    /// Per negated atom: the field to probe with (constant or a variable
    /// the positive part binds).
    neg_probes: Vec<Option<usize>>,
    /// Interned relation the head derives into.
    head_rel: RelId,
}

/// Choose the probe field of `atom`: the first argument position holding a
/// constant or a variable in `bound_vars`.
fn choose_probe(atom: &Atom, bound_vars: &[&str]) -> Option<usize> {
    for (pos, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(_) => return Some(pos),
            Term::Var(v) => {
                if bound_vars.contains(&v.as_str()) {
                    return Some(pos);
                }
            }
        }
    }
    None
}

impl RuleEval {
    /// Compile `rule` into a reusable evaluation plan.
    pub fn new(rule: &Rule) -> RuleEval {
        let positive: Vec<Atom> = rule.positive_atoms().into_iter().cloned().collect();
        let constraints: Vec<Literal> = rule
            .body
            .iter()
            .filter(|l| matches!(l, Literal::Assign { .. } | Literal::Compare { .. }))
            .cloned()
            .collect();
        let neg_atoms: Vec<Atom> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::NegAtom(a) => Some(a.clone()),
                _ => None,
            })
            .collect();

        // Probe fields for positive atoms: variables bound by *earlier*
        // atoms qualify.
        let mut probes = Vec::with_capacity(positive.len());
        let mut bound_vars: Vec<&str> = Vec::new();
        for atom in &positive {
            probes.push(choose_probe(atom, &bound_vars));
            for v in atom.variables() {
                if !bound_vars.contains(&v) {
                    bound_vars.push(v);
                }
            }
        }
        // Negations run after the whole positive part: anything the atoms
        // or assignments bind qualifies as a probe variable.
        for lit in &constraints {
            if let Literal::Assign { var, .. } = lit {
                if !bound_vars.contains(&var.as_str()) {
                    bound_vars.push(var);
                }
            }
        }
        let neg_probes = neg_atoms.iter().map(|a| choose_probe(a, &bound_vars)).collect();

        let positive_rels = positive.iter().map(|a| RelId::intern(&a.relation)).collect();
        let neg_rels = neg_atoms.iter().map(|a| RelId::intern(&a.relation)).collect();
        let head_rel = RelId::intern(&rule.head.relation);
        RuleEval {
            rule: rule.clone(),
            positive,
            positive_rels,
            constraints,
            probes,
            neg_atoms,
            neg_rels,
            neg_probes,
            head_rel,
        }
    }

    /// The rule being evaluated.
    pub fn rule(&self) -> &Rule {
        &self.rule
    }

    /// The positive body atoms, in delta-occurrence order.
    pub fn positive_atoms(&self) -> &[Atom] {
        &self.positive
    }

    /// The interned relation of each positive atom, in delta-occurrence
    /// order (parallel to [`RuleEval::positive_atoms`]).
    pub fn positive_rels(&self) -> &[RelId] {
        &self.positive_rels
    }

    /// The interned relation of each negated body atom.
    pub fn neg_rels(&self) -> &[RelId] {
        &self.neg_rels
    }

    /// The interned relation this rule's head derives into.
    pub fn head_rel(&self) -> RelId {
        self.head_rel
    }

    /// The `(relation, field)` pairs this plan probes — the secondary
    /// indexes a store should declare so every probe is index-served.
    pub fn probe_fields(&self) -> Vec<(RelId, usize)> {
        self.positive_rels
            .iter()
            .zip(&self.probes)
            .chain(self.neg_rels.iter().zip(&self.neg_probes))
            .filter_map(|(&rel, probe)| probe.map(|pos| (rel, pos)))
            .collect()
    }

    /// Evaluate the rule against `source`.
    ///
    /// `delta` optionally replaces the tuples of the `i`-th **positive atom
    /// occurrence** (0-based, counting only positive atoms) with a delta set
    /// — this is the semi-naïve trick: the occurrence ranges over newly
    /// derived tuples only.
    ///
    /// Returns *raw head tuples*: for aggregate heads the aggregate position
    /// carries the ungrouped value of the aggregated variable; use
    /// [`apply_aggregate`] to group.
    pub fn evaluate<S: RelationSource>(
        &self,
        builtins: &Builtins,
        source: &S,
        delta: Option<(usize, &[Tuple])>,
    ) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        let mut bindings = Bindings::new();
        let mut applied = vec![false; self.constraints.len()];
        // The delta slice has no stored index; when its atom has a probe
        // field, hash it once per call so the join probes it in O(hits)
        // instead of re-walking the slice per outer binding.
        let delta_index: Option<HashMap<&Value, Vec<usize>>> = delta.and_then(|(di, dt)| {
            let pos = self.probes.get(di).copied().flatten()?;
            let mut idx: HashMap<&Value, Vec<usize>> = HashMap::new();
            for (i, t) in dt.iter().enumerate() {
                if let Some(v) = t.field(pos) {
                    idx.entry(v).or_default().push(i);
                }
            }
            Some(idx)
        });
        // Constraints that are evaluable with no atoms at all (e.g. facts
        // with assigns) are applied up front.
        if self.apply_ready_constraints(builtins, &mut applied, &mut bindings)? {
            self.join(
                builtins,
                source,
                delta,
                delta_index.as_ref(),
                0,
                &applied,
                &bindings,
                &mut out,
            )?;
        }
        Ok(out)
    }

    /// Apply every not-yet-applied constraint whose variables are all bound.
    /// Returns false if a constraint evaluated to false (dead branch).
    fn apply_ready_constraints(
        &self,
        builtins: &Builtins,
        applied: &mut [bool],
        bindings: &mut Bindings,
    ) -> Result<bool> {
        let mut progress = true;
        while progress {
            progress = false;
            for (i, lit) in self.constraints.iter().enumerate() {
                if applied[i] {
                    continue;
                }
                match lit {
                    Literal::Assign { var, expr } => {
                        if expr.variables().iter().all(|v| bindings.is_bound(v)) {
                            let val = eval_expr(expr, bindings, builtins)?;
                            applied[i] = true;
                            progress = true;
                            if !bindings.bind(var, val) {
                                return Ok(false);
                            }
                        }
                    }
                    Literal::Compare { op, lhs, rhs } => {
                        let ready = lhs.variables().iter().all(|v| bindings.is_bound(v))
                            && rhs.variables().iter().all(|v| bindings.is_bound(v));
                        if ready {
                            let l = eval_expr(lhs, bindings, builtins)?;
                            let r = eval_expr(rhs, bindings, builtins)?;
                            applied[i] = true;
                            progress = true;
                            if !op.eval(&l, &r) {
                                return Ok(false);
                            }
                        }
                    }
                    other => unreachable!("{other} is not a constraint"),
                }
            }
        }
        Ok(true)
    }

    #[allow(clippy::too_many_arguments)]
    fn join<S: RelationSource>(
        &self,
        builtins: &Builtins,
        source: &S,
        delta: Option<(usize, &[Tuple])>,
        delta_index: Option<&HashMap<&Value, Vec<usize>>>,
        depth: usize,
        applied: &[bool],
        bindings: &Bindings,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        if depth == self.positive.len() {
            return self.finish(builtins, source, applied, bindings, out);
        }
        let atom = &self.positive[depth];
        let probe_value = self.probes[depth].and_then(|pos| match &atom.terms[pos] {
            Term::Const(c) => Some((pos, c)),
            Term::Var(v) => bindings.get(v).map(|val| (pos, val)),
        });
        // Candidate tuples: the delta slice (through its per-call index
        // when the probe value is bound) for the delta occurrence, a stored
        // index probe otherwise, full scan as the fallback. All variants
        // borrow — nothing is materialized.
        let candidates: Scan<'_> = match delta {
            Some((di, dt)) if di == depth => match (probe_value, delta_index) {
                (Some((_, value)), Some(idx)) => match idx.get(value) {
                    Some(ids) => Scan::Hits { tuples: dt, ids: ids.iter() },
                    None => Scan::Empty,
                },
                _ => Scan::Slice(dt.iter()),
            },
            _ => match probe_value {
                Some((pos, value)) => source.probe(self.positive_rels[depth], pos, value),
                None => source.scan(self.positive_rels[depth]),
            },
        };
        for tuple in candidates {
            // Cheap pre-check before cloning the bindings: constants and
            // already-bound variables must match.
            if !atom_prematch(atom, tuple, bindings) {
                continue;
            }
            let mut next = bindings.clone();
            if !unify_atom(atom, tuple, &mut next) {
                continue;
            }
            let mut next_applied = applied.to_vec();
            if !self.apply_ready_constraints(builtins, &mut next_applied, &mut next)? {
                continue;
            }
            self.join(builtins, source, delta, delta_index, depth + 1, &next_applied, &next, out)?;
        }
        Ok(())
    }

    /// All positive atoms joined: apply remaining constraints, check
    /// negations against the source, then emit the head tuple.
    fn finish<S: RelationSource>(
        &self,
        builtins: &Builtins,
        source: &S,
        applied: &[bool],
        bindings: &Bindings,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        let mut applied = applied.to_vec();
        let mut bindings = bindings.clone();
        if !self.apply_ready_constraints(builtins, &mut applied, &mut bindings)? {
            return Ok(());
        }
        // Any constraint left unapplied means some variable never got
        // bound: the rule is unsafe.
        for (i, lit) in self.constraints.iter().enumerate() {
            if !applied[i] {
                return Err(Error::eval(format!(
                    "rule {}: constraint `{lit}` has unbound variables",
                    self.rule.name.as_deref().unwrap_or("<unnamed>")
                )));
            }
        }
        for ((atom, &rel), probe) in self.neg_atoms.iter().zip(&self.neg_rels).zip(&self.neg_probes)
        {
            if negation_has_match(atom, rel, *probe, &bindings, source) {
                return Ok(());
            }
        }
        out.push(head_tuple_from_bindings(
            &self.rule.head,
            self.head_rel,
            &bindings,
            self.rule.name.as_deref(),
        )?);
        Ok(())
    }
}

/// Quick rejection test before bindings are cloned for a candidate tuple:
/// every constant and every already-bound variable of `atom` must match the
/// tuple. Unbound variables are ignored (they bind during full unification).
fn atom_prematch(atom: &Atom, tuple: &Tuple, bindings: &Bindings) -> bool {
    if atom.arity() != tuple.arity() {
        return false;
    }
    for (term, value) in atom.terms.iter().zip(tuple.fields()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => {
                if let Some(bound) = bindings.get(v) {
                    if bound != value {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Evaluate `rule` against `source` with optional semi-naïve `delta`,
/// handling negated atoms by consulting `source`.
///
/// This compiles a throwaway [`RuleEval`] plan; callers on hot paths (the
/// [`Evaluator`], the distributed processor) compile once and reuse.
pub fn evaluate_rule<S: RelationSource>(
    rule: &Rule,
    builtins: &Builtins,
    source: &S,
    delta: Option<(usize, &[Tuple])>,
) -> Result<Vec<Tuple>> {
    RuleEval::new(rule).evaluate(builtins, source, delta)
}

fn negation_has_match<S: RelationSource>(
    atom: &Atom,
    rel: RelId,
    probe: Option<usize>,
    bindings: &Bindings,
    source: &S,
) -> bool {
    let probe_value = probe.and_then(|pos| match &atom.terms[pos] {
        Term::Const(c) => Some((pos, c)),
        Term::Var(v) => bindings.get(v).map(|val| (pos, val)),
    });
    let candidates = match probe_value {
        Some((pos, value)) => source.probe(rel, pos, value),
        None => source.scan(rel),
    };
    'outer: for t in candidates {
        if t.arity() != atom.arity() {
            continue;
        }
        for (term, value) in atom.terms.iter().zip(t.fields()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        continue 'outer;
                    }
                }
                Term::Var(v) => {
                    if let Some(bound) = bindings.get(v) {
                        if bound != value {
                            continue 'outer;
                        }
                    }
                    // unbound variable: wildcard
                }
            }
        }
        return true;
    }
    false
}

/// Construct a head tuple from bindings; aggregate positions carry the raw
/// value of the aggregated variable. The head relation arrives pre-interned
/// so no name is hashed per derived tuple.
fn head_tuple_from_bindings(
    head: &Head,
    head_rel: RelId,
    bindings: &Bindings,
    rule_name: Option<&str>,
) -> Result<Tuple> {
    let mut fields = Vec::with_capacity(head.terms.len());
    for term in &head.terms {
        let value = match term {
            HeadTerm::Plain(Term::Const(c)) => c.clone(),
            HeadTerm::Plain(Term::Var(v)) | HeadTerm::Agg(_, v) => {
                bindings.get(v).cloned().ok_or_else(|| {
                    Error::eval(format!(
                        "rule {}: head variable {v} is not bound by the body",
                        rule_name.unwrap_or("<unnamed>")
                    ))
                })?
            }
        };
        fields.push(value);
    }
    Ok(Tuple::from_rel(head_rel, fields))
}

/// Group raw head tuples of an aggregate rule and compute the aggregate.
///
/// `head` must contain exactly one aggregate term; plain head positions form
/// the group-by key. `head_rel` is the head relation's pre-interned id
/// (compiled plans carry it as [`RuleEval::head_rel`]), so per-batch calls
/// never touch the intern table.
pub fn apply_aggregate(head: &Head, head_rel: RelId, raw: &[Tuple]) -> Result<Vec<Tuple>> {
    let (func, _, agg_pos) = head
        .aggregate()
        .ok_or_else(|| Error::eval("apply_aggregate called on a non-aggregate head"))?;

    let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    for t in raw {
        let mut key = Vec::with_capacity(t.arity() - 1);
        for (i, v) in t.fields().iter().enumerate() {
            if i != agg_pos {
                key.push(v.clone());
            }
        }
        let agg_val = t
            .field(agg_pos)
            .cloned()
            .ok_or_else(|| Error::eval("aggregate position missing in raw tuple"))?;
        groups.entry(key).or_default().push(agg_val);
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, values) in groups {
        let agg_value = match func {
            AggFunc::Min => values
                .iter()
                .cloned()
                .min_by(|a, b| a.compare_numeric(b))
                .ok_or_else(|| Error::eval("empty aggregate group"))?,
            AggFunc::Max => values
                .iter()
                .cloned()
                .max_by(|a, b| a.compare_numeric(b))
                .ok_or_else(|| Error::eval("empty aggregate group"))?,
            AggFunc::Count => Value::Int(values.len() as i64),
            AggFunc::Sum => {
                let mut acc = dr_types::Cost::ZERO;
                for v in &values {
                    acc = acc
                        + v.as_cost().ok_or_else(|| Error::eval("sum over non-numeric value"))?;
                }
                Value::Cost(acc)
            }
        };
        // Reassemble fields in head order.
        let mut fields = Vec::with_capacity(head.terms.len());
        let mut key_iter = key.into_iter();
        for (i, _) in head.terms.iter().enumerate() {
            if i == agg_pos {
                fields.push(agg_value.clone());
            } else {
                fields
                    .push(key_iter.next().ok_or_else(|| Error::eval("group key arity mismatch"))?);
            }
        }
        out.push(Tuple::from_rel(head_rel, fields));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Whole-program evaluator
// ---------------------------------------------------------------------------

/// Configuration for the centralized evaluator.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Use semi-naïve evaluation (true, the default) or naïve re-evaluation
    /// of every rule each iteration (for the ablation benchmark).
    pub semi_naive: bool,
    /// Enable the aggregate-selections optimization of paper §7.1: tuples
    /// that cannot improve a downstream `min`/`max` aggregate are pruned as
    /// soon as they are derived.
    pub aggregate_selections: bool,
    /// Hard cap on fixpoint iterations per stratum; exceeded means the query
    /// does not terminate on this input (paper §6's unsafe queries).
    pub max_iterations: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { semi_naive: true, aggregate_selections: false, max_iterations: 100_000 }
    }
}

/// Statistics from one evaluator run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Total fixpoint iterations across all strata.
    pub iterations: usize,
    /// Number of rule evaluations performed.
    pub rule_firings: usize,
    /// Number of new tuples added to the database.
    pub tuples_derived: usize,
    /// Number of tuples suppressed by aggregate selections.
    pub tuples_pruned: usize,
    /// Number of strata evaluated.
    pub strata: usize,
}

/// The centralized stratified semi-naïve evaluator.
#[derive(Debug, Clone)]
pub struct Evaluator {
    program: Program,
    catalog: Catalog,
    stratification: Stratification,
    builtins: Builtins,
    config: EvalConfig,
    agg_selections: Vec<AggSelection>,
    /// One compiled plan per program rule (same indexing as
    /// `program.rules`), built once at construction and reused by every
    /// [`Evaluator::run`].
    compiled: Vec<RuleEval>,
}

impl Evaluator {
    /// Build an evaluator with default configuration and the standard
    /// builtin library.
    pub fn new(program: Program) -> Result<Evaluator> {
        Evaluator::with_config(program, EvalConfig::default())
    }

    /// Build an evaluator with a custom configuration.
    pub fn with_config(program: Program, config: EvalConfig) -> Result<Evaluator> {
        let catalog = Catalog::from_program(&program)?;
        let stratification = stratify(&program)?;
        let agg_selections = aggregate_selections(&program);
        let compiled = program.rules.iter().map(RuleEval::new).collect();
        Ok(Evaluator {
            program,
            catalog,
            stratification,
            builtins: Builtins::standard(),
            config,
            agg_selections,
            compiled,
        })
    }

    /// Replace the builtin function library (e.g. to register custom metric
    /// composition functions before running).
    pub fn set_builtins(&mut self, builtins: Builtins) {
        self.builtins = builtins;
    }

    /// The catalog derived from the program.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Run the program to fixpoint on `db`. Base tables must already be
    /// populated; facts from the program are inserted automatically.
    pub fn run(&self, db: &mut Database) -> Result<EvalStats> {
        let mut stats =
            EvalStats { strata: self.stratification.num_strata(), ..Default::default() };

        // Declare keys from pragmas so derived relations honour upserts.
        for (rel, keys) in &self.program.key_pragmas {
            db.declare_key(rel, keys.clone());
        }
        // Declare the secondary indexes the compiled plans will probe, so
        // every join hits an incrementally-maintained index instead of
        // re-hashing relation contents per rule firing.
        for plan in &self.compiled {
            for (rel, field) in plan.probe_fields() {
                db.declare_index(rel, field);
            }
        }

        // Insert ground facts.
        for rule in &self.program.rules {
            if rule.is_fact() {
                let t = head_tuple_from_bindings(
                    &rule.head,
                    RelId::intern(&rule.head.relation),
                    &Bindings::new(),
                    rule.name.as_deref(),
                )?;
                if db.insert(t).added {
                    stats.tuples_derived += 1;
                }
            }
        }

        // Track best-so-far per aggregate-selection group.
        let mut best: HashMap<(RelId, Vec<Value>), Value> = HashMap::new();

        for stratum_rules in &self.stratification.strata_rules {
            let rules: Vec<&RuleEval> = stratum_rules
                .iter()
                .map(|&i| &self.compiled[i])
                .filter(|c| !c.rule().is_fact())
                .collect();
            if rules.is_empty() {
                continue;
            }
            let (agg_rules, normal_rules): (Vec<&RuleEval>, Vec<&RuleEval>) =
                rules.iter().partition(|c| c.rule().head.has_aggregate());

            // Aggregate rules read only lower strata: evaluate once.
            for plan in &agg_rules {
                stats.rule_firings += 1;
                let raw = plan.evaluate(&self.builtins, db, None)?;
                for t in apply_aggregate(&plan.rule().head, plan.head_rel(), &raw)? {
                    if db.insert(t).added {
                        stats.tuples_derived += 1;
                    }
                }
            }

            // Fixpoint over the stratum's ordinary rules.
            self.fixpoint(&normal_rules, db, &mut best, &mut stats)?;
        }
        Ok(stats)
    }

    fn fixpoint(
        &self,
        rules: &[&RuleEval],
        db: &mut Database,
        best: &mut HashMap<(RelId, Vec<Value>), Value>,
        stats: &mut EvalStats,
    ) -> Result<()> {
        if rules.is_empty() {
            return Ok(());
        }
        // Which relations are derived by this stratum (candidates for deltas).
        let stratum_derived: Vec<RelId> = rules.iter().map(|c| c.head_rel()).collect();

        // Iteration 0: evaluate every rule in full.
        let mut delta: HashMap<RelId, Vec<Tuple>> = HashMap::new();
        for plan in rules {
            stats.rule_firings += 1;
            let derived = plan.evaluate(&self.builtins, db, None)?;
            for t in derived {
                self.try_insert(db, t, best, &mut delta, stats);
            }
        }
        stats.iterations += 1;

        // Semi-naïve iterations.
        let mut iterations = 1usize;
        while !delta.is_empty() {
            if iterations >= self.config.max_iterations {
                return Err(Error::eval(format!(
                    "fixpoint did not terminate within {} iterations",
                    self.config.max_iterations
                )));
            }
            iterations += 1;
            stats.iterations += 1;

            let current_delta = std::mem::take(&mut delta);
            for plan in rules {
                if !self.config.semi_naive {
                    // Naïve mode: re-evaluate the whole rule.
                    stats.rule_firings += 1;
                    let derived = plan.evaluate(&self.builtins, db, None)?;
                    for t in derived {
                        self.try_insert(db, t, best, &mut delta, stats);
                    }
                    continue;
                }
                // Semi-naïve: one evaluation per positive occurrence of a
                // relation that changed this round.
                for (i, &rel) in plan.positive_rels().iter().enumerate() {
                    if !stratum_derived.contains(&rel) {
                        continue;
                    }
                    let Some(dt) = current_delta.get(&rel) else { continue };
                    if dt.is_empty() {
                        continue;
                    }
                    stats.rule_firings += 1;
                    let derived = plan.evaluate(&self.builtins, db, Some((i, dt)))?;
                    for t in derived {
                        self.try_insert(db, t, best, &mut delta, stats);
                    }
                }
            }
        }
        Ok(())
    }

    /// Insert a derived tuple, honouring aggregate selections; record it in
    /// the delta map when it is new.
    fn try_insert(
        &self,
        db: &mut Database,
        t: Tuple,
        best: &mut HashMap<(RelId, Vec<Value>), Value>,
        delta: &mut HashMap<RelId, Vec<Tuple>>,
        stats: &mut EvalStats,
    ) {
        if self.config.aggregate_selections {
            if let Some(sel) = self.agg_selections.iter().find(|s| s.input_relation == t.rel()) {
                let key: Vec<Value> =
                    sel.group_fields.iter().filter_map(|&i| t.field(i).cloned()).collect();
                if let Some(value) = t.field(sel.value_field) {
                    let map_key = (t.rel(), key);
                    match best.get(&map_key) {
                        Some(existing) => {
                            // ∞-cost derivations all tie; keeping every one
                            // enumerates the whole path space during §8
                            // poisoning. One ∞ tombstone per group carries
                            // the same information, so further ties
                            // collapse.
                            let tie_at_infinity =
                                value.is_infinite_cost() && existing.is_infinite_cost();
                            let keep = !tie_at_infinity
                                && match sel.func {
                                    AggFunc::Min => {
                                        value.compare_numeric(existing)
                                            != std::cmp::Ordering::Greater
                                    }
                                    AggFunc::Max => {
                                        value.compare_numeric(existing) != std::cmp::Ordering::Less
                                    }
                                    _ => true,
                                };
                            if !keep {
                                stats.tuples_pruned += 1;
                                return;
                            }
                            best.insert(map_key, value.clone());
                        }
                        None => {
                            best.insert(map_key, value.clone());
                        }
                    }
                }
            }
        }
        let outcome = db.insert(t.clone());
        if outcome.added {
            stats.tuples_derived += 1;
            delta.entry(t.rel()).or_default().push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use dr_types::{Cost, NodeId, PathVector};

    fn node(i: u32) -> Value {
        Value::Node(NodeId::new(i))
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new("link", vec![node(s), node(d), Value::from(c)])
    }

    /// The 5-node example network of the paper's Figure 3:
    /// a->b, a->c, b->d, c->d, d->e (undirected in the figure; we insert
    /// both directions where needed by the test).
    fn figure3_links(db: &mut Database) {
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
            db.insert(link(s, d, 1.0));
        }
    }

    const NETWORK_REACHABILITY: &str = r#"
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        Query: path(@S,D,P,C).
    "#;

    const BEST_PATH: &str = r#"
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        Query: bestPath(@S,D,P,C).
    "#;

    #[test]
    fn bindings_bind_and_conflict() {
        let mut b = Bindings::new();
        assert!(b.is_empty());
        assert!(b.bind("X", Value::Int(1)));
        assert!(b.bind("X", Value::Int(1)));
        assert!(!b.bind("X", Value::Int(2)));
        assert!(b.is_bound("X"));
        assert!(!b.is_bound("Y"));
        assert_eq!(b.len(), 1);
        assert_eq!(b.get("X"), Some(&Value::Int(1)));
    }

    #[test]
    fn expr_evaluation() {
        let builtins = Builtins::standard();
        let mut b = Bindings::new();
        b.bind("C1", Value::from(2.0));
        b.bind("C2", Value::from(3.0));
        let e = Expr::BinOp {
            op: crate::ast::ArithOp::Add,
            lhs: Box::new(Expr::var("C1")),
            rhs: Box::new(Expr::var("C2")),
        };
        assert_eq!(eval_expr(&e, &b, &builtins).unwrap(), Value::from(5.0));
        assert!(eval_expr(&Expr::var("missing"), &b, &builtins).is_err());
        let call = Expr::call("f_sum", vec![Expr::var("C1"), Expr::constant(1.0)]);
        assert_eq!(eval_expr(&call, &b, &builtins).unwrap(), Value::from(3.0));
    }

    #[test]
    fn network_reachability_computes_transitive_closure() {
        let program = parse_program(NETWORK_REACHABILITY).unwrap();
        let eval = Evaluator::new(program).unwrap();
        let mut db = Database::new();
        figure3_links(&mut db);
        let stats = eval.run(&mut db).unwrap();
        assert!(stats.tuples_derived > 0);
        assert!(stats.iterations >= 2);

        let paths = db.tuples("path");
        // a (0) reaches e (4) via b-d and c-d: both 3-hop paths must exist.
        let a_to_e: Vec<&Tuple> = paths
            .iter()
            .filter(|t| {
                t.node_at(0) == Some(NodeId::new(0)) && t.node_at(1) == Some(NodeId::new(4))
            })
            .collect();
        assert_eq!(a_to_e.len(), 2, "expected two distinct a->e paths, got {a_to_e:?}");
        for t in &a_to_e {
            assert_eq!(t.field(3).and_then(Value::as_cost), Some(Cost::new(3.0)));
        }
        // no cyclic paths anywhere
        for t in &paths {
            let p = t.field(2).and_then(Value::as_path).unwrap();
            assert!(!p.has_cycle(), "cyclic path derived: {t}");
        }
    }

    #[test]
    fn paper_figure3_tuple_is_derived() {
        // p(a,d,[a,c,d],2) from the worked example in §3.4.
        let program = parse_program(NETWORK_REACHABILITY).unwrap();
        let eval = Evaluator::new(program).unwrap();
        let mut db = Database::new();
        figure3_links(&mut db);
        eval.run(&mut db).unwrap();
        let expected = Tuple::new(
            "path",
            vec![
                node(0),
                node(3),
                Value::Path(PathVector::from_nodes(vec![
                    NodeId::new(0),
                    NodeId::new(2),
                    NodeId::new(3),
                ])),
                Value::from(2.0),
            ],
        );
        assert!(db.contains(&expected));
    }

    #[test]
    fn best_path_selects_minimum_cost() {
        let program = parse_program(BEST_PATH).unwrap();
        let eval = Evaluator::new(program).unwrap();
        let mut db = Database::new();
        // Two routes 0->2: direct cost 10, via 1 cost 2+3=5.
        db.insert(link(0, 2, 10.0));
        db.insert(link(0, 1, 2.0));
        db.insert(link(1, 2, 3.0));
        eval.run(&mut db).unwrap();

        let best: Vec<Tuple> = db
            .tuples("bestPath")
            .into_iter()
            .filter(|t| {
                t.node_at(0) == Some(NodeId::new(0)) && t.node_at(1) == Some(NodeId::new(2))
            })
            .collect();
        assert_eq!(best.len(), 1);
        assert_eq!(best[0].field(3).and_then(Value::as_cost), Some(Cost::new(5.0)));
        let p = best[0].field(2).and_then(Value::as_path).unwrap();
        assert_eq!(p.nodes(), &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn aggregate_selections_prune_but_preserve_best_paths() {
        let program = parse_program(BEST_PATH).unwrap();
        let cfg = EvalConfig { aggregate_selections: true, ..EvalConfig::default() };
        let eval_opt = Evaluator::with_config(parse_program(BEST_PATH).unwrap(), cfg).unwrap();
        let eval_base = Evaluator::new(program).unwrap();

        let mut db_base = Database::new();
        let mut db_opt = Database::new();
        for db in [&mut db_base, &mut db_opt] {
            figure3_links(db);
            // extra expensive parallel edges to give the optimizer something to prune
            db.insert(link(0, 3, 10.0));
            db.insert(link(1, 4, 20.0));
        }
        let s_base = eval_base.run(&mut db_base).unwrap();
        let s_opt = eval_opt.run(&mut db_opt).unwrap();

        assert!(s_opt.tuples_pruned > 0, "optimizer never pruned anything");
        assert!(s_opt.tuples_derived <= s_base.tuples_derived);

        // Best-path answers agree.
        let mut base_best = db_base.sorted_tuples("bestPathCost");
        let mut opt_best = db_opt.sorted_tuples("bestPathCost");
        base_best.sort();
        opt_best.sort();
        assert_eq!(base_best, opt_best);
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let naive_cfg = EvalConfig { semi_naive: false, ..EvalConfig::default() };
        let e_naive =
            Evaluator::with_config(parse_program(NETWORK_REACHABILITY).unwrap(), naive_cfg)
                .unwrap();
        let e_semi = Evaluator::new(parse_program(NETWORK_REACHABILITY).unwrap()).unwrap();

        let mut db1 = Database::new();
        let mut db2 = Database::new();
        figure3_links(&mut db1);
        figure3_links(&mut db2);
        let s1 = e_naive.run(&mut db1).unwrap();
        let s2 = e_semi.run(&mut db2).unwrap();
        assert_eq!(db1.sorted_tuples("path"), db2.sorted_tuples("path"));
        // naive mode performs at least as many rule firings
        assert!(s1.rule_firings >= s2.rule_firings);
    }

    #[test]
    fn non_terminating_query_is_caught() {
        // Reachability *without* the cycle check on a cyclic graph would
        // grow paths forever; the iteration cap turns that into an error.
        let src = r#"
            NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
            NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
                 C = C1 + C2, P = f_prepend(S,P2).
        "#;
        let cfg = EvalConfig { max_iterations: 20, ..EvalConfig::default() };
        let eval = Evaluator::with_config(parse_program(src).unwrap(), cfg).unwrap();
        let mut db = Database::new();
        db.insert(link(0, 1, 1.0));
        db.insert(link(1, 0, 1.0));
        assert!(eval.run(&mut db).is_err());
    }

    #[test]
    fn facts_are_inserted() {
        let src = r#"
            magicSources(#1).
            magicSources(#2).
            out(@S) :- magicSources(@S).
        "#;
        let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
        let mut db = Database::new();
        eval.run(&mut db).unwrap();
        assert_eq!(db.count("magicSources"), 2);
        assert_eq!(db.count("out"), 2);
    }

    #[test]
    fn negation_filters_matches() {
        let src = r#"
            r1: candidate(@S,D) :- link(@S,D,C).
            r2: allowed(@S,D) :- candidate(@S,D), !excludeNode(@S,D).
        "#;
        let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
        let mut db = Database::new();
        db.insert(link(0, 1, 1.0));
        db.insert(link(0, 2, 1.0));
        db.insert(Tuple::new("excludeNode", vec![node(0), node(2)]));
        eval.run(&mut db).unwrap();
        let allowed = db.sorted_tuples("allowed");
        assert_eq!(allowed.len(), 1);
        assert_eq!(allowed[0].node_at(1), Some(NodeId::new(1)));
    }

    #[test]
    fn negation_with_wildcard_fields() {
        // !cache(S, D, P, C) where P and C are not bound elsewhere: the
        // negation fails if *any* cache entry exists for (S, D).
        let src = r#"
            r1: need(@S,D) :- request(@S,D), !cache(@S,D,P,C).
        "#;
        let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
        let mut db = Database::new();
        db.insert(Tuple::new("request", vec![node(1), node(2)]));
        db.insert(Tuple::new("request", vec![node(1), node(3)]));
        db.insert(Tuple::new(
            "cache",
            vec![node(1), node(2), Value::Path(PathVector::nil()), Value::from(1.0)],
        ));
        eval.run(&mut db).unwrap();
        let need = db.sorted_tuples("need");
        assert_eq!(need.len(), 1);
        assert_eq!(need[0].node_at(1), Some(NodeId::new(3)));
    }

    #[test]
    fn comparison_constraints_filter() {
        let src = r#"
            r1: cheap(@S,D,C) :- link(@S,D,C), C < 5.
            r2: notself(@S,D) :- link(@S,D,C), S != D.
        "#;
        let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
        let mut db = Database::new();
        db.insert(link(0, 1, 2.0));
        db.insert(link(0, 2, 9.0));
        db.insert(link(3, 3, 1.0));
        eval.run(&mut db).unwrap();
        assert_eq!(db.count("cheap"), 2); // (0,1) and (3,3)
        assert_eq!(db.count("notself"), 2); // (0,1) and (0,2)
    }

    #[test]
    fn unsafe_rule_reports_error() {
        // Head variable X never bound.
        let src = "r1: out(@X,Y) :- q(@X), Y = Z + 1.";
        let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
        let mut db = Database::new();
        db.insert(Tuple::new("q", vec![node(0)]));
        assert!(eval.run(&mut db).is_err());
    }

    #[test]
    fn apply_aggregate_groups_correctly() {
        let head = Head {
            relation: "shortest".into(),
            terms: vec![
                HeadTerm::Plain(Term::var("S")),
                HeadTerm::Plain(Term::var("D")),
                HeadTerm::Agg(AggFunc::Min, "C".into()),
            ],
            location: Some(0),
        };
        let raw = vec![
            Tuple::new("shortest", vec![node(0), node(1), Value::from(5.0)]),
            Tuple::new("shortest", vec![node(0), node(1), Value::from(3.0)]),
            Tuple::new("shortest", vec![node(0), node(2), Value::from(7.0)]),
        ];
        let mut out = apply_aggregate(&head, RelId::intern(&head.relation), &raw).unwrap();
        out.sort();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].field(2).and_then(Value::as_cost), Some(Cost::new(3.0)));
        assert_eq!(out[1].field(2).and_then(Value::as_cost), Some(Cost::new(7.0)));

        // count and sum
        let head_count = Head {
            relation: "deg".into(),
            terms: vec![HeadTerm::Plain(Term::var("S")), HeadTerm::Agg(AggFunc::Count, "D".into())],
            location: Some(0),
        };
        let raw = vec![
            Tuple::new("deg", vec![node(0), node(1)]),
            Tuple::new("deg", vec![node(0), node(2)]),
        ];
        let out = apply_aggregate(&head_count, RelId::intern(&head_count.relation), &raw).unwrap();
        assert_eq!(out[0].field(1), Some(&Value::Int(2)));

        let head_sum = Head {
            relation: "total".into(),
            terms: vec![HeadTerm::Plain(Term::var("S")), HeadTerm::Agg(AggFunc::Sum, "C".into())],
            location: Some(0),
        };
        let raw = vec![
            Tuple::new("total", vec![node(0), Value::from(1.5)]),
            Tuple::new("total", vec![node(0), Value::from(2.5)]),
        ];
        let out = apply_aggregate(&head_sum, RelId::intern(&head_sum.relation), &raw).unwrap();
        assert_eq!(out[0].field(1).and_then(Value::as_cost), Some(Cost::new(4.0)));
    }

    #[test]
    fn evaluate_rule_with_delta_limits_matches() {
        let program = parse_program(NETWORK_REACHABILITY).unwrap();
        let builtins = Builtins::standard();
        let mut db = Database::new();
        figure3_links(&mut db);
        // Seed with one-hop paths.
        let nr1 = program.rule("NR1").unwrap();
        let one_hop = evaluate_rule(nr1, &builtins, &db, None).unwrap();
        assert_eq!(one_hop.len(), 5);
        for t in &one_hop {
            db.insert(t.clone());
        }
        // Delta = only the path starting at node 3 (d->e).
        let delta: Vec<Tuple> =
            one_hop.iter().filter(|t| t.node_at(0) == Some(NodeId::new(3))).cloned().collect();
        let nr2 = program.rule("NR2").unwrap();
        // positive atom occurrence 1 is `path(@Z,D,P2,C2)`
        let derived = evaluate_rule(nr2, &builtins, &db, Some((1, &delta))).unwrap();
        // Only extensions of d->e are derived: b->d->e and c->d->e.
        assert_eq!(derived.len(), 2);
        for t in &derived {
            assert_eq!(t.node_at(1), Some(NodeId::new(4)));
        }
    }

    #[test]
    fn distance_vector_rules_produce_next_hops() {
        let src = r#"
            #key(nextHop, 0, 1).
            DV1: path(@S,D,D,C) :- link(@S,D,C).
            DV2: path(@S,D,Z,C) :- link(@S,Z,C1), path(@Z,D,W,C2), C = C1 + C2, W != S, C < 100.
            DV3: shortestCost(@S,D,min<C>) :- path(@S,D,Z,C).
            DV4: nextHop(@S,D,Z,C) :- path(@S,D,Z,C), shortestCost(@S,D,C).
            Query: nextHop(@S,D,Z,C).
        "#;
        let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
        let mut db = Database::new();
        // triangle with a shortcut: 0-1 cost 1, 1-2 cost 1, 0-2 cost 5
        for (s, d, c) in
            [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0), (0, 2, 5.0), (2, 0, 5.0)]
        {
            db.insert(link(s, d, c));
        }
        eval.run(&mut db).unwrap();
        let hops: Vec<Tuple> = db
            .tuples("nextHop")
            .into_iter()
            .filter(|t| {
                t.node_at(0) == Some(NodeId::new(0)) && t.node_at(1) == Some(NodeId::new(2))
            })
            .collect();
        assert_eq!(hops.len(), 1, "nextHop should be keyed on (S,D): {hops:?}");
        // best next hop from 0 to 2 is via 1 at cost 2
        assert_eq!(hops[0].node_at(2), Some(NodeId::new(1)));
        assert_eq!(hops[0].field(3).and_then(Value::as_cost), Some(Cost::new(2.0)));
    }
}
