//! Rule evaluation and the centralized semi-naïve fixpoint engine.
//!
//! Two layers live here:
//!
//! * [`RuleEval`] evaluates a *single* rule against any [`RelationSource`].
//!   A `RuleEval` is a *compiled plan*: construction interns the rule's
//!   variables into dense frame slots, orders the body atoms by estimated
//!   join cost (exhaustive permutation search fed by [`CardStats`] when
//!   the caller has them — declared upsert keys compile into at-most-one-
//!   hit key probes), compiles every atom into positional field ops,
//!   schedules each constraint at the earliest join depth where its
//!   variables are bound (constant-only constraints run once per call,
//!   outside the join loop entirely), and lowers the head into slot reads.
//!   Evaluation then runs over a single mutable frame (`Vec<Value>` indexed
//!   by slot) — no per-candidate map cloning, no name hashing — borrowing
//!   candidate tuples straight out of the source through [`Scan`] cursors.
//!   The distributed processor in `dr-core` reuses this layer directly:
//!   each network node evaluates its localized rules against its local
//!   tables through the same plans.
//! * [`Evaluator`] runs a whole program to fixpoint on a [`Database`] using
//!   stratified semi-naïve evaluation (paper §3.3's "semi-naïve fixpoint
//!   evaluation"), with optional naïve mode (for the ablation benchmark) and
//!   the aggregate-selections optimization of §7.1. Each run re-plans the
//!   program's rules against the database's current cardinalities.
//!
//! The old name-keyed [`Bindings`] map survives at the parse/debug boundary
//! and powers [`evaluate_rule_reference`], a deliberately simple reference
//! implementation the property tests check the compiled path against.

use crate::ast::{
    AggFunc, ArithOp, Atom, CompareOp, Expr, Head, HeadTerm, Literal, Program, Rule, Term,
};
use crate::builtins::{BuiltinFn, Builtins};
use crate::catalog::Catalog;
use crate::database::{CardStats, Database, Scan};
use crate::rewrite::{aggregate_selections, AggSelection};
use crate::stratify::{stratify, Stratification};
use dr_types::{Error, RelId, Result, Tuple, TupleKey, Value};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

// ---------------------------------------------------------------------------
// Bindings (parse/debug boundary + reference evaluator)
// ---------------------------------------------------------------------------

/// A variable substitution built up while evaluating a rule body.
///
/// This name-keyed map is the *reference* representation: the compiled
/// evaluator works on dense frames instead and never touches it. It remains
/// the convenient structure for tests, debugging, and one-off evaluation.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    map: HashMap<String, Value>,
}

impl Bindings {
    /// An empty substitution.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// The value bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.map.get(var)
    }

    /// Bind `var` to `value`; returns false (and leaves the binding intact)
    /// when `var` is already bound to a *different* value.
    pub fn bind(&mut self, var: &str, value: Value) -> bool {
        match self.map.get(var) {
            Some(existing) => *existing == value,
            None => {
                self.map.insert(var.to_string(), value);
                true
            }
        }
    }

    /// True when `var` has a binding.
    pub fn is_bound(&self, var: &str) -> bool {
        self.map.contains_key(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Evaluate an expression under a substitution.
pub fn eval_expr(expr: &Expr, bindings: &Bindings, builtins: &Builtins) -> Result<Value> {
    match expr {
        Expr::Term(Term::Const(v)) => Ok(v.clone()),
        Expr::Term(Term::Var(v)) => {
            bindings.get(v).cloned().ok_or_else(|| Error::eval(format!("unbound variable {v}")))
        }
        Expr::Call { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, bindings, builtins)?);
            }
            builtins.call(func, &vals)
        }
        Expr::BinOp { op, lhs, rhs } => {
            let l = eval_expr(lhs, bindings, builtins)?;
            let r = eval_expr(rhs, bindings, builtins)?;
            Builtins::arith(*op, &l, &r)
        }
    }
}

/// Try to unify an atom's terms against a tuple's fields, extending
/// `bindings`. Returns false on mismatch (bindings may be partially extended;
/// callers clone before attempting).
fn unify_atom(atom: &Atom, tuple: &Tuple, bindings: &mut Bindings) -> bool {
    if atom.arity() != tuple.arity() {
        return false;
    }
    for (term, value) in atom.terms.iter().zip(tuple.fields()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => {
                if !bindings.bind(v, value.clone()) {
                    return false;
                }
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Relation sources
// ---------------------------------------------------------------------------

/// Anything that can supply the current contents of a relation *by
/// reference*. The centralized [`Database`] implements it; so does the
/// local ∪ shared overlay of the distributed processor (which chains two
/// stores without materializing either).
///
/// Relations are addressed by interned [`RelId`] — the join loop probes a
/// source once per candidate binding, so lookups must never hash a name.
pub trait RelationSource {
    /// Borrowing cursor over all tuples currently stored for `relation`.
    fn scan(&self, relation: RelId) -> Scan<'_>;

    /// Borrowing cursor over (at least) the tuples of `relation` whose
    /// `field` equals `value`. Implementations backed by a secondary index
    /// return only the hits; the default falls back to a full scan — the
    /// contract is over-approximation, since join loops re-check the probe
    /// field when unifying.
    fn probe(&self, relation: RelId, field: usize, value: &Value) -> Scan<'_> {
        let _ = (field, value);
        self.scan(relation)
    }

    /// Borrowing cursor over (at least) the tuples whose declared-key
    /// fields (`fields`, the key declaration the plan compiled against)
    /// equal `key.values()`. Stores that maintain a matching upsert map
    /// serve this with at most one hit; the default over-approximates with
    /// a single-field probe — safe, since join loops re-check every field.
    fn probe_key(&self, key: &TupleKey, fields: &[usize]) -> Scan<'_> {
        match (fields.first(), key.values().first()) {
            (Some(&f), Some(v)) => self.probe(key.rel(), f, v),
            _ => self.scan(key.rel()),
        }
    }
}

impl RelationSource for Database {
    fn scan(&self, relation: RelId) -> Scan<'_> {
        Database::scan(self, relation)
    }

    fn probe(&self, relation: RelId, field: usize, value: &Value) -> Scan<'_> {
        Database::probe(self, relation, field, value)
    }

    fn probe_key(&self, key: &TupleKey, fields: &[usize]) -> Scan<'_> {
        Database::probe_key(self, key, fields)
    }
}

// ---------------------------------------------------------------------------
// Compiled plan representation
// ---------------------------------------------------------------------------

/// How a planned atom locates its candidate tuples: probe a stored index on
/// `field` with either a compile-time constant or the current value of a
/// frame slot bound by earlier atoms.
#[derive(Debug, Clone, PartialEq)]
enum ProbeKey {
    Const(Value),
    Slot(usize),
}

impl ProbeKey {
    /// The probe value under the current frame.
    fn resolve<'a>(&'a self, frame: &'a [Value]) -> &'a Value {
        match self {
            ProbeKey::Const(c) => c,
            ProbeKey::Slot(s) => &frame[*s],
        }
    }
}

/// One positional operation matching an atom field against the frame.
/// Ops run in order: constants first, then tests on slots bound by earlier
/// atoms, then the atom's own binds/tests in field order (so duplicate
/// variables within one atom test against the field that bound them).
#[derive(Debug, Clone, PartialEq)]
enum FieldOp {
    /// Field must equal a compile-time constant.
    Check { field: usize, value: Value },
    /// Field must equal an already-bound slot.
    Test { field: usize, slot: usize },
    /// First occurrence: write the field into its slot.
    Bind { field: usize, slot: usize },
}

/// How a planned atom locates its candidate tuples.
#[derive(Debug, Clone, PartialEq)]
enum ProbeSpec {
    /// Probe a single-field secondary index.
    Field(usize, ProbeKey),
    /// Probe the relation's declared upsert key: every key field is a
    /// constant or a slot bound by earlier atoms, so the keyed store
    /// yields at most one candidate.
    Key { fields: Vec<usize>, values: Vec<ProbeKey> },
}

impl ProbeSpec {
    /// Hash of the probe's value(s) under the current frame — the lookup
    /// key into the per-call delta index. Hash collisions are harmless:
    /// the join loop re-checks every field op on each candidate.
    fn delta_hash(&self, frame: &[Value]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        match self {
            ProbeSpec::Field(_, key) => key.resolve(frame).hash(&mut h),
            ProbeSpec::Key { values, .. } => {
                for key in values {
                    key.resolve(frame).hash(&mut h);
                }
            }
        }
        h.finish()
    }

    /// Hash of a delta tuple's values at the probe's field positions, or
    /// `None` when the tuple is too short to have them (it could never
    /// match the atom anyway).
    fn tuple_hash(&self, t: &Tuple) -> Option<u64> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        match self {
            ProbeSpec::Field(field, _) => t.field(*field)?.hash(&mut h),
            ProbeSpec::Key { fields, .. } => {
                for &field in fields {
                    t.field(field)?.hash(&mut h);
                }
            }
        }
        Some(h.finish())
    }
}

/// A positive body atom compiled against the frame layout.
#[derive(Debug, Clone)]
struct AtomPlan {
    rel: RelId,
    arity: usize,
    ops: Vec<FieldOp>,
    probe: Option<ProbeSpec>,
}

/// An expression lowered onto frame slots; function names are resolved to
/// dense indices into the plan's function table (looked up in the
/// [`Builtins`] once per `evaluate` call, not per invocation).
#[derive(Debug, Clone)]
enum SlotExpr {
    Const(Value),
    Slot(usize),
    Call { func: usize, args: Vec<SlotExpr> },
    BinOp { op: ArithOp, lhs: Box<SlotExpr>, rhs: Box<SlotExpr> },
}

/// A constraint scheduled at a specific join depth.
#[derive(Debug, Clone)]
enum Step {
    /// `X = expr` where `X` was unbound: compute and bind.
    Bind { slot: usize, expr: SlotExpr },
    /// `X = expr` where `X` is already bound: equality test.
    Test { slot: usize, expr: SlotExpr },
    /// A comparison filter.
    Filter { op: CompareOp, lhs: SlotExpr, rhs: SlotExpr },
}

/// One field condition of a compiled negated atom. Fields whose variable is
/// never bound by the positive part are wildcards and compile to no op.
#[derive(Debug, Clone)]
enum NegOp {
    Check { field: usize, value: Value },
    Test { field: usize, slot: usize },
}

/// A negated body atom compiled against the frame layout.
#[derive(Debug, Clone)]
struct NegPlan {
    rel: RelId,
    arity: usize,
    ops: Vec<NegOp>,
    probe: Option<(usize, ProbeKey)>,
}

/// How one head field is produced from a completed frame.
#[derive(Debug, Clone)]
enum HeadOp {
    Const(Value),
    Slot(usize),
    /// The head variable is never bound by the body; emitting through this
    /// op reports the unsafe rule.
    Unbound(String),
}

/// The join order and probe choices a [`RuleEval`] compiled to, exposed so
/// tests can pin planner decisions and tools can explain them.
///
/// Positions are *planned* positions; [`JoinPlan::atom_order`] maps each
/// back to the original body occurrence index (the indexing used by
/// semi-naïve deltas and [`RuleEval::positive_atoms`]).
#[derive(Debug, Clone)]
pub struct JoinPlan {
    order: Vec<usize>,
    labels: Vec<String>,
    probes: Vec<Option<usize>>,
    keys: Vec<Option<Vec<usize>>>,
    slot_names: Vec<String>,
    used_stats: bool,
}

impl JoinPlan {
    /// Planned join order as original positive-atom occurrence indices:
    /// `atom_order()[p]` is the body occurrence joined at depth `p`.
    pub fn atom_order(&self) -> &[usize] {
        &self.order
    }

    /// Probe field per planned atom (parallel to [`JoinPlan::atom_order`]);
    /// `None` means a full scan. A key probe (see [`JoinPlan::key_probes`])
    /// reports its first key field here.
    pub fn probes(&self) -> &[Option<usize>] {
        &self.probes
    }

    /// Key-probe fields per planned atom (parallel to
    /// [`JoinPlan::atom_order`]): `Some(fields)` when the atom is served
    /// by its relation's declared upsert key (at most one candidate per
    /// outer binding), `None` when it scans or probes a single field.
    pub fn key_probes(&self) -> &[Option<Vec<usize>>] {
        &self.keys
    }

    /// The rule's variables in slot order — the frame layout.
    pub fn slot_names(&self) -> &[String] {
        &self.slot_names
    }

    /// Number of frame slots the rule uses.
    pub fn slot_count(&self) -> usize {
        self.slot_names.len()
    }

    /// True when the plan was costed from table statistics
    /// ([`RuleEval::with_stats`]) rather than the static heuristic.
    pub fn used_stats(&self) -> bool {
        self.used_stats
    }
}

impl fmt::Display for JoinPlan {
    /// Renders as the join pipeline, e.g. `link ⋈ path[0]` — a probed atom
    /// shows its probe field in brackets, a key-probed atom all of its key
    /// fields (`shortestCost[0,1]`), a scanned atom just its name.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (label, probe)) in self.labels.iter().zip(&self.probes).enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            match (&self.keys[i], probe) {
                (Some(fields), _) => {
                    write!(f, "{label}[")?;
                    for (j, kf) in fields.iter().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{kf}")?;
                    }
                    write!(f, "]")?;
                }
                (None, Some(field)) => write!(f, "{label}[{field}]")?,
                (None, None) => write!(f, "{label}")?,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Single-rule evaluation (compiled path)
// ---------------------------------------------------------------------------

/// Observer of individual rule firings during [`RuleEval`] evaluation.
///
/// The join calls [`enter`](FiringSink::enter) when a candidate tuple
/// survives its atom's field ops and scheduled constraints,
/// [`exit`](FiringSink::exit) when the join backtracks past it, and
/// [`fired`](FiringSink::fired) when a complete binding emits a head tuple
/// — at which point the entered-and-not-exited tuples are exactly the
/// positive body of the firing (in planned join order).
///
/// Evaluation is generic over the sink, so the default [`NoTrace`]
/// monomorphizes to the exact pre-provenance hot path: no branch, no
/// allocation, no cost when recording is off.
pub trait FiringSink {
    /// A candidate tuple joined at the current depth.
    fn enter(&mut self, tuple: &Tuple);
    /// The join backtracked past the most recently entered tuple.
    fn exit(&mut self);
    /// A complete binding emitted `head`.
    fn fired(&mut self, head: &Tuple);
}

/// The do-nothing sink: compiles away entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl FiringSink for NoTrace {
    #[inline(always)]
    fn enter(&mut self, _tuple: &Tuple) {}
    #[inline(always)]
    fn exit(&mut self) {}
    #[inline(always)]
    fn fired(&mut self, _head: &Tuple) {}
}

/// One recorded rule firing: a head tuple and the positive body tuples the
/// join bound to produce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// The derived head tuple (raw: aggregate positions ungrouped).
    pub head: Tuple,
    /// The positive body tuples, in planned join order.
    pub body: Vec<Tuple>,
}

/// A [`FiringSink`] that records every firing (the provenance hook).
#[derive(Debug, Clone, Default)]
pub struct FiringLog {
    stack: Vec<Tuple>,
    /// The firings observed so far.
    pub firings: Vec<Firing>,
}

impl FiringLog {
    /// An empty log.
    pub fn new() -> FiringLog {
        FiringLog::default()
    }
}

impl FiringSink for FiringLog {
    fn enter(&mut self, tuple: &Tuple) {
        self.stack.push(tuple.clone());
    }
    fn exit(&mut self) {
        self.stack.pop();
    }
    fn fired(&mut self, head: &Tuple) {
        self.firings.push(Firing { head: head.clone(), body: self.stack.clone() });
    }
}

/// Compiled evaluator for a single rule.
///
/// Construction analyses the rule once: variables are interned into dense
/// frame slots, the join planner orders the positive atoms by estimated
/// selectivity, every atom/constraint/negation/head term is lowered into
/// positional ops against the frame, and each probe field is recorded so
/// stores can declare the matching secondary index. Evaluation then runs a
/// nested-loop join over a single reusable frame, borrowing tuples straight
/// out of the [`RelationSource`] through [`Scan`] cursors; nothing is
/// gathered, re-hashed, or cloned per candidate.
///
/// # Example: inspecting the compiled plan
///
/// ```
/// use dr_datalog::{parse_program, RuleEval};
///
/// let program = parse_program(
///     "NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), \
///      C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.",
/// )
/// .unwrap();
/// let compiled = RuleEval::new(&program.rules[0]);
/// let plan = compiled.plan();
/// // `link` is joined first (fewer unbound variables), then `path` is
/// // probed on field 0 with the `Z` binding `link` produced.
/// assert_eq!(plan.atom_order(), &[0, 1]);
/// assert_eq!(plan.probes(), &[None, Some(0)]);
/// assert_eq!(plan.to_string(), "link ⋈ path[0]");
/// ```
#[derive(Debug, Clone)]
pub struct RuleEval {
    rule: Rule,
    /// Positive body atoms, in *body* order (delta positions refer to these).
    positive: Vec<Atom>,
    /// Interned relation of each positive atom, in body order.
    positive_rels: Vec<RelId>,
    /// Interned relation the head derives into.
    head_rel: RelId,
    /// Frame layout: slot index → variable name.
    slot_names: Vec<String>,
    /// Compiled positive atoms in *planned* order.
    atoms: Vec<AtomPlan>,
    /// Original occurrence index → planned position.
    planned_of: Vec<usize>,
    /// `steps[d]` runs once `d` planned atoms have matched; `steps[0]` runs
    /// once per evaluation, before the join loop.
    steps: Vec<Vec<Step>>,
    /// Constraints whose variables are never all bound; reaching a full
    /// match with any of these reports the rule as unsafe.
    unsafe_constraints: Vec<Literal>,
    /// Compiled negated atoms, checked after the positive join completes.
    negs: Vec<NegPlan>,
    /// Interned relation of each negated atom.
    neg_rels: Vec<RelId>,
    /// Head emission program.
    head_ops: Vec<HeadOp>,
    /// Function-name table for [`SlotExpr::Call`] resolution.
    func_names: Vec<String>,
    /// The planner's decisions, for introspection and pinning tests.
    plan: JoinPlan,
}

/// Rows assumed for a relation the statistics know nothing about (absent or
/// empty at plan time — usually a derived relation that will fill up during
/// the fixpoint, so "unknown" must not read as "cheap").
const UNKNOWN_ROWS: u64 = 1024;
/// Selectivity divisor assumed for a probe whose field has no distinct-count
/// statistic.
const DEFAULT_PROBE_FANOUT: u64 = 16;

/// Bodies of up to this many positive atoms are ordered by exhaustive
/// minimum-cost permutation search; wider bodies fall back to the one-step
/// greedy heuristic (n! would bite, and such rules are vanishingly rare).
const EXHAUSTIVE_PLAN_LIMIT: usize = 6;

/// Estimated candidate tuples `atom` yields *per outer binding*, given
/// which slots are bound: 1 when the relation's declared key is fully
/// bound (the upsert map yields at most one hit), `rows / distinct` for a
/// single-field index probe, `rows` for a full scan. Returned alongside
/// the number of still-unbound variable occurrences (the greedy fallback's
/// tiebreak).
fn estimate_hits(
    atom: &Atom,
    rel: RelId,
    bound: &[bool],
    slot_of: &HashMap<String, usize>,
    stats: Option<&CardStats>,
) -> (u64, usize) {
    let term_bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound[slot_of[v.as_str()]],
    };
    let unbound = atom.terms.iter().filter(|t| !term_bound(t)).count();
    let key_served = stats.and_then(|s| s.key_of(rel)).is_some_and(|kf| {
        !kf.is_empty() && kf.iter().all(|&f| atom.terms.get(f).is_some_and(&term_bound))
    });
    if key_served {
        return (1, unbound);
    }
    let rows = stats
        .and_then(|s| s.rows(rel))
        .filter(|&r| r > 0)
        .map(|r| r as u64)
        .unwrap_or(UNKNOWN_ROWS);
    match atom.terms.iter().position(term_bound) {
        Some(f) => {
            let divisor = stats
                .and_then(|s| s.distinct(rel, f))
                .filter(|&d| d > 0)
                .map(|d| d as u64)
                .unwrap_or(DEFAULT_PROBE_FANOUT);
            ((rows / divisor).max(1), unbound)
        }
        None => (rows.max(1), unbound),
    }
}

/// Planning-time simulation of [`schedule_ready_constraints`]'s binding
/// effect: assignments whose right side is fully bound bind their target,
/// chains included. Filters bind nothing.
fn bind_ready_assigns(
    constraints: &[Literal],
    bound: &mut [bool],
    slot_of: &HashMap<String, usize>,
) {
    let mut progress = true;
    while progress {
        progress = false;
        for lit in constraints {
            if let Literal::Assign { var, expr } = lit {
                let slot = slot_of[var.as_str()];
                if !bound[slot] && expr.variables().iter().all(|v| bound[slot_of[*v]]) {
                    bound[slot] = true;
                    progress = true;
                }
            }
        }
    }
}

/// Depth-first permutation search for the cheapest join order. Step cost is
/// the estimated number of bindings reaching the step times the step's
/// per-binding hits; the total is the sum over steps. Permutations are
/// visited in lexicographic (body) order and only a strictly cheaper one
/// replaces the incumbent, so cost ties resolve to the earliest body order.
#[allow(clippy::too_many_arguments)]
fn search_orders(
    positive: &[Atom],
    rels: &[RelId],
    constraints: &[Literal],
    slot_of: &HashMap<String, usize>,
    stats: Option<&CardStats>,
    bound: &mut Vec<bool>,
    used: &mut Vec<bool>,
    order: &mut Vec<usize>,
    prefix_rows: u128,
    cost: u128,
    best: &mut Option<(u128, Vec<usize>)>,
) {
    if let Some((best_cost, _)) = best {
        if cost >= *best_cost {
            return;
        }
    }
    if order.len() == positive.len() {
        *best = Some((cost, order.clone()));
        return;
    }
    for occ in 0..positive.len() {
        if used[occ] {
            continue;
        }
        let (hits, _) = estimate_hits(&positive[occ], rels[occ], bound, slot_of, stats);
        let step_cost = prefix_rows.saturating_mul(u128::from(hits.max(1)));
        let saved_bound = bound.clone();
        for t in &positive[occ].terms {
            if let Term::Var(v) = t {
                bound[slot_of[v.as_str()]] = true;
            }
        }
        bind_ready_assigns(constraints, bound, slot_of);
        used[occ] = true;
        order.push(occ);
        search_orders(
            positive,
            rels,
            constraints,
            slot_of,
            stats,
            bound,
            used,
            order,
            step_cost,
            cost.saturating_add(step_cost),
            best,
        );
        order.pop();
        used[occ] = false;
        *bound = saved_bound;
    }
}

/// Choose the join order for a rule body: exhaustive permutation search up
/// to [`EXHAUSTIVE_PLAN_LIMIT`] atoms, one-step greedy (cheapest next atom
/// by `(hits, unbound, occurrence)`) beyond. `init_bound` is the binding
/// state after the once-per-call constraint steps; it is not mutated.
fn plan_order(
    positive: &[Atom],
    rels: &[RelId],
    constraints: &[Literal],
    init_bound: &[bool],
    slot_of: &HashMap<String, usize>,
    stats: Option<&CardStats>,
) -> Vec<usize> {
    let n = positive.len();
    let mut bound = init_bound.to_vec();
    if n <= EXHAUSTIVE_PLAN_LIMIT {
        let mut best = None;
        search_orders(
            positive,
            rels,
            constraints,
            slot_of,
            stats,
            &mut bound,
            &mut vec![false; n],
            &mut Vec::with_capacity(n),
            1,
            0,
            &mut best,
        );
        return best.map(|(_, order)| order).unwrap_or_default();
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let mut best: Option<(u64, usize, usize)> = None;
        for &occ in &remaining {
            let (hits, unbound) = estimate_hits(&positive[occ], rels[occ], &bound, slot_of, stats);
            let key = (hits, unbound, occ);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let occ = best.expect("remaining is non-empty").2;
        remaining.retain(|&o| o != occ);
        for t in &positive[occ].terms {
            if let Term::Var(v) = t {
                bound[slot_of[v.as_str()]] = true;
            }
        }
        bind_ready_assigns(constraints, &mut bound, slot_of);
        order.push(occ);
    }
    order
}

/// Lower an expression onto frame slots, interning called function names
/// into `func_names`. Callers guarantee every variable has a slot.
fn compile_expr(
    expr: &Expr,
    slot_of: &HashMap<String, usize>,
    func_names: &mut Vec<String>,
) -> SlotExpr {
    match expr {
        Expr::Term(Term::Const(v)) => SlotExpr::Const(v.clone()),
        Expr::Term(Term::Var(v)) => SlotExpr::Slot(slot_of[v.as_str()]),
        Expr::Call { func, args } => {
            let id = match func_names.iter().position(|n| n == func) {
                Some(i) => i,
                None => {
                    func_names.push(func.clone());
                    func_names.len() - 1
                }
            };
            SlotExpr::Call {
                func: id,
                args: args.iter().map(|a| compile_expr(a, slot_of, func_names)).collect(),
            }
        }
        Expr::BinOp { op, lhs, rhs } => SlotExpr::BinOp {
            op: *op,
            lhs: Box::new(compile_expr(lhs, slot_of, func_names)),
            rhs: Box::new(compile_expr(rhs, slot_of, func_names)),
        },
    }
}

/// Schedule every not-yet-scheduled constraint whose variables are all
/// bound, updating `bound` as assignments bind new slots (which can make
/// further constraints ready — hence the progress loop, mirroring the
/// reference evaluator's eager application).
fn schedule_ready_constraints(
    constraints: &[Literal],
    scheduled: &mut [bool],
    bound: &mut [bool],
    slot_of: &HashMap<String, usize>,
    func_names: &mut Vec<String>,
) -> Vec<Step> {
    let mut out = Vec::new();
    let mut progress = true;
    while progress {
        progress = false;
        for (i, lit) in constraints.iter().enumerate() {
            if scheduled[i] {
                continue;
            }
            match lit {
                Literal::Assign { var, expr } => {
                    if expr.variables().iter().all(|v| bound[slot_of[*v]]) {
                        scheduled[i] = true;
                        progress = true;
                        let compiled = compile_expr(expr, slot_of, func_names);
                        let slot = slot_of[var.as_str()];
                        if bound[slot] {
                            out.push(Step::Test { slot, expr: compiled });
                        } else {
                            bound[slot] = true;
                            out.push(Step::Bind { slot, expr: compiled });
                        }
                    }
                }
                Literal::Compare { op, lhs, rhs } => {
                    let ready = lhs.variables().iter().all(|v| bound[slot_of[*v]])
                        && rhs.variables().iter().all(|v| bound[slot_of[*v]]);
                    if ready {
                        scheduled[i] = true;
                        progress = true;
                        out.push(Step::Filter {
                            op: *op,
                            lhs: compile_expr(lhs, slot_of, func_names),
                            rhs: compile_expr(rhs, slot_of, func_names),
                        });
                    }
                }
                other => unreachable!("{other} is not a constraint"),
            }
        }
    }
    out
}

/// Compile one positive atom against the frame: choose its probe from the
/// currently bound slots (a fully-bound declared key beats any single
/// field — the keyed store yields at most one candidate), emit field ops,
/// and mark its variables bound.
fn compile_atom(
    atom: &Atom,
    rel: RelId,
    bound: &mut [bool],
    slot_of: &HashMap<String, usize>,
    stats: Option<&CardStats>,
) -> AtomPlan {
    let term_key = |term: &Term| match term {
        Term::Const(c) => Some(ProbeKey::Const(c.clone())),
        Term::Var(v) => {
            let slot = slot_of[v.as_str()];
            bound[slot].then_some(ProbeKey::Slot(slot))
        }
    };
    let key_probe = stats.and_then(|s| s.key_of(rel)).and_then(|kf| {
        if kf.is_empty() {
            return None;
        }
        let values: Option<Vec<ProbeKey>> =
            kf.iter().map(|&f| term_key(atom.terms.get(f)?)).collect();
        Some(ProbeSpec::Key { fields: kf.to_vec(), values: values? })
    });
    let probe = key_probe.or_else(|| {
        atom.terms
            .iter()
            .enumerate()
            .find_map(|(field, term)| term_key(term).map(|k| ProbeSpec::Field(field, k)))
    });
    let mut checks = Vec::new();
    let mut tests = Vec::new();
    let mut writes = Vec::new();
    let mut newly: Vec<usize> = Vec::new();
    for (field, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(c) => checks.push(FieldOp::Check { field, value: c.clone() }),
            Term::Var(v) => {
                let slot = slot_of[v.as_str()];
                if bound[slot] {
                    tests.push(FieldOp::Test { field, slot });
                } else if newly.contains(&slot) {
                    writes.push(FieldOp::Test { field, slot });
                } else {
                    newly.push(slot);
                    writes.push(FieldOp::Bind { field, slot });
                }
            }
        }
    }
    for slot in newly {
        bound[slot] = true;
    }
    let mut ops = checks;
    ops.extend(tests);
    ops.extend(writes);
    AtomPlan { rel, arity: atom.arity(), ops, probe }
}

/// Per-call evaluation environment: the resolved function table plus the
/// tuple source and optional semi-naïve delta (already mapped to its
/// *planned* position, with a per-call index over the delta slice).
struct Env<'a, S> {
    funcs: Vec<Option<BuiltinFn>>,
    source: &'a S,
    delta: Option<(usize, &'a [Tuple])>,
    /// Probe-value hash → positions in the delta slice. Keyed by hash so
    /// single-field and composite-key probes share one shape; collisions
    /// are harmless (the join re-checks every field op per candidate).
    delta_index: Option<HashMap<u64, Vec<usize>>>,
}

impl RuleEval {
    /// Compile `rule` into a reusable evaluation plan, ordering joins with
    /// static estimates only (every relation unknown-sized; cost ties
    /// resolve to body order).
    pub fn new(rule: &Rule) -> RuleEval {
        RuleEval::compile(rule, None)
    }

    /// Compile `rule` with table statistics: the planner searches join
    /// orders for the cheapest total cost (`rows / distinct` per probe,
    /// `rows` per scan, 1 per fully-bound declared-key probe), so the most
    /// selective access path drives each join depth.
    pub fn with_stats(rule: &Rule, stats: &CardStats) -> RuleEval {
        RuleEval::compile(rule, Some(stats))
    }

    fn compile(rule: &Rule, stats: Option<&CardStats>) -> RuleEval {
        let positive: Vec<Atom> = rule.positive_atoms().into_iter().cloned().collect();
        let positive_rels: Vec<RelId> =
            positive.iter().map(|a| RelId::intern(&a.relation)).collect();
        let constraints: Vec<Literal> =
            rule.body.iter().filter(|l| l.is_constraint()).cloned().collect();
        let neg_atoms: Vec<Atom> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::NegAtom(a) => Some(a.clone()),
                _ => None,
            })
            .collect();
        let head_rel = RelId::intern(&rule.head.relation);

        // Frame layout: one dense slot per distinct variable.
        let slot_names: Vec<String> = rule.variables().into_iter().map(String::from).collect();
        let slot_of: HashMap<String, usize> =
            slot_names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();

        let mut bound = vec![false; slot_names.len()];
        let mut scheduled = vec![false; constraints.len()];
        let mut func_names: Vec<String> = Vec::new();

        // Constraints evaluable before any atom (constants-only, and
        // assignment chains off them) run once per call: steps[0].
        let mut steps = Vec::with_capacity(positive.len() + 1);
        steps.push(schedule_ready_constraints(
            &constraints,
            &mut scheduled,
            &mut bound,
            &slot_of,
            &mut func_names,
        ));

        // Join planning: pick the cheapest order (exhaustive permutation
        // search for small bodies, greedy beyond), then compile each atom
        // in that order, scheduling newly-ready constraints between atoms.
        let order = plan_order(&positive, &positive_rels, &constraints, &bound, &slot_of, stats);
        let mut atoms = Vec::with_capacity(positive.len());
        for &occ in &order {
            atoms.push(compile_atom(
                &positive[occ],
                positive_rels[occ],
                &mut bound,
                &slot_of,
                stats,
            ));
            steps.push(schedule_ready_constraints(
                &constraints,
                &mut scheduled,
                &mut bound,
                &slot_of,
                &mut func_names,
            ));
        }
        let mut planned_of = vec![0usize; order.len()];
        for (pos, &occ) in order.iter().enumerate() {
            planned_of[occ] = pos;
        }
        let unsafe_constraints: Vec<Literal> = constraints
            .iter()
            .zip(&scheduled)
            .filter(|(_, &s)| !s)
            .map(|(l, _)| l.clone())
            .collect();

        // Negations run after the whole positive part, against the final
        // bound set; unbound fields are wildcards.
        let neg_rels: Vec<RelId> = neg_atoms.iter().map(|a| RelId::intern(&a.relation)).collect();
        let negs: Vec<NegPlan> = neg_atoms
            .iter()
            .zip(&neg_rels)
            .map(|(atom, &rel)| {
                let mut probe = None;
                for (field, term) in atom.terms.iter().enumerate() {
                    let key = match term {
                        Term::Const(c) => Some(ProbeKey::Const(c.clone())),
                        Term::Var(v) => {
                            let slot = slot_of[v.as_str()];
                            bound[slot].then_some(ProbeKey::Slot(slot))
                        }
                    };
                    if let Some(k) = key {
                        probe = Some((field, k));
                        break;
                    }
                }
                let mut ops = Vec::new();
                for (field, term) in atom.terms.iter().enumerate() {
                    match term {
                        Term::Const(c) => ops.push(NegOp::Check { field, value: c.clone() }),
                        Term::Var(v) => {
                            let slot = slot_of[v.as_str()];
                            if bound[slot] {
                                ops.push(NegOp::Test { field, slot });
                            }
                            // unbound: wildcard, no op
                        }
                    }
                }
                NegPlan { rel, arity: atom.arity(), ops, probe }
            })
            .collect();

        let head_ops: Vec<HeadOp> = rule
            .head
            .terms
            .iter()
            .map(|term| match term {
                HeadTerm::Plain(Term::Const(c)) => HeadOp::Const(c.clone()),
                HeadTerm::Plain(Term::Var(v)) | HeadTerm::Agg(_, v) => match slot_of.get(v) {
                    Some(&slot) if bound[slot] => HeadOp::Slot(slot),
                    _ => HeadOp::Unbound(v.clone()),
                },
            })
            .collect();

        let plan = JoinPlan {
            labels: order.iter().map(|&occ| positive[occ].relation.clone()).collect(),
            probes: atoms
                .iter()
                .map(|a| {
                    a.probe.as_ref().map(|p| match p {
                        ProbeSpec::Field(f, _) => *f,
                        ProbeSpec::Key { fields, .. } => fields[0],
                    })
                })
                .collect(),
            keys: atoms
                .iter()
                .map(|a| match &a.probe {
                    Some(ProbeSpec::Key { fields, .. }) => Some(fields.clone()),
                    _ => None,
                })
                .collect(),
            order,
            slot_names: slot_names.clone(),
            used_stats: stats.is_some(),
        };

        RuleEval {
            rule: rule.clone(),
            positive,
            positive_rels,
            head_rel,
            slot_names,
            atoms,
            planned_of,
            steps,
            unsafe_constraints,
            negs,
            neg_rels,
            head_ops,
            func_names,
            plan,
        }
    }

    /// The rule being evaluated.
    pub fn rule(&self) -> &Rule {
        &self.rule
    }

    /// The positive body atoms, in delta-occurrence (body) order.
    pub fn positive_atoms(&self) -> &[Atom] {
        &self.positive
    }

    /// The interned relation of each positive atom, in delta-occurrence
    /// order (parallel to [`RuleEval::positive_atoms`]).
    pub fn positive_rels(&self) -> &[RelId] {
        &self.positive_rels
    }

    /// The interned relation of each negated body atom.
    pub fn neg_rels(&self) -> &[RelId] {
        &self.neg_rels
    }

    /// The interned relation this rule's head derives into.
    pub fn head_rel(&self) -> RelId {
        self.head_rel
    }

    /// The join order and probe choices this plan compiled to.
    pub fn plan(&self) -> &JoinPlan {
        &self.plan
    }

    /// The `(relation, field)` pairs this plan probes — the secondary
    /// indexes a store should declare so every probe is index-served.
    pub fn probe_fields(&self) -> Vec<(RelId, usize)> {
        self.atoms
            .iter()
            .filter_map(|a| match a.probe.as_ref()? {
                ProbeSpec::Field(f, _) => Some((a.rel, *f)),
                // Key probes are served by the upsert map itself; declare
                // the first key field for sources that can only field-probe.
                ProbeSpec::Key { fields, .. } => Some((a.rel, fields[0])),
            })
            .chain(self.negs.iter().filter_map(|n| n.probe.as_ref().map(|(f, _)| (n.rel, *f))))
            .collect()
    }

    /// Evaluate the rule against `source`.
    ///
    /// `delta` optionally replaces the tuples of the `i`-th **positive atom
    /// occurrence** (0-based, in body order, counting only positive atoms)
    /// with a delta set — this is the semi-naïve trick: the occurrence
    /// ranges over newly derived tuples only. The plan maps the occurrence
    /// to its planned join position internally.
    ///
    /// Returns *raw head tuples*: for aggregate heads the aggregate position
    /// carries the ungrouped value of the aggregated variable; use
    /// [`apply_aggregate`] to group.
    pub fn evaluate<S: RelationSource>(
        &self,
        builtins: &Builtins,
        source: &S,
        delta: Option<(usize, &[Tuple])>,
    ) -> Result<Vec<Tuple>> {
        self.evaluate_with(builtins, source, delta, &mut NoTrace)
    }

    /// [`evaluate`](RuleEval::evaluate), additionally recording every rule
    /// firing into `log` (head tuple + the body tuples that produced it).
    /// This is the provenance entry point; the plain path stays on the
    /// [`NoTrace`] monomorphization and pays nothing.
    pub fn evaluate_traced<S: RelationSource>(
        &self,
        builtins: &Builtins,
        source: &S,
        delta: Option<(usize, &[Tuple])>,
        log: &mut FiringLog,
    ) -> Result<Vec<Tuple>> {
        self.evaluate_with(builtins, source, delta, log)
    }

    fn evaluate_with<S: RelationSource, T: FiringSink>(
        &self,
        builtins: &Builtins,
        source: &S,
        delta: Option<(usize, &[Tuple])>,
        sink: &mut T,
    ) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        // Resolve the function table once per call; an unknown function only
        // errors if a join path actually invokes it.
        let funcs: Vec<Option<BuiltinFn>> =
            self.func_names.iter().map(|n| builtins.get(n).cloned()).collect();
        // Map the delta occurrence (body order) to its planned position.
        let delta = delta.and_then(|(occ, dt)| self.planned_of.get(occ).map(|&p| (p, dt)));
        // The delta slice has no stored index; when its atom has a probe,
        // hash the probe value(s) once per call so the join probes it in
        // O(hits) instead of re-walking the slice per outer binding.
        let delta_index: Option<HashMap<u64, Vec<usize>>> = delta.and_then(|(p, dt)| {
            let probe = self.atoms[p].probe.as_ref()?;
            let mut idx: HashMap<u64, Vec<usize>> = HashMap::new();
            for (i, t) in dt.iter().enumerate() {
                if let Some(h) = probe.tuple_hash(t) {
                    idx.entry(h).or_default().push(i);
                }
            }
            Some(idx)
        });
        let env = Env { funcs, source, delta, delta_index };
        // One frame for the whole evaluation; the filler is never read
        // because reads only target statically-bound slots.
        let mut frame = vec![Value::Bool(false); self.slot_names.len()];
        if self.run_steps(&env, 0, &mut frame)? {
            self.join(&env, 0, &mut frame, &mut out, sink)?;
        }
        Ok(out)
    }

    /// Run the constraint steps scheduled at depth `idx`. Returns false when
    /// a filter or equality test rejects the current frame.
    fn run_steps<S: RelationSource>(
        &self,
        env: &Env<'_, S>,
        idx: usize,
        frame: &mut [Value],
    ) -> Result<bool> {
        for step in &self.steps[idx] {
            match step {
                Step::Bind { slot, expr } => {
                    let v = self.eval_slot(env, expr, frame)?;
                    frame[*slot] = v;
                }
                Step::Test { slot, expr } => {
                    let v = self.eval_slot(env, expr, frame)?;
                    if frame[*slot] != v {
                        return Ok(false);
                    }
                }
                Step::Filter { op, lhs, rhs } => {
                    let l = self.eval_slot(env, lhs, frame)?;
                    let r = self.eval_slot(env, rhs, frame)?;
                    if !op.eval(&l, &r) {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// Evaluate a compiled expression against the frame.
    fn eval_slot<S: RelationSource>(
        &self,
        env: &Env<'_, S>,
        expr: &SlotExpr,
        frame: &[Value],
    ) -> Result<Value> {
        match expr {
            SlotExpr::Const(v) => Ok(v.clone()),
            SlotExpr::Slot(s) => Ok(frame[*s].clone()),
            SlotExpr::Call { func, args } => {
                let f = env.funcs[*func].as_ref().ok_or_else(|| {
                    Error::eval(format!("unknown function {}", self.func_names[*func]))
                })?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_slot(env, a, frame)?);
                }
                f(&vals)
            }
            SlotExpr::BinOp { op, lhs, rhs } => {
                let l = self.eval_slot(env, lhs, frame)?;
                let r = self.eval_slot(env, rhs, frame)?;
                Builtins::arith(*op, &l, &r)
            }
        }
    }

    fn join<S: RelationSource, T: FiringSink>(
        &self,
        env: &Env<'_, S>,
        depth: usize,
        frame: &mut [Value],
        out: &mut Vec<Tuple>,
        sink: &mut T,
    ) -> Result<()> {
        if depth == self.atoms.len() {
            return self.finish(env, frame, out, sink);
        }
        let ap = &self.atoms[depth];
        // Candidate tuples: the delta slice (through its per-call index
        // when the probe value is bound) for the delta position, a stored
        // index probe otherwise, full scan as the fallback. All variants
        // borrow — nothing is materialized.
        let candidates: Scan<'_> = match env.delta {
            Some((dp, dt)) if dp == depth => match (&ap.probe, &env.delta_index) {
                (Some(spec), Some(idx)) => match idx.get(&spec.delta_hash(frame)) {
                    Some(ids) => Scan::Hits { tuples: dt, ids: ids.iter() },
                    None => Scan::Empty,
                },
                _ => Scan::Slice(dt.iter()),
            },
            _ => match &ap.probe {
                Some(ProbeSpec::Field(f, key)) => env.source.probe(ap.rel, *f, key.resolve(frame)),
                Some(ProbeSpec::Key { fields, values }) => {
                    let key: Vec<Value> = values.iter().map(|k| k.resolve(frame).clone()).collect();
                    env.source.probe_key(&TupleKey::new(ap.rel, key), fields)
                }
                None => env.source.scan(ap.rel),
            },
        };
        'cand: for tuple in candidates {
            if tuple.arity() != ap.arity {
                continue;
            }
            let fields = tuple.fields();
            for op in &ap.ops {
                match op {
                    FieldOp::Check { field, value } => {
                        if &fields[*field] != value {
                            continue 'cand;
                        }
                    }
                    FieldOp::Test { field, slot } => {
                        if fields[*field] != frame[*slot] {
                            continue 'cand;
                        }
                    }
                    FieldOp::Bind { field, slot } => {
                        frame[*slot] = fields[*field].clone();
                    }
                }
            }
            if !self.run_steps(env, depth + 1, frame)? {
                continue;
            }
            sink.enter(tuple);
            let descended = self.join(env, depth + 1, frame, out, sink);
            sink.exit();
            descended?;
        }
        Ok(())
    }

    /// All positive atoms joined and every scheduled constraint applied:
    /// report unsafe constraints, check negations, emit the head tuple.
    fn finish<S: RelationSource, T: FiringSink>(
        &self,
        env: &Env<'_, S>,
        frame: &[Value],
        out: &mut Vec<Tuple>,
        sink: &mut T,
    ) -> Result<()> {
        if let Some(lit) = self.unsafe_constraints.first() {
            return Err(Error::eval(format!(
                "rule {}: constraint `{lit}` has unbound variables",
                self.rule.name.as_deref().unwrap_or("<unnamed>")
            )));
        }
        for np in &self.negs {
            if self.neg_has_match(env, np, frame) {
                return Ok(());
            }
        }
        let mut fields = Vec::with_capacity(self.head_ops.len());
        for op in &self.head_ops {
            match op {
                HeadOp::Const(v) => fields.push(v.clone()),
                HeadOp::Slot(s) => fields.push(frame[*s].clone()),
                HeadOp::Unbound(v) => {
                    return Err(Error::eval(format!(
                        "rule {}: head variable {v} is not bound by the body",
                        self.rule.name.as_deref().unwrap_or("<unnamed>")
                    )))
                }
            }
        }
        let head = Tuple::from_rel(self.head_rel, fields);
        sink.fired(&head);
        out.push(head);
        Ok(())
    }

    fn neg_has_match<S: RelationSource>(
        &self,
        env: &Env<'_, S>,
        np: &NegPlan,
        frame: &[Value],
    ) -> bool {
        let candidates = match &np.probe {
            Some((f, ProbeKey::Const(c))) => env.source.probe(np.rel, *f, c),
            Some((f, ProbeKey::Slot(s))) => env.source.probe(np.rel, *f, &frame[*s]),
            None => env.source.scan(np.rel),
        };
        'outer: for t in candidates {
            if t.arity() != np.arity {
                continue;
            }
            let fields = t.fields();
            for op in &np.ops {
                match op {
                    NegOp::Check { field, value } => {
                        if &fields[*field] != value {
                            continue 'outer;
                        }
                    }
                    NegOp::Test { field, slot } => {
                        if fields[*field] != frame[*slot] {
                            continue 'outer;
                        }
                    }
                }
            }
            return true;
        }
        false
    }
}

/// Evaluate `rule` against `source` with optional semi-naïve `delta`,
/// handling negated atoms by consulting `source`.
///
/// This compiles a throwaway [`RuleEval`] plan; callers on hot paths (the
/// [`Evaluator`], the distributed processor) compile once and reuse.
pub fn evaluate_rule<S: RelationSource>(
    rule: &Rule,
    builtins: &Builtins,
    source: &S,
    delta: Option<(usize, &[Tuple])>,
) -> Result<Vec<Tuple>> {
    RuleEval::new(rule).evaluate(builtins, source, delta)
}

// ---------------------------------------------------------------------------
// Reference (name-keyed) evaluator
// ---------------------------------------------------------------------------

/// Evaluate `rule` with the *reference* algorithm: name-keyed [`Bindings`]
/// cloned per candidate, body atoms joined in written order, no planning,
/// no probes. Semantically identical to [`RuleEval::evaluate`] (the
/// property tests pin this); kept for differential testing and debugging,
/// never used on hot paths.
pub fn evaluate_rule_reference<S: RelationSource>(
    rule: &Rule,
    builtins: &Builtins,
    source: &S,
    delta: Option<(usize, &[Tuple])>,
) -> Result<Vec<Tuple>> {
    let positive: Vec<&Atom> = rule.positive_atoms();
    let positive_rels: Vec<RelId> = positive.iter().map(|a| RelId::intern(&a.relation)).collect();
    let constraints: Vec<&Literal> = rule.body.iter().filter(|l| l.is_constraint()).collect();
    let neg: Vec<(&Atom, RelId)> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::NegAtom(a) => Some((a, RelId::intern(&a.relation))),
            _ => None,
        })
        .collect();
    let head_rel = RelId::intern(&rule.head.relation);

    let mut out = Vec::new();
    let mut bindings = Bindings::new();
    let mut applied = vec![false; constraints.len()];
    if !reference_apply_ready(&constraints, builtins, &mut applied, &mut bindings)? {
        return Ok(out);
    }
    reference_join(
        rule,
        &positive,
        &positive_rels,
        &constraints,
        &neg,
        head_rel,
        builtins,
        source,
        delta,
        0,
        &applied,
        &bindings,
        &mut out,
    )?;
    Ok(out)
}

/// Apply every not-yet-applied constraint whose variables are all bound.
/// Returns false if a constraint evaluated to false (dead branch).
fn reference_apply_ready(
    constraints: &[&Literal],
    builtins: &Builtins,
    applied: &mut [bool],
    bindings: &mut Bindings,
) -> Result<bool> {
    let mut progress = true;
    while progress {
        progress = false;
        for (i, lit) in constraints.iter().enumerate() {
            if applied[i] {
                continue;
            }
            match lit {
                Literal::Assign { var, expr } => {
                    if expr.variables().iter().all(|v| bindings.is_bound(v)) {
                        let val = eval_expr(expr, bindings, builtins)?;
                        applied[i] = true;
                        progress = true;
                        if !bindings.bind(var, val) {
                            return Ok(false);
                        }
                    }
                }
                Literal::Compare { op, lhs, rhs } => {
                    let ready = lhs.variables().iter().all(|v| bindings.is_bound(v))
                        && rhs.variables().iter().all(|v| bindings.is_bound(v));
                    if ready {
                        let l = eval_expr(lhs, bindings, builtins)?;
                        let r = eval_expr(rhs, bindings, builtins)?;
                        applied[i] = true;
                        progress = true;
                        if !op.eval(&l, &r) {
                            return Ok(false);
                        }
                    }
                }
                other => unreachable!("{other} is not a constraint"),
            }
        }
    }
    Ok(true)
}

#[allow(clippy::too_many_arguments)]
fn reference_join<S: RelationSource>(
    rule: &Rule,
    positive: &[&Atom],
    positive_rels: &[RelId],
    constraints: &[&Literal],
    neg: &[(&Atom, RelId)],
    head_rel: RelId,
    builtins: &Builtins,
    source: &S,
    delta: Option<(usize, &[Tuple])>,
    depth: usize,
    applied: &[bool],
    bindings: &Bindings,
    out: &mut Vec<Tuple>,
) -> Result<()> {
    if depth == positive.len() {
        // Unapplied constraints mean some variable never got bound: unsafe.
        for (i, lit) in constraints.iter().enumerate() {
            if !applied[i] {
                return Err(Error::eval(format!(
                    "rule {}: constraint `{lit}` has unbound variables",
                    rule.name.as_deref().unwrap_or("<unnamed>")
                )));
            }
        }
        for (atom, rel) in neg {
            if negation_has_match(atom, *rel, bindings, source) {
                return Ok(());
            }
        }
        out.push(head_tuple_from_bindings(&rule.head, head_rel, bindings, rule.name.as_deref())?);
        return Ok(());
    }
    let atom = positive[depth];
    let candidates: Scan<'_> = match delta {
        Some((di, dt)) if di == depth => Scan::Slice(dt.iter()),
        _ => source.scan(positive_rels[depth]),
    };
    for tuple in candidates {
        if !atom_prematch(atom, tuple, bindings) {
            continue;
        }
        let mut next = bindings.clone();
        if !unify_atom(atom, tuple, &mut next) {
            continue;
        }
        let mut next_applied = applied.to_vec();
        if !reference_apply_ready(constraints, builtins, &mut next_applied, &mut next)? {
            continue;
        }
        reference_join(
            rule,
            positive,
            positive_rels,
            constraints,
            neg,
            head_rel,
            builtins,
            source,
            delta,
            depth + 1,
            &next_applied,
            &next,
            out,
        )?;
    }
    Ok(())
}

/// Quick rejection test before bindings are cloned for a candidate tuple:
/// every constant and every already-bound variable of `atom` must match the
/// tuple. Unbound variables are ignored (they bind during full unification).
fn atom_prematch(atom: &Atom, tuple: &Tuple, bindings: &Bindings) -> bool {
    if atom.arity() != tuple.arity() {
        return false;
    }
    for (term, value) in atom.terms.iter().zip(tuple.fields()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => {
                if let Some(bound) = bindings.get(v) {
                    if bound != value {
                        return false;
                    }
                }
            }
        }
    }
    true
}

fn negation_has_match<S: RelationSource>(
    atom: &Atom,
    rel: RelId,
    bindings: &Bindings,
    source: &S,
) -> bool {
    'outer: for t in source.scan(rel) {
        if t.arity() != atom.arity() {
            continue;
        }
        for (term, value) in atom.terms.iter().zip(t.fields()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        continue 'outer;
                    }
                }
                Term::Var(v) => {
                    if let Some(bound) = bindings.get(v) {
                        if bound != value {
                            continue 'outer;
                        }
                    }
                    // unbound variable: wildcard
                }
            }
        }
        return true;
    }
    false
}

/// Construct a head tuple from bindings; aggregate positions carry the raw
/// value of the aggregated variable. The head relation arrives pre-interned
/// so no name is hashed per derived tuple.
fn head_tuple_from_bindings(
    head: &Head,
    head_rel: RelId,
    bindings: &Bindings,
    rule_name: Option<&str>,
) -> Result<Tuple> {
    let mut fields = Vec::with_capacity(head.terms.len());
    for term in &head.terms {
        let value = match term {
            HeadTerm::Plain(Term::Const(c)) => c.clone(),
            HeadTerm::Plain(Term::Var(v)) | HeadTerm::Agg(_, v) => {
                bindings.get(v).cloned().ok_or_else(|| {
                    Error::eval(format!(
                        "rule {}: head variable {v} is not bound by the body",
                        rule_name.unwrap_or("<unnamed>")
                    ))
                })?
            }
        };
        fields.push(value);
    }
    Ok(Tuple::from_rel(head_rel, fields))
}

/// Group raw head tuples of an aggregate rule and compute the aggregate.
///
/// `head` must contain exactly one aggregate term; plain head positions form
/// the group-by key. `head_rel` is the head relation's pre-interned id
/// (compiled plans carry it as [`RuleEval::head_rel`]), so per-batch calls
/// never touch the intern table.
pub fn apply_aggregate(head: &Head, head_rel: RelId, raw: &[Tuple]) -> Result<Vec<Tuple>> {
    let (func, _, agg_pos) = head
        .aggregate()
        .ok_or_else(|| Error::eval("apply_aggregate called on a non-aggregate head"))?;

    let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    for t in raw {
        let mut key = Vec::with_capacity(t.arity() - 1);
        for (i, v) in t.fields().iter().enumerate() {
            if i != agg_pos {
                key.push(v.clone());
            }
        }
        let agg_val = t
            .field(agg_pos)
            .cloned()
            .ok_or_else(|| Error::eval("aggregate position missing in raw tuple"))?;
        groups.entry(key).or_default().push(agg_val);
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, values) in groups {
        let agg_value = match func {
            AggFunc::Min => values
                .iter()
                .cloned()
                .min_by(|a, b| a.compare_numeric(b))
                .ok_or_else(|| Error::eval("empty aggregate group"))?,
            AggFunc::Max => values
                .iter()
                .cloned()
                .max_by(|a, b| a.compare_numeric(b))
                .ok_or_else(|| Error::eval("empty aggregate group"))?,
            AggFunc::Count => Value::Int(values.len() as i64),
            AggFunc::Sum => {
                let mut acc = dr_types::Cost::ZERO;
                for v in &values {
                    acc = acc
                        + v.as_cost().ok_or_else(|| Error::eval("sum over non-numeric value"))?;
                }
                Value::Cost(acc)
            }
        };
        // Reassemble fields in head order.
        let mut fields = Vec::with_capacity(head.terms.len());
        let mut key_iter = key.into_iter();
        for (i, _) in head.terms.iter().enumerate() {
            if i == agg_pos {
                fields.push(agg_value.clone());
            } else {
                fields
                    .push(key_iter.next().ok_or_else(|| Error::eval("group key arity mismatch"))?);
            }
        }
        out.push(Tuple::from_rel(head_rel, fields));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Whole-program evaluator
// ---------------------------------------------------------------------------

/// Configuration for the centralized evaluator.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Use semi-naïve evaluation (true, the default) or naïve re-evaluation
    /// of every rule each iteration (for the ablation benchmark).
    pub semi_naive: bool,
    /// Enable the aggregate-selections optimization of paper §7.1: tuples
    /// that cannot improve a downstream `min`/`max` aggregate are pruned as
    /// soon as they are derived.
    pub aggregate_selections: bool,
    /// Hard cap on fixpoint iterations per stratum; exceeded means the query
    /// does not terminate on this input (paper §6's unsafe queries).
    pub max_iterations: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { semi_naive: true, aggregate_selections: false, max_iterations: 100_000 }
    }
}

/// Statistics from one evaluator run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Total fixpoint iterations across all strata.
    pub iterations: usize,
    /// Number of rule evaluations performed.
    pub rule_firings: usize,
    /// Number of new tuples added to the database.
    pub tuples_derived: usize,
    /// Number of tuples suppressed by aggregate selections.
    pub tuples_pruned: usize,
    /// Number of strata evaluated.
    pub strata: usize,
}

/// The centralized stratified semi-naïve evaluator.
#[derive(Debug, Clone)]
pub struct Evaluator {
    program: Program,
    catalog: Catalog,
    stratification: Stratification,
    builtins: Builtins,
    config: EvalConfig,
    agg_selections: Vec<AggSelection>,
    /// One statically-planned [`RuleEval`] per program rule (same indexing
    /// as `program.rules`), built at construction. [`Evaluator::run`]
    /// re-plans against the database's cardinalities when it has any.
    compiled: Vec<RuleEval>,
}

impl Evaluator {
    /// Build an evaluator with default configuration and the standard
    /// builtin library.
    pub fn new(program: Program) -> Result<Evaluator> {
        Evaluator::with_config(program, EvalConfig::default())
    }

    /// Build an evaluator with a custom configuration.
    pub fn with_config(program: Program, config: EvalConfig) -> Result<Evaluator> {
        let catalog = Catalog::from_program(&program)?;
        let stratification = stratify(&program)?;
        let agg_selections = aggregate_selections(&program);
        let compiled = program.rules.iter().map(RuleEval::new).collect();
        Ok(Evaluator {
            program,
            catalog,
            stratification,
            builtins: Builtins::standard(),
            config,
            agg_selections,
            compiled,
        })
    }

    /// Replace the builtin function library (e.g. to register custom metric
    /// composition functions before running).
    pub fn set_builtins(&mut self, builtins: Builtins) {
        self.builtins = builtins;
    }

    /// The catalog derived from the program.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The statically-compiled plans, one per program rule.
    pub fn plans(&self) -> &[RuleEval] {
        &self.compiled
    }

    /// Run the program to fixpoint on `db`. Base tables must already be
    /// populated; facts from the program are inserted automatically.
    pub fn run(&self, db: &mut Database) -> Result<EvalStats> {
        let mut stats =
            EvalStats { strata: self.stratification.num_strata(), ..Default::default() };

        // Declare keys from pragmas so derived relations honour upserts.
        for (rel, keys) in &self.program.key_pragmas {
            db.declare_key(rel, keys.clone());
        }

        // Re-plan against the database's current cardinalities (populated
        // base tables make join ordering meaningful); fall back to the
        // static plans on an empty database.
        let card = db.cardinalities();
        let plans: Vec<RuleEval> = if card.is_empty() {
            self.compiled.clone()
        } else {
            self.program.rules.iter().map(|r| RuleEval::with_stats(r, &card)).collect()
        };

        // Declare the secondary indexes the plans will probe, so every join
        // hits an incrementally-maintained index instead of re-hashing
        // relation contents per rule firing.
        for plan in &plans {
            for (rel, field) in plan.probe_fields() {
                db.declare_index(rel, field);
            }
        }

        // Insert ground facts.
        for rule in &self.program.rules {
            if rule.is_fact() {
                let t = head_tuple_from_bindings(
                    &rule.head,
                    RelId::intern(&rule.head.relation),
                    &Bindings::new(),
                    rule.name.as_deref(),
                )?;
                if db.insert(t).added {
                    stats.tuples_derived += 1;
                }
            }
        }

        // Track best-so-far per aggregate-selection group.
        let mut best: HashMap<(RelId, Vec<Value>), Value> = HashMap::new();

        for stratum_rules in &self.stratification.strata_rules {
            let rules: Vec<&RuleEval> =
                stratum_rules.iter().map(|&i| &plans[i]).filter(|c| !c.rule().is_fact()).collect();
            if rules.is_empty() {
                continue;
            }
            let (agg_rules, normal_rules): (Vec<&RuleEval>, Vec<&RuleEval>) =
                rules.iter().partition(|c| c.rule().head.has_aggregate());

            // Aggregate rules read only lower strata: evaluate once.
            for plan in &agg_rules {
                stats.rule_firings += 1;
                let raw = plan.evaluate(&self.builtins, db, None)?;
                for t in apply_aggregate(&plan.rule().head, plan.head_rel(), &raw)? {
                    if db.insert(t).added {
                        stats.tuples_derived += 1;
                    }
                }
            }

            // Fixpoint over the stratum's ordinary rules.
            self.fixpoint(&normal_rules, db, &mut best, &mut stats)?;
        }
        Ok(stats)
    }

    fn fixpoint(
        &self,
        rules: &[&RuleEval],
        db: &mut Database,
        best: &mut HashMap<(RelId, Vec<Value>), Value>,
        stats: &mut EvalStats,
    ) -> Result<()> {
        if rules.is_empty() {
            return Ok(());
        }
        // Which relations are derived by this stratum (candidates for deltas).
        let stratum_derived: Vec<RelId> = rules.iter().map(|c| c.head_rel()).collect();

        // Iteration 0: evaluate every rule in full.
        let mut delta: HashMap<RelId, Vec<Tuple>> = HashMap::new();
        for plan in rules {
            stats.rule_firings += 1;
            let derived = plan.evaluate(&self.builtins, db, None)?;
            for t in derived {
                self.try_insert(db, t, best, &mut delta, stats);
            }
        }
        stats.iterations += 1;

        // Semi-naïve iterations.
        let mut iterations = 1usize;
        while !delta.is_empty() {
            if iterations >= self.config.max_iterations {
                return Err(Error::eval(format!(
                    "fixpoint did not terminate within {} iterations",
                    self.config.max_iterations
                )));
            }
            iterations += 1;
            stats.iterations += 1;

            let current_delta = std::mem::take(&mut delta);
            for plan in rules {
                if !self.config.semi_naive {
                    // Naïve mode: re-evaluate the whole rule.
                    stats.rule_firings += 1;
                    let derived = plan.evaluate(&self.builtins, db, None)?;
                    for t in derived {
                        self.try_insert(db, t, best, &mut delta, stats);
                    }
                    continue;
                }
                // Semi-naïve: one evaluation per positive occurrence of a
                // relation that changed this round.
                for (i, &rel) in plan.positive_rels().iter().enumerate() {
                    if !stratum_derived.contains(&rel) {
                        continue;
                    }
                    let Some(dt) = current_delta.get(&rel) else { continue };
                    if dt.is_empty() {
                        continue;
                    }
                    stats.rule_firings += 1;
                    let derived = plan.evaluate(&self.builtins, db, Some((i, dt)))?;
                    for t in derived {
                        self.try_insert(db, t, best, &mut delta, stats);
                    }
                }
            }
        }
        Ok(())
    }

    /// Insert a derived tuple, honouring aggregate selections; record it in
    /// the delta map when it is new.
    fn try_insert(
        &self,
        db: &mut Database,
        t: Tuple,
        best: &mut HashMap<(RelId, Vec<Value>), Value>,
        delta: &mut HashMap<RelId, Vec<Tuple>>,
        stats: &mut EvalStats,
    ) {
        if self.config.aggregate_selections {
            if let Some(sel) = self.agg_selections.iter().find(|s| s.input_relation == t.rel()) {
                let key: Vec<Value> =
                    sel.group_fields.iter().filter_map(|&i| t.field(i).cloned()).collect();
                if let Some(value) = t.field(sel.value_field) {
                    let map_key = (t.rel(), key);
                    match best.get(&map_key) {
                        Some(existing) => {
                            // ∞-cost derivations all tie; keeping every one
                            // enumerates the whole path space during §8
                            // poisoning. One ∞ tombstone per group carries
                            // the same information, so further ties
                            // collapse.
                            let tie_at_infinity =
                                value.is_infinite_cost() && existing.is_infinite_cost();
                            let keep = !tie_at_infinity
                                && match sel.func {
                                    AggFunc::Min => {
                                        value.compare_numeric(existing)
                                            != std::cmp::Ordering::Greater
                                    }
                                    AggFunc::Max => {
                                        value.compare_numeric(existing) != std::cmp::Ordering::Less
                                    }
                                    _ => true,
                                };
                            if !keep {
                                stats.tuples_pruned += 1;
                                return;
                            }
                            best.insert(map_key, value.clone());
                        }
                        None => {
                            best.insert(map_key, value.clone());
                        }
                    }
                }
            }
        }
        // Duplicate derivations dominate dense fixpoints; check membership
        // before paying the clone that a delta entry needs.
        if db.contains(&t) {
            return;
        }
        stats.tuples_derived += 1;
        let rel = t.rel();
        db.insert(t.clone());
        delta.entry(rel).or_default().push(t);
    }
}

#[cfg(test)]
#[path = "eval_tests.rs"]
mod tests;
