//! In-memory tuple storage with incremental secondary indexes.
//!
//! A [`Database`] holds one [`Table`] per relation, stored in a dense slab
//! indexed by the relation's interned [`RelId`] — looking a table up never
//! hashes or compares a relation *name*. Name-based entry points accept
//! `impl Into<RelId>`, so `db.scan("link")` and `db.scan(rel_id)` both work;
//! hot paths pass the id. Tables support set
//! insertion (for fixpoint evaluation) and keyed upserts (for the
//! incremental base-table updates of paper §8: "these updates result in the
//! addition of tuples into base tables, or the replacement of existing base
//! tuples that have the same unique key").
//!
//! # Storage layout
//!
//! Tuples live in an append-only slab (`Vec<Option<Tuple>>`); the slot
//! position is the tuple's [`TupleId`]. Secondary indexes (declared per
//! field with [`Table::declare_index`], normally driven by the probe fields
//! a rule plan chooses) map a field value to the ids of the tuples carrying
//! it. Removals blank the slot and leave index postings behind as
//! tombstones — a probe skips blanked slots for free, and the table compacts
//! (rebuilding slab and indexes) once dead slots outnumber live ones, so
//! maintenance is amortized O(1) per update.
//!
//! Readers never materialize: [`Table::scan`] and [`Table::probe`] return a
//! borrowing [`Scan`] cursor over the slab, which is also what the rule
//! evaluator's join loop consumes (see `RelationSource` in `eval`).

use dr_types::{RelId, Tuple, TupleId, TupleKey, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A borrowing cursor over stored tuples: the zero-copy replacement for the
/// old `scan(&self) -> Vec<Tuple>` API. Yields `&Tuple` without cloning.
///
/// The variants cover every way tuples are sourced during evaluation: whole
/// tables, index probes, semi-naïve delta slices, and chained overlays of
/// two stores (`Scan::chain`).
#[derive(Debug)]
pub enum Scan<'a> {
    /// No tuples.
    Empty,
    /// A slice of tuples (semi-naïve deltas).
    Slice(std::slice::Iter<'a, Tuple>),
    /// Every live slot of a table's slab.
    Slots(std::slice::Iter<'a, Option<Tuple>>),
    /// Index-probe hits: posting ids resolved against the slab (blanked
    /// slots are tombstoned postings and are skipped).
    Probe {
        /// The owning table's slab.
        slots: &'a [Option<Tuple>],
        /// Posting list of the probed value.
        ids: std::slice::Iter<'a, TupleId>,
    },
    /// Hits of a transient index over a tuple slice (the evaluator builds
    /// one per call over semi-naïve delta sets).
    Hits {
        /// The indexed slice.
        tuples: &'a [Tuple],
        /// Positions of the matching tuples within the slice.
        ids: std::slice::Iter<'a, usize>,
    },
    /// Two cursors chained back to back (local ∪ shared overlays).
    Chain(Box<Scan<'a>>, Box<Scan<'a>>),
}

impl<'a> Scan<'a> {
    /// Chain `self` with `other`, yielding all of `self` first.
    pub fn chain(self, other: Scan<'a>) -> Scan<'a> {
        match (self, other) {
            (Scan::Empty, s) | (s, Scan::Empty) => s,
            (a, b) => Scan::Chain(Box::new(a), Box::new(b)),
        }
    }
}

impl<'a> Iterator for Scan<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match self {
            Scan::Empty => None,
            Scan::Slice(it) => it.next(),
            Scan::Slots(it) => {
                for slot in it {
                    if let Some(t) = slot.as_ref() {
                        return Some(t);
                    }
                }
                None
            }
            Scan::Probe { slots, ids } => {
                for id in ids {
                    if let Some(t) = slots[id.index()].as_ref() {
                        return Some(t);
                    }
                }
                None
            }
            Scan::Hits { tuples, ids } => ids.next().map(|&i| &tuples[i]),
            Scan::Chain(a, b) => a.next().or_else(|| b.next()),
        }
    }
}

/// One relation's stored tuples plus its upsert key and secondary indexes.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Key field positions used for upserts; empty = set semantics.
    key_fields: Vec<usize>,
    /// Slab of tuples; the slot index is the tuple's [`TupleId`]. Slots are
    /// blanked on removal and only reused after compaction, so index
    /// postings never dangle onto a different tuple.
    slots: Vec<Option<Tuple>>,
    /// Exact-tuple lookup (contains / dedup / removal).
    ids: HashMap<Tuple, TupleId>,
    /// Key → current tuple id, maintained only when `key_fields` is
    /// non-empty.
    by_key: HashMap<TupleKey, TupleId>,
    /// Declared secondary indexes: field position → value → posting ids.
    /// Postings are append-only between compactions (removals tombstone).
    indexes: BTreeMap<usize, HashMap<Value, Vec<TupleId>>>,
    /// Number of blanked slots since the last compaction.
    dead: usize,
}

impl Table {
    /// Create a table with the given upsert key (empty = set semantics).
    pub fn with_key(key_fields: Vec<usize>) -> Table {
        Table { key_fields, ..Table::default() }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when the exact tuple is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.ids.contains_key(t)
    }

    /// Iterate over all tuples (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// All tuples, sorted (deterministic order for output / tests).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().cloned().collect();
        v.sort();
        v
    }

    /// Borrowing cursor over every stored tuple.
    pub fn scan(&self) -> Scan<'_> {
        Scan::Slots(self.slots.iter())
    }

    /// The tuple currently stored under `key`, if any (keyed tables only).
    pub fn get_by_key(&self, key: &TupleKey) -> Option<&Tuple> {
        self.by_key.get(key).and_then(|id| self.slots[id.index()].as_ref())
    }

    /// The field positions declared for upserts.
    pub fn key_fields(&self) -> &[usize] {
        &self.key_fields
    }

    /// Declare (and immediately build) a secondary index on `field`. A
    /// no-op when the index already exists. Probes on undeclared fields
    /// fall back to a full scan.
    pub fn declare_index(&mut self, field: usize) {
        if self.indexes.contains_key(&field) {
            return;
        }
        let mut index: HashMap<Value, Vec<TupleId>> = HashMap::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(t) = slot {
                if let Some(v) = t.field(field) {
                    index.entry(v.clone()).or_default().push(TupleId::new(i));
                }
            }
        }
        self.indexes.insert(field, index);
    }

    /// The field positions that currently have a secondary index.
    pub fn indexed_fields(&self) -> Vec<usize> {
        self.indexes.keys().copied().collect()
    }

    /// Number of distinct values in the secondary index on `field`, if one
    /// is declared. Tombstoned postings still count their key, so this is
    /// an (over-)estimate between compactions — fine for planning.
    pub fn distinct_count(&self, field: usize) -> Option<usize> {
        self.indexes.get(&field).map(HashMap::len)
    }

    /// Borrowing cursor over the tuples whose `field` equals `value`.
    ///
    /// Served from the secondary index when one is declared on `field`;
    /// otherwise falls back to a full scan (the contract is "at least the
    /// matching tuples" — join loops re-check the probe field on match, so
    /// over-approximation is safe).
    pub fn probe(&self, field: usize, value: &Value) -> Scan<'_> {
        match self.indexes.get(&field) {
            Some(index) => match index.get(value) {
                Some(ids) => Scan::Probe { slots: &self.slots, ids: ids.iter() },
                None => Scan::Empty,
            },
            None => self.scan(),
        }
    }

    /// Insert a tuple.
    ///
    /// With set semantics this is plain set insertion. With a declared key,
    /// a tuple whose key matches an existing tuple *replaces* it (upsert);
    /// the result reports both what was removed and whether anything new
    /// appeared, so callers can propagate deltas.
    pub fn insert(&mut self, t: Tuple) -> InsertOutcome {
        if self.ids.contains_key(&t) {
            return InsertOutcome { added: false, replaced: None };
        }
        let replaced = if self.key_fields.is_empty() {
            None
        } else {
            let key = t.key(&self.key_fields);
            match self.by_key.get(&key).copied() {
                Some(old_id) => {
                    let old = self.blank_slot(old_id);
                    self.ids.remove(&old);
                    Some(old)
                }
                None => None,
            }
        };
        let id = TupleId::new(self.slots.len());
        for (&field, index) in self.indexes.iter_mut() {
            if let Some(v) = t.field(field) {
                index.entry(v.clone()).or_default().push(id);
            }
        }
        if !self.key_fields.is_empty() {
            self.by_key.insert(t.key(&self.key_fields), id);
        }
        self.ids.insert(t.clone(), id);
        self.slots.push(Some(t));
        self.maybe_compact();
        InsertOutcome { added: true, replaced }
    }

    /// Remove a tuple exactly. Returns true when it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let Some(id) = self.ids.remove(t) else { return false };
        self.blank_slot(id);
        if !self.key_fields.is_empty() {
            self.by_key.remove(&t.key(&self.key_fields));
        }
        self.maybe_compact();
        true
    }

    /// Remove every tuple (declared key and indexes survive, emptied).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.ids.clear();
        self.by_key.clear();
        self.dead = 0;
        for index in self.indexes.values_mut() {
            index.clear();
        }
    }

    /// Tuples whose field `field` equals `value`.
    pub fn select_eq(&self, field: usize, value: &Value) -> Vec<Tuple> {
        self.probe(field, value).filter(|t| t.field(field) == Some(value)).cloned().collect()
    }

    /// Blank slot `id`, returning the tuple it held. Panics when the slot is
    /// already empty (internal invariant: callers hold a live id).
    fn blank_slot(&mut self, id: TupleId) -> Tuple {
        self.dead += 1;
        self.slots[id.index()].take().expect("live tuple id points at an occupied slot")
    }

    /// Rebuild slab, lookups, and indexes once tombstones dominate. The
    /// threshold keeps compaction amortized O(1) per removal.
    fn maybe_compact(&mut self) {
        if self.dead <= 16 || self.dead <= self.ids.len() {
            return;
        }
        let live: Vec<Tuple> = self.slots.drain(..).flatten().collect();
        self.ids.clear();
        self.by_key.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
        self.dead = 0;
        for (i, t) in live.iter().enumerate() {
            let id = TupleId::new(i);
            self.ids.insert(t.clone(), id);
            if !self.key_fields.is_empty() {
                self.by_key.insert(t.key(&self.key_fields), id);
            }
            for (&field, index) in self.indexes.iter_mut() {
                if let Some(v) = t.field(field) {
                    index.entry(v.clone()).or_default().push(id);
                }
            }
        }
        self.slots = live.into_iter().map(Some).collect();
    }
}

/// Result of a [`Table::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// True when the table's contents changed (a new tuple is now stored).
    pub added: bool,
    /// The tuple displaced by a keyed upsert, if any.
    pub replaced: Option<Tuple>,
}

/// Table cardinality statistics snapshotted from a [`Database`] for the
/// join planner: row counts per relation plus distinct-value counts per
/// indexed field (an index's selectivity is `rows / distinct`).
///
/// Relations with no entry are *unknown*, not empty — derived relations are
/// usually empty at planning time, and treating them as free would order
/// them first for exactly the wrong reason.
#[derive(Debug, Clone, Default)]
pub struct CardStats {
    rows: HashMap<RelId, usize>,
    distinct: HashMap<(RelId, usize), usize>,
    /// Declared upsert-key fields per keyed relation. Unlike row counts,
    /// keys are schema: they are reported even for empty tables, so plans
    /// can compile key probes against derived relations that only fill up
    /// during the fixpoint.
    keys: HashMap<RelId, Vec<usize>>,
}

impl CardStats {
    /// An empty (everything-unknown) set of statistics.
    pub fn new() -> CardStats {
        CardStats::default()
    }

    /// True when no relation has a known row count.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Known row count of `rel`, if any.
    pub fn rows(&self, rel: RelId) -> Option<usize> {
        self.rows.get(&rel).copied()
    }

    /// Known distinct-value count of `rel.field`, if that field is indexed.
    pub fn distinct(&self, rel: RelId, field: usize) -> Option<usize> {
        self.distinct.get(&(rel, field)).copied()
    }

    /// Record a row count (tests and external planners build synthetic
    /// stats through this).
    pub fn set_rows(&mut self, rel: impl Into<RelId>, rows: usize) {
        self.rows.insert(rel.into(), rows);
    }

    /// Record a distinct-value count for `rel.field`.
    pub fn set_distinct(&mut self, rel: impl Into<RelId>, field: usize, distinct: usize) {
        self.distinct.insert((rel.into(), field), distinct);
    }

    /// The declared upsert-key fields of `rel`, if it is keyed. A keyed
    /// relation stores at most one tuple per key projection, so a probe
    /// that binds every key field yields at most one candidate.
    pub fn key_of(&self, rel: RelId) -> Option<&[usize]> {
        self.keys.get(&rel).map(Vec::as_slice)
    }

    /// Record the upsert-key fields of a keyed relation.
    pub fn set_key(&mut self, rel: impl Into<RelId>, fields: Vec<usize>) {
        self.keys.insert(rel.into(), fields);
    }
}

/// A collection of tables, one per relation, indexed densely by [`RelId`].
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// Slot `rel.index()` holds the table of relation `rel`. Slots for ids
    /// this database never touched stay `None`.
    tables: Vec<Option<Table>>,
    /// Interned ids of the relations that currently have a table, in
    /// creation order (kept so enumeration never walks empty slots).
    present: Vec<RelId>,
    /// Indexes declared before their relation had a table (they are applied
    /// when the table first appears).
    pending_indexes: HashMap<RelId, BTreeSet<usize>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The table slot for `rel`, if this database ever created it.
    fn slot(&self, rel: RelId) -> Option<&Table> {
        self.tables.get(rel.index()).and_then(Option::as_ref)
    }

    /// The table for `rel`, creating it (with pending index declarations
    /// applied) when absent. The hot path — table already present — is a
    /// bounds check and a slot read; pending declarations are only
    /// consulted on first creation.
    fn slot_mut_or_create(&mut self, rel: RelId) -> &mut Table {
        if self.tables.len() <= rel.index() {
            self.tables.resize_with(rel.index() + 1, || None);
        }
        if self.tables[rel.index()].is_none() {
            let mut table = Table::default();
            if let Some(fields) = self.pending_indexes.remove(&rel) {
                for f in fields {
                    table.declare_index(f);
                }
            }
            self.tables[rel.index()] = Some(table);
            self.present.push(rel);
        }
        self.tables[rel.index()].as_mut().expect("just ensured")
    }

    /// Declare the upsert key of a relation, creating its table if needed.
    /// Must be called before tuples of that relation are inserted if keyed
    /// semantics are wanted.
    pub fn declare_key(&mut self, relation: impl Into<RelId>, key_fields: Vec<usize>) {
        let rel = relation.into();
        let table = self.slot_mut_or_create(rel);
        if table.is_empty() {
            let indexed = table.indexed_fields();
            *table = Table::with_key(key_fields);
            for f in indexed {
                table.declare_index(f);
            }
        } else {
            // Rebuild under the new key, preserving declared indexes.
            let tuples: Vec<Tuple> = table.iter().cloned().collect();
            let mut new_table = Table::with_key(key_fields);
            for f in table.indexed_fields() {
                new_table.declare_index(f);
            }
            for t in tuples {
                new_table.insert(t);
            }
            *table = new_table;
        }
    }

    /// Declare a secondary index on `relation.field`. When the relation has
    /// no table yet the declaration is remembered and applied as soon as
    /// the table exists, so callers need not order declarations.
    pub fn declare_index(&mut self, relation: impl Into<RelId>, field: usize) {
        let rel = relation.into();
        match self.tables.get_mut(rel.index()).and_then(Option::as_mut) {
            Some(table) => table.declare_index(field),
            None => {
                self.pending_indexes.entry(rel).or_default().insert(field);
            }
        }
    }

    /// The table for `relation`, if it exists.
    pub fn table(&self, relation: impl Into<RelId>) -> Option<&Table> {
        self.slot(relation.into())
    }

    /// Snapshot cardinality statistics for the join planner: row counts for
    /// every non-empty relation, distinct counts for every indexed field.
    /// Empty tables are deliberately left unknown (see [`CardStats`]).
    pub fn cardinalities(&self) -> CardStats {
        let mut stats = CardStats::new();
        for &rel in &self.present {
            let Some(table) = self.slot(rel) else { continue };
            if !table.key_fields().is_empty() {
                stats.set_key(rel, table.key_fields().to_vec());
            }
            if table.is_empty() {
                continue;
            }
            stats.set_rows(rel, table.len());
            for field in table.indexed_fields() {
                if let Some(d) = table.distinct_count(field) {
                    stats.set_distinct(rel, field, d);
                }
            }
        }
        stats
    }

    /// Insert a tuple into its relation's table (created on demand with set
    /// semantics).
    pub fn insert(&mut self, t: Tuple) -> InsertOutcome {
        self.slot_mut_or_create(t.rel()).insert(t)
    }

    /// Remove an exact tuple. Returns true when it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tables
            .get_mut(t.rel().index())
            .and_then(Option::as_mut)
            .map(|tb| tb.remove(t))
            .unwrap_or(false)
    }

    /// Borrowing cursor over all tuples of `relation`.
    pub fn scan(&self, relation: impl Into<RelId>) -> Scan<'_> {
        self.slot(relation.into()).map(Table::scan).unwrap_or(Scan::Empty)
    }

    /// Borrowing cursor over the tuples of `relation` whose `field` equals
    /// `value` (index-served when declared; see [`Table::probe`]).
    pub fn probe(&self, relation: impl Into<RelId>, field: usize, value: &Value) -> Scan<'_> {
        self.slot(relation.into()).map(|t| t.probe(field, value)).unwrap_or(Scan::Empty)
    }

    /// All tuples of a relation (empty if the relation has no table).
    /// Materializes; hot paths should prefer [`Database::scan`].
    pub fn tuples(&self, relation: impl Into<RelId>) -> Vec<Tuple> {
        self.slot(relation.into()).map(|t| t.iter().cloned().collect()).unwrap_or_default()
    }

    /// All tuples of a relation in sorted order.
    pub fn sorted_tuples(&self, relation: impl Into<RelId>) -> Vec<Tuple> {
        self.slot(relation.into()).map(|t| t.sorted()).unwrap_or_default()
    }

    /// The tuple stored under `key`, if any (keyed relations only). The key
    /// carries its relation's interned id, so no separate relation argument
    /// is needed.
    pub fn get_by_key(&self, key: &TupleKey) -> Option<&Tuple> {
        self.slot(key.rel()).and_then(|t| t.get_by_key(key))
    }

    /// Borrowing cursor over (at least) the tuples whose declared-key
    /// projection equals `key`. When the stored table's key matches
    /// `fields` this is an upsert-map lookup (at most one hit); when the
    /// key layout changed since the caller planned, it over-approximates
    /// with a single-field probe — safe, since join loops re-check every
    /// field on match.
    pub fn probe_key(&self, key: &TupleKey, fields: &[usize]) -> Scan<'_> {
        let Some(table) = self.slot(key.rel()) else { return Scan::Empty };
        if table.key_fields() == fields {
            return match table.get_by_key(key) {
                Some(t) => Scan::Slice(std::slice::from_ref(t).iter()),
                None => Scan::Empty,
            };
        }
        match (fields.first(), key.values().first()) {
            (Some(&f), Some(v)) => table.probe(f, v),
            _ => table.scan(),
        }
    }

    /// Number of tuples stored in `relation`.
    pub fn count(&self, relation: impl Into<RelId>) -> usize {
        self.slot(relation.into()).map(|t| t.len()).unwrap_or(0)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.present.iter().filter_map(|&r| self.slot(r)).map(Table::len).sum()
    }

    /// True when the exact tuple is stored.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.slot(t.rel()).map(|tb| tb.contains(t)).unwrap_or(false)
    }

    /// Drop every tuple of a relation (the table, its key, and its indexes
    /// survive).
    pub fn clear_relation(&mut self, relation: impl Into<RelId>) {
        let rel = relation.into();
        if let Some(t) = self.tables.get_mut(rel.index()).and_then(Option::as_mut) {
            t.clear();
        }
    }

    /// Drop a relation's table entirely — tuples, upsert key, and secondary
    /// indexes. Unlike [`Database::clear_relation`] nothing survives: the
    /// slot returns to the never-touched state, so long-lived stores (the
    /// per-node cross-query cache of a resident service) shed the whole
    /// footprint of a torn-down query instead of keeping empty index
    /// skeletons around forever. Returns the number of tuples dropped.
    pub fn drop_relation(&mut self, relation: impl Into<RelId>) -> usize {
        let rel = relation.into();
        self.pending_indexes.remove(&rel);
        let dropped = match self.tables.get_mut(rel.index()) {
            Some(slot) => slot.take().map(|t| t.len()).unwrap_or(0),
            None => return 0,
        };
        self.present.retain(|&r| r != rel);
        dropped
    }

    /// Number of relations that currently have a table.
    pub fn relation_count(&self) -> usize {
        self.present.len()
    }

    /// Names of all relations that currently have a table, sorted (the
    /// dense id order is an interning artifact; names keep enumeration
    /// deterministic for output and tests).
    pub fn relations(&self) -> impl Iterator<Item = &'static str> {
        let mut names: Vec<&'static str> = self.present.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_types::NodeId;

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new(
            "link",
            vec![Value::Node(NodeId::new(s)), Value::Node(NodeId::new(d)), Value::from(c)],
        )
    }

    #[test]
    fn set_semantics_deduplicate() {
        let mut db = Database::new();
        assert!(db.insert(link(1, 2, 3.0)).added);
        assert!(!db.insert(link(1, 2, 3.0)).added);
        assert!(db.insert(link(1, 2, 4.0)).added); // different cost = different tuple
        assert_eq!(db.count("link"), 2);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn keyed_upsert_replaces_matching_key() {
        let mut db = Database::new();
        db.declare_key("link", vec![0, 1]);
        assert!(db.insert(link(1, 2, 3.0)).added);
        let out = db.insert(link(1, 2, 9.0));
        assert!(out.added);
        assert_eq!(out.replaced, Some(link(1, 2, 3.0)));
        assert_eq!(db.count("link"), 1);
        assert!(db.contains(&link(1, 2, 9.0)));
        assert!(!db.contains(&link(1, 2, 3.0)));
        // identical re-insert is a no-op
        let out = db.insert(link(1, 2, 9.0));
        assert!(!out.added);
        assert!(out.replaced.is_none());
    }

    #[test]
    fn declare_key_rebuilds_existing_table() {
        let mut db = Database::new();
        db.insert(link(1, 2, 3.0));
        db.insert(link(1, 2, 4.0));
        assert_eq!(db.count("link"), 2);
        db.declare_key("link", vec![0, 1]);
        // one of the two survives; a further upsert keeps the table at 1
        assert_eq!(db.count("link"), 1);
        db.insert(link(1, 2, 7.0));
        assert_eq!(db.count("link"), 1);
    }

    #[test]
    fn remove_and_clear() {
        let mut db = Database::new();
        db.declare_key("link", vec![0, 1]);
        db.insert(link(1, 2, 3.0));
        db.insert(link(2, 3, 1.0));
        assert!(db.remove(&link(1, 2, 3.0)));
        assert!(!db.remove(&link(1, 2, 3.0)));
        assert_eq!(db.count("link"), 1);
        // after remove the key slot is free again
        assert!(db.insert(link(1, 2, 5.0)).replaced.is_none());
        db.clear_relation("link");
        assert_eq!(db.count("link"), 0);
        assert!(!db.remove(&Tuple::new("nosuch", vec![])));
    }

    #[test]
    fn select_eq_filters_by_field() {
        let mut db = Database::new();
        db.insert(link(1, 2, 3.0));
        db.insert(link(1, 3, 4.0));
        db.insert(link(2, 3, 5.0));
        let t = db.table("link").unwrap();
        let from1 = t.select_eq(0, &Value::Node(NodeId::new(1)));
        assert_eq!(from1.len(), 2);
        let to3 = t.select_eq(1, &Value::Node(NodeId::new(3)));
        assert_eq!(to3.len(), 2);
        assert!(t.select_eq(0, &Value::Node(NodeId::new(9))).is_empty());
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut db = Database::new();
        db.insert(link(3, 4, 1.0));
        db.insert(link(1, 2, 1.0));
        db.insert(link(2, 3, 1.0));
        let sorted = db.sorted_tuples("link");
        assert_eq!(sorted.len(), 3);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert!(db.sorted_tuples("nosuch").is_empty());
    }

    #[test]
    fn relations_lists_tables() {
        let mut db = Database::new();
        db.insert(link(1, 2, 1.0));
        db.insert(Tuple::new("path", vec![Value::Int(1)]));
        let rels: Vec<&str> = db.relations().collect();
        assert_eq!(rels, vec!["link", "path"]);
    }

    #[test]
    fn probe_uses_declared_index() {
        let mut db = Database::new();
        db.declare_index("link", 0);
        db.insert(link(1, 2, 3.0));
        db.insert(link(1, 3, 4.0));
        db.insert(link(2, 3, 5.0));
        let hits: Vec<&Tuple> = db.probe("link", 0, &Value::Node(NodeId::new(1))).collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|t| t.node_at(0) == Some(NodeId::new(1))));
        // Probe on an un-indexed field over-approximates (full scan).
        assert_eq!(db.probe("link", 1, &Value::Node(NodeId::new(3))).count(), 3);
        // Unknown value on an indexed field is empty, as is an unknown
        // relation.
        assert_eq!(db.probe("link", 0, &Value::Node(NodeId::new(9))).count(), 0);
        assert_eq!(db.probe("nosuch", 0, &Value::Int(0)).count(), 0);
    }

    #[test]
    fn index_declared_before_table_exists_applies_on_first_insert() {
        let mut db = Database::new();
        db.declare_index("link", 1);
        db.insert(link(1, 3, 1.0));
        db.insert(link(2, 3, 1.0));
        db.insert(link(2, 4, 1.0));
        assert_eq!(db.table("link").unwrap().indexed_fields(), vec![1]);
        let hits: Vec<&Tuple> = db.probe("link", 1, &Value::Node(NodeId::new(3))).collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_survives_upserts_and_removals() {
        let mut db = Database::new();
        db.declare_key("link", vec![0, 1]);
        db.declare_index("link", 0);
        db.insert(link(1, 2, 3.0));
        db.insert(link(1, 3, 4.0));
        // Upsert replaces — the index must stop reporting the old tuple.
        db.insert(link(1, 2, 9.0));
        let hits: Vec<&Tuple> = db.probe("link", 0, &Value::Node(NodeId::new(1))).collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&&link(1, 2, 9.0)));
        assert!(!hits.contains(&&link(1, 2, 3.0)));
        db.remove(&link(1, 3, 4.0));
        assert_eq!(db.probe("link", 0, &Value::Node(NodeId::new(1))).count(), 1);
    }

    #[test]
    fn compaction_preserves_contents_and_indexes() {
        let mut db = Database::new();
        db.declare_key("pair", vec![0]);
        db.declare_index("pair", 1);
        // Churn one key hard enough to trigger compaction several times.
        for i in 0..200i64 {
            db.insert(Tuple::new("pair", vec![Value::Int(7), Value::Int(i % 3)]));
        }
        assert_eq!(db.count("pair"), 1);
        let last = Tuple::new("pair", vec![Value::Int(7), Value::Int(199 % 3)]);
        assert!(db.contains(&last));
        let hits: Vec<&Tuple> = db.probe("pair", 1, &Value::Int(199 % 3)).collect();
        assert_eq!(hits, vec![&last]);
        // The slab actually shrank (compaction ran).
        assert!(db.table("pair").unwrap().slots.len() < 100);
    }

    #[test]
    fn scan_chain_concatenates() {
        let mut a = Database::new();
        let mut b = Database::new();
        a.insert(link(1, 2, 1.0));
        b.insert(link(3, 4, 1.0));
        let chained: Vec<&Tuple> = a.scan("link").chain(b.scan("link")).collect();
        assert_eq!(chained.len(), 2);
        assert_eq!(a.scan("nosuch").chain(b.scan("link")).count(), 1);
    }

    #[test]
    fn get_by_key_returns_current_tuple() {
        let mut db = Database::new();
        db.declare_key("link", vec![0, 1]);
        db.insert(link(1, 2, 3.0));
        let key = link(1, 2, 99.0).key(&[0, 1]);
        assert_eq!(db.get_by_key(&key), Some(&link(1, 2, 3.0)));
        db.insert(link(1, 2, 9.0));
        assert_eq!(db.get_by_key(&key), Some(&link(1, 2, 9.0)));
        db.remove(&link(1, 2, 9.0));
        assert_eq!(db.get_by_key(&key), None);
    }
}
