//! In-memory tuple storage.
//!
//! A [`Database`] holds one [`Table`] per relation. Tables support set
//! insertion (for fixpoint evaluation) and keyed upserts (for the
//! incremental base-table updates of paper §8: "these updates result in the
//! addition of tuples into base tables, or the replacement of existing base
//! tuples that have the same unique key").

use dr_types::{Tuple, TupleKey, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One relation's stored tuples plus its upsert key.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Key field positions used for upserts; empty = set semantics.
    key_fields: Vec<usize>,
    /// All live tuples.
    tuples: HashSet<Tuple>,
    /// Key → current tuple, maintained only when `key_fields` is non-empty.
    by_key: HashMap<TupleKey, Tuple>,
}

impl Table {
    /// Create a table with the given upsert key (empty = set semantics).
    pub fn with_key(key_fields: Vec<usize>) -> Table {
        Table { key_fields, ..Table::default() }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True when the exact tuple is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over all tuples (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples, sorted (deterministic order for output / tests).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Insert a tuple.
    ///
    /// With set semantics this is plain set insertion. With a declared key,
    /// a tuple whose key matches an existing tuple *replaces* it (upsert);
    /// the result reports both what was removed and whether anything new
    /// appeared, so callers can propagate deltas.
    pub fn insert(&mut self, t: Tuple) -> InsertOutcome {
        if self.key_fields.is_empty() {
            let added = self.tuples.insert(t);
            return InsertOutcome { added, replaced: None };
        }
        let key = t.key(&self.key_fields);
        match self.by_key.get(&key) {
            Some(existing) if *existing == t => InsertOutcome { added: false, replaced: None },
            Some(existing) => {
                let old = existing.clone();
                self.tuples.remove(&old);
                self.tuples.insert(t.clone());
                self.by_key.insert(key, t);
                InsertOutcome { added: true, replaced: Some(old) }
            }
            None => {
                self.tuples.insert(t.clone());
                self.by_key.insert(key, t);
                InsertOutcome { added: true, replaced: None }
            }
        }
    }

    /// Remove a tuple exactly. Returns true when it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let removed = self.tuples.remove(t);
        if removed && !self.key_fields.is_empty() {
            self.by_key.remove(&t.key(&self.key_fields));
        }
        removed
    }

    /// Remove every tuple.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.by_key.clear();
    }

    /// Tuples whose field `field` equals `value`.
    pub fn select_eq(&self, field: usize, value: &Value) -> Vec<Tuple> {
        self.tuples.iter().filter(|t| t.field(field) == Some(value)).cloned().collect()
    }
}

/// Result of a [`Table::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// True when the table's contents changed (a new tuple is now stored).
    pub added: bool,
    /// The tuple displaced by a keyed upsert, if any.
    pub replaced: Option<Tuple>,
}

/// A collection of tables, one per relation.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Declare the upsert key of a relation, creating its table if needed.
    /// Must be called before tuples of that relation are inserted if keyed
    /// semantics are wanted.
    pub fn declare_key(&mut self, relation: &str, key_fields: Vec<usize>) {
        let table = self.tables.entry(relation.to_string()).or_default();
        if table.is_empty() {
            *table = Table::with_key(key_fields);
        } else {
            // Rebuild under the new key.
            let tuples: Vec<Tuple> = table.iter().cloned().collect();
            let mut new_table = Table::with_key(key_fields);
            for t in tuples {
                new_table.insert(t);
            }
            *table = new_table;
        }
    }

    /// The table for `relation`, if it exists.
    pub fn table(&self, relation: &str) -> Option<&Table> {
        self.tables.get(relation)
    }

    /// Insert a tuple into its relation's table (created on demand with set
    /// semantics).
    pub fn insert(&mut self, t: Tuple) -> InsertOutcome {
        self.tables.entry(t.relation().to_string()).or_default().insert(t)
    }

    /// Remove an exact tuple. Returns true when it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tables.get_mut(t.relation()).map(|tb| tb.remove(t)).unwrap_or(false)
    }

    /// All tuples of a relation (empty if the relation has no table).
    pub fn tuples(&self, relation: &str) -> Vec<Tuple> {
        self.tables.get(relation).map(|t| t.iter().cloned().collect()).unwrap_or_default()
    }

    /// All tuples of a relation in sorted order.
    pub fn sorted_tuples(&self, relation: &str) -> Vec<Tuple> {
        self.tables.get(relation).map(|t| t.sorted()).unwrap_or_default()
    }

    /// Number of tuples stored in `relation`.
    pub fn count(&self, relation: &str) -> usize {
        self.tables.get(relation).map(|t| t.len()).unwrap_or(0)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// True when the exact tuple is stored.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tables.get(t.relation()).map(|tb| tb.contains(t)).unwrap_or(false)
    }

    /// Drop every tuple of a relation (the table and its key survive).
    pub fn clear_relation(&mut self, relation: &str) {
        if let Some(t) = self.tables.get_mut(relation) {
            t.clear();
        }
    }

    /// Names of all relations that currently have a table.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_types::NodeId;

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new(
            "link",
            vec![Value::Node(NodeId::new(s)), Value::Node(NodeId::new(d)), Value::from(c)],
        )
    }

    #[test]
    fn set_semantics_deduplicate() {
        let mut db = Database::new();
        assert!(db.insert(link(1, 2, 3.0)).added);
        assert!(!db.insert(link(1, 2, 3.0)).added);
        assert!(db.insert(link(1, 2, 4.0)).added); // different cost = different tuple
        assert_eq!(db.count("link"), 2);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn keyed_upsert_replaces_matching_key() {
        let mut db = Database::new();
        db.declare_key("link", vec![0, 1]);
        assert!(db.insert(link(1, 2, 3.0)).added);
        let out = db.insert(link(1, 2, 9.0));
        assert!(out.added);
        assert_eq!(out.replaced, Some(link(1, 2, 3.0)));
        assert_eq!(db.count("link"), 1);
        assert!(db.contains(&link(1, 2, 9.0)));
        assert!(!db.contains(&link(1, 2, 3.0)));
        // identical re-insert is a no-op
        let out = db.insert(link(1, 2, 9.0));
        assert!(!out.added);
        assert!(out.replaced.is_none());
    }

    #[test]
    fn declare_key_rebuilds_existing_table() {
        let mut db = Database::new();
        db.insert(link(1, 2, 3.0));
        db.insert(link(1, 2, 4.0));
        assert_eq!(db.count("link"), 2);
        db.declare_key("link", vec![0, 1]);
        // one of the two survives; a further upsert keeps the table at 1
        assert_eq!(db.count("link"), 1);
        db.insert(link(1, 2, 7.0));
        assert_eq!(db.count("link"), 1);
    }

    #[test]
    fn remove_and_clear() {
        let mut db = Database::new();
        db.declare_key("link", vec![0, 1]);
        db.insert(link(1, 2, 3.0));
        db.insert(link(2, 3, 1.0));
        assert!(db.remove(&link(1, 2, 3.0)));
        assert!(!db.remove(&link(1, 2, 3.0)));
        assert_eq!(db.count("link"), 1);
        // after remove the key slot is free again
        assert!(db.insert(link(1, 2, 5.0)).replaced.is_none());
        db.clear_relation("link");
        assert_eq!(db.count("link"), 0);
        assert!(!db.remove(&Tuple::new("nosuch", vec![])));
    }

    #[test]
    fn select_eq_filters_by_field() {
        let mut db = Database::new();
        db.insert(link(1, 2, 3.0));
        db.insert(link(1, 3, 4.0));
        db.insert(link(2, 3, 5.0));
        let t = db.table("link").unwrap();
        let from1 = t.select_eq(0, &Value::Node(NodeId::new(1)));
        assert_eq!(from1.len(), 2);
        let to3 = t.select_eq(1, &Value::Node(NodeId::new(3)));
        assert_eq!(to3.len(), 2);
        assert!(t.select_eq(0, &Value::Node(NodeId::new(9))).is_empty());
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut db = Database::new();
        db.insert(link(3, 4, 1.0));
        db.insert(link(1, 2, 1.0));
        db.insert(link(2, 3, 1.0));
        let sorted = db.sorted_tuples("link");
        assert_eq!(sorted.len(), 3);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert!(db.sorted_tuples("nosuch").is_empty());
    }

    #[test]
    fn relations_lists_tables() {
        let mut db = Database::new();
        db.insert(link(1, 2, 1.0));
        db.insert(Tuple::new("path", vec![Value::Int(1)]));
        let rels: Vec<&str> = db.relations().collect();
        assert_eq!(rels, vec!["link", "path"]);
    }
}
