//! Abstract syntax for the declarative routing Datalog dialect.
//!
//! A [`Program`] is a set of named [`Rule`]s plus optional query atoms and
//! ground facts. Each rule has a [`Head`] (possibly containing aggregate
//! terms such as `min<C>`) and a body of [`Literal`]s: positive or negated
//! relation atoms, comparisons, and assignments whose right-hand sides may
//! call built-in functions.
//!
//! Location annotations (`@`) mark which argument of an atom is the network
//! address that stores the tuple — the underlined field in the paper's
//! notation. They are semantically irrelevant for centralized evaluation and
//! drive rule localization in the distributed planner (`dr-core`).

use dr_types::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A term appearing in an atom argument position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, conventionally starting with an upper-case letter.
    Var(String),
    /// A ground constant.
    Const(Value),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Convenience constructor for a constant term.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// True when the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relation atom: `path(@S,D,P,C)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation (table) name.
    pub relation: String,
    /// Argument terms in positional order.
    pub terms: Vec<Term>,
    /// Index of the `@`-annotated location argument, if any.
    pub location: Option<usize>,
}

impl Atom {
    /// Build an atom without a location annotation.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom { relation: relation.into(), terms, location: None }
    }

    /// Build an atom whose `loc`-th argument is the storage address.
    pub fn with_location(relation: impl Into<String>, terms: Vec<Term>, loc: usize) -> Atom {
        Atom { relation: relation.into(), terms, location: Some(loc) }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The variable that names this atom's storage location, if the location
    /// argument is a variable.
    pub fn location_var(&self) -> Option<&str> {
        self.location.and_then(|i| self.terms.get(i)).and_then(Term::as_var)
    }

    /// All variable names appearing in the atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    /// True when the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if Some(i) == self.location {
                write!(f, "@")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators usable in rule bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=` used as an equality test (when both sides are bound).
    Eq,
    /// `!=` (the paper's `≠`).
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Evaluate the comparison on two values; numeric types compare
    /// numerically, everything else structurally.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        use std::cmp::Ordering::*;
        let ord = lhs.compare_numeric(rhs);
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic operators usable in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition (saturating on infinite costs).
    Add,
    /// Subtraction (clamped at zero for costs).
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// An expression: a term, a built-in function call, or arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A bare term (variable or constant).
    Term(Term),
    /// A call to a built-in function, e.g. `f_prepend(S,P2)`.
    Call {
        /// Function name (starts with `f_` by convention).
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary arithmetic, e.g. `C1 + C2`.
    BinOp {
        /// The operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a variable expression.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Term(Term::var(name))
    }

    /// Convenience constructor for a constant expression.
    pub fn constant(v: impl Into<Value>) -> Expr {
        Expr::Term(Term::constant(v))
    }

    /// Convenience constructor for a function call.
    pub fn call(func: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call { func: func.into(), args }
    }

    /// Collect every variable mentioned by the expression into `out`.
    pub fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Term(Term::Var(v)) => {
                if !out.contains(&v.as_str()) {
                    out.push(v);
                }
            }
            Expr::Term(Term::Const(_)) => {}
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::BinOp { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
        }
    }

    /// The variables mentioned by the expression.
    pub fn variables(&self) -> Vec<&str> {
        let mut v = Vec::new();
        self.collect_vars(&mut v);
        v
    }

    /// True when the expression contains a function call anywhere.
    pub fn has_call(&self) -> bool {
        match self {
            Expr::Term(_) => false,
            Expr::Call { .. } => true,
            Expr::BinOp { lhs, rhs, .. } => lhs.has_call() || rhs.has_call(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t}"),
            Expr::Call { func, args } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::BinOp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A positive relation atom that must be satisfied.
    Atom(Atom),
    /// A negated relation atom (`!p(...)`, the paper's `¬p(...)`); satisfied
    /// when no matching tuple exists. Requires stratification.
    NegAtom(Atom),
    /// A comparison between two expressions, e.g. `W != S` or `C < 10`.
    Compare {
        /// Comparison operator.
        op: CompareOp,
        /// Left expression.
        lhs: Expr,
        /// Right expression.
        rhs: Expr,
    },
    /// An assignment `X = expr`; binds `X` if unbound, otherwise acts as an
    /// equality test (this mirrors the paper's use of `=`).
    Assign {
        /// Variable being bound.
        var: String,
        /// Defining expression.
        expr: Expr,
    },
}

impl Literal {
    /// The atom, if the literal is a positive atom.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// True for the non-atom body literals (assignments and comparisons) —
    /// the constraints the compiled evaluator schedules between joins.
    pub fn is_constraint(&self) -> bool {
        matches!(self, Literal::Assign { .. } | Literal::Compare { .. })
    }

    /// All variables referenced by the literal.
    pub fn variables(&self) -> Vec<&str> {
        match self {
            Literal::Atom(a) | Literal::NegAtom(a) => a.variables(),
            Literal::Compare { lhs, rhs, .. } => {
                let mut v = lhs.variables();
                for x in rhs.variables() {
                    if !v.contains(&x) {
                        v.push(x);
                    }
                }
                v
            }
            Literal::Assign { var, expr } => {
                let mut v = vec![var.as_str()];
                for x in expr.variables() {
                    if !v.contains(&x) {
                        v.push(x);
                    }
                }
                v
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom(a) => write!(f, "{a}"),
            Literal::NegAtom(a) => write!(f, "!{a}"),
            Literal::Compare { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Literal::Assign { var, expr } => write!(f, "{var} = {expr}"),
        }
    }
}

/// Aggregate functions usable in rule heads (paper's `min<C>`, `AGG<C>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Minimum of the aggregated values.
    Min,
    /// Maximum of the aggregated values.
    Max,
    /// Count of derivations per group.
    Count,
    /// Sum of the aggregated values.
    Sum,
}

impl AggFunc {
    /// Parse an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            _ => None,
        }
    }

    /// True for aggregates whose running value can prune dominated inputs
    /// (the prerequisite for the paper's aggregate-selection optimization).
    pub fn is_monotonic_selection(self) -> bool {
        matches!(self, AggFunc::Min | AggFunc::Max)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
        };
        write!(f, "{s}")
    }
}

/// A term in a rule head: either a plain term or an aggregate over a body
/// variable (`min<C>`).
#[derive(Debug, Clone, PartialEq)]
pub enum HeadTerm {
    /// An ordinary term copied from the body bindings.
    Plain(Term),
    /// An aggregate of a body variable across all derivations that agree on
    /// the plain head terms (the group-by key).
    Agg(AggFunc, String),
}

impl HeadTerm {
    /// The plain term, if this head term is not an aggregate.
    pub fn as_plain(&self) -> Option<&Term> {
        match self {
            HeadTerm::Plain(t) => Some(t),
            HeadTerm::Agg(..) => None,
        }
    }
}

impl fmt::Display for HeadTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadTerm::Plain(t) => write!(f, "{t}"),
            HeadTerm::Agg(func, v) => write!(f, "{func}<{v}>"),
        }
    }
}

/// A rule head: relation, head terms, optional location annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Head {
    /// Relation being defined.
    pub relation: String,
    /// Head terms in positional order.
    pub terms: Vec<HeadTerm>,
    /// Index of the `@`-annotated location argument, if any.
    pub location: Option<usize>,
}

impl Head {
    /// Build a head without aggregates from plain terms.
    pub fn plain(relation: impl Into<String>, terms: Vec<Term>, location: Option<usize>) -> Head {
        Head {
            relation: relation.into(),
            terms: terms.into_iter().map(HeadTerm::Plain).collect(),
            location,
        }
    }

    /// Number of head arguments.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// True when the head contains at least one aggregate term.
    pub fn has_aggregate(&self) -> bool {
        self.terms.iter().any(|t| matches!(t, HeadTerm::Agg(..)))
    }

    /// The aggregate (function, variable, position) if the head has one.
    pub fn aggregate(&self) -> Option<(AggFunc, &str, usize)> {
        self.terms.iter().enumerate().find_map(|(i, t)| match t {
            HeadTerm::Agg(f, v) => Some((*f, v.as_str(), i)),
            HeadTerm::Plain(_) => None,
        })
    }

    /// Variables appearing in plain head terms (the group-by key when the
    /// head has aggregates).
    pub fn plain_variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let HeadTerm::Plain(Term::Var(v)) = t {
                if !out.contains(&v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    /// The variable naming the head's storage location, if annotated and a
    /// variable.
    pub fn location_var(&self) -> Option<&str> {
        self.location
            .and_then(|i| self.terms.get(i))
            .and_then(HeadTerm::as_plain)
            .and_then(Term::as_var)
    }

    /// View the head as an [`Atom`] (aggregates become variables named after
    /// their aggregated variable). Useful for dependency analysis.
    pub fn as_atom(&self) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    HeadTerm::Plain(t) => t.clone(),
                    HeadTerm::Agg(_, v) => Term::Var(v.clone()),
                })
                .collect(),
            location: self.location,
        }
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if Some(i) == self.location {
                write!(f, "@")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A single Datalog rule `head :- body.`
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Optional rule label (`NR1`, `DV2`, ...).
    pub name: Option<String>,
    /// The rule head.
    pub head: Head,
    /// The rule body; empty for ground facts.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build an unnamed rule.
    pub fn new(head: Head, body: Vec<Literal>) -> Rule {
        Rule { name: None, head, body }
    }

    /// Build a named rule.
    pub fn named(name: impl Into<String>, head: Head, body: Vec<Literal>) -> Rule {
        Rule { name: Some(name.into()), head, body }
    }

    /// True when the rule body is empty and the head is ground (a fact).
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
            && self.head.terms.iter().all(|t| matches!(t, HeadTerm::Plain(Term::Const(_))))
    }

    /// All positive body atoms in order.
    pub fn positive_atoms(&self) -> Vec<&Atom> {
        self.body.iter().filter_map(Literal::as_atom).collect()
    }

    /// All distinct variable names in the rule — body literals first, then
    /// the head — in first-occurrence order. The compiled evaluator interns
    /// this list into dense frame slots.
    pub fn variables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for lit in &self.body {
            for v in lit.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        for term in &self.head.terms {
            let v = match term {
                HeadTerm::Plain(Term::Var(v)) => Some(v.as_str()),
                HeadTerm::Agg(_, v) => Some(v.as_str()),
                HeadTerm::Plain(Term::Const(_)) => None,
            };
            if let Some(v) = v {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The relations this rule reads (positively or under negation).
    pub fn body_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for lit in &self.body {
            if let Literal::Atom(a) | Literal::NegAtom(a) = lit {
                if !out.contains(&a.relation.as_str()) {
                    out.push(a.relation.as_str());
                }
            }
        }
        out
    }

    /// True when the rule (directly) depends on its own head relation.
    pub fn is_directly_recursive(&self) -> bool {
        self.body_relations().contains(&self.head.relation.as_str())
    }

    /// True when any body literal uses a built-in function call.
    pub fn uses_functions(&self) -> bool {
        self.body.iter().any(|lit| match lit {
            Literal::Compare { lhs, rhs, .. } => lhs.has_call() || rhs.has_call(),
            Literal::Assign { expr, .. } => expr.has_call(),
            _ => false,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n}: ")?;
        }
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, lit) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{lit}")?;
            }
        }
        write!(f, ".")
    }
}

/// A complete Datalog program: rules, queries, and pragmas.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The rules (including facts).
    pub rules: Vec<Rule>,
    /// The query atoms (`Query: path(@S,D,P,C).`); these name the result
    /// relations whose tuples are reported to the issuer.
    pub queries: Vec<Atom>,
    /// Primary-key pragmas: relation name → key field positions.
    pub key_pragmas: Vec<(String, Vec<usize>)>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Append another program's rules, queries and pragmas (the paper's
    /// `#include` macro).
    pub fn include(&mut self, other: &Program) {
        self.rules.extend(other.rules.iter().cloned());
        self.queries.extend(other.queries.iter().cloned());
        self.key_pragmas.extend(other.key_pragmas.iter().cloned());
    }

    /// Names of all relations defined by rule heads.
    pub fn derived_relations(&self) -> BTreeSet<&str> {
        self.rules.iter().map(|r| r.head.relation.as_str()).collect()
    }

    /// Names of all relations read by bodies but never defined by a head —
    /// these are base tables fed from outside (e.g. `link`, `excludeNode`).
    pub fn base_relations(&self) -> BTreeSet<&str> {
        let derived = self.derived_relations();
        let mut out = BTreeSet::new();
        for r in &self.rules {
            for rel in r.body_relations() {
                if !derived.contains(rel) {
                    out.insert(rel);
                }
            }
        }
        out
    }

    /// All relation names mentioned anywhere in the program.
    pub fn all_relations(&self) -> BTreeSet<&str> {
        let mut out = self.derived_relations();
        out.extend(self.base_relations());
        for q in &self.queries {
            out.insert(q.relation.as_str());
        }
        out
    }

    /// Find a rule by its label.
    pub fn rule(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name.as_deref() == Some(name))
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for q in &self.queries {
            writeln!(f, "Query: {q}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_types::NodeId;

    fn simple_rule() -> Rule {
        // path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        Rule::named(
            "NR1",
            Head::plain(
                "path",
                vec![Term::var("S"), Term::var("D"), Term::var("P"), Term::var("C")],
                Some(0),
            ),
            vec![
                Literal::Atom(Atom::with_location(
                    "link",
                    vec![Term::var("S"), Term::var("D"), Term::var("C")],
                    0,
                )),
                Literal::Assign {
                    var: "P".into(),
                    expr: Expr::call("f_initPath", vec![Expr::var("S"), Expr::var("D")]),
                },
            ],
        )
    }

    #[test]
    fn atom_variables_deduplicate_and_preserve_order() {
        let a = Atom::new(
            "r",
            vec![Term::var("X"), Term::var("Y"), Term::var("X"), Term::constant(1i64)],
        );
        assert_eq!(a.variables(), vec!["X", "Y"]);
        assert!(!a.is_ground());
        let g = Atom::new("r", vec![Term::constant(Value::Node(NodeId::new(1)))]);
        assert!(g.is_ground());
    }

    #[test]
    fn atom_location_var() {
        let a = Atom::with_location("link", vec![Term::var("S"), Term::var("D")], 0);
        assert_eq!(a.location_var(), Some("S"));
        let b = Atom::new("link", vec![Term::var("S"), Term::var("D")]);
        assert_eq!(b.location_var(), None);
    }

    #[test]
    fn compare_op_numeric_and_structural() {
        assert!(CompareOp::Lt.eval(&Value::Int(1), &Value::from(2.0)));
        assert!(CompareOp::Ne.eval(&Value::str("a"), &Value::str("b")));
        assert!(CompareOp::Eq.eval(&Value::from(3.0), &Value::Int(3)));
        assert!(CompareOp::Ge.eval(&Value::Int(3), &Value::Int(3)));
        assert!(!CompareOp::Gt.eval(&Value::Int(3), &Value::Int(3)));
        assert!(CompareOp::Le.eval(&Value::Int(2), &Value::Int(3)));
    }

    #[test]
    fn expr_variable_collection() {
        let e = Expr::BinOp {
            op: ArithOp::Add,
            lhs: Box::new(Expr::var("C1")),
            rhs: Box::new(Expr::call("f_min", vec![Expr::var("C2"), Expr::var("C1")])),
        };
        assert_eq!(e.variables(), vec!["C1", "C2"]);
        assert!(e.has_call());
        assert!(!Expr::var("X").has_call());
    }

    #[test]
    fn head_aggregate_detection() {
        let h = Head {
            relation: "bestPathCost".into(),
            terms: vec![
                HeadTerm::Plain(Term::var("S")),
                HeadTerm::Plain(Term::var("D")),
                HeadTerm::Agg(AggFunc::Min, "C".into()),
            ],
            location: Some(0),
        };
        assert!(h.has_aggregate());
        let (f, v, i) = h.aggregate().unwrap();
        assert_eq!(f, AggFunc::Min);
        assert_eq!(v, "C");
        assert_eq!(i, 2);
        assert_eq!(h.plain_variables(), vec!["S", "D"]);
        assert_eq!(h.location_var(), Some("S"));
    }

    #[test]
    fn rule_introspection() {
        let r = simple_rule();
        assert!(!r.is_fact());
        assert_eq!(r.body_relations(), vec!["link"]);
        assert!(!r.is_directly_recursive());
        assert!(r.uses_functions());

        let rec = Rule::new(
            Head::plain("path", vec![Term::var("S")], None),
            vec![Literal::Atom(Atom::new("path", vec![Term::var("S")]))],
        );
        assert!(rec.is_directly_recursive());
        assert!(!rec.uses_functions());
    }

    #[test]
    fn fact_detection() {
        let f = Rule::new(
            Head::plain("magicSources", vec![Term::constant(Value::Node(NodeId::new(2)))], None),
            vec![],
        );
        assert!(f.is_fact());
        let not_fact = Rule::new(Head::plain("magicSources", vec![Term::var("X")], None), vec![]);
        assert!(!not_fact.is_fact());
    }

    #[test]
    fn program_relation_classification() {
        let mut p = Program::new();
        p.rules.push(simple_rule());
        p.queries.push(Atom::new(
            "path",
            vec![Term::var("S"), Term::var("D"), Term::var("P"), Term::var("C")],
        ));
        let derived: Vec<_> = p.derived_relations().into_iter().collect();
        let base: Vec<_> = p.base_relations().into_iter().collect();
        assert_eq!(derived, vec!["path"]);
        assert_eq!(base, vec!["link"]);
        assert!(p.all_relations().contains("path"));
        assert_eq!(p.rule("NR1").unwrap().name.as_deref(), Some("NR1"));
        assert!(p.rule("ZZZ").is_none());
    }

    #[test]
    fn include_concatenates_programs() {
        let mut a = Program::new();
        a.rules.push(simple_rule());
        let mut b = Program::new();
        b.rules.push(simple_rule());
        b.key_pragmas.push(("path".into(), vec![0, 1, 2]));
        a.include(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.key_pragmas.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn display_round_trip_shapes() {
        let r = simple_rule();
        let s = r.to_string();
        assert!(s.starts_with("NR1: path(@S,D,P,C) :- link(@S,D,C)"));
        assert!(s.ends_with('.'));
        let h = Head {
            relation: "bestPathCost".into(),
            terms: vec![HeadTerm::Plain(Term::var("S")), HeadTerm::Agg(AggFunc::Min, "C".into())],
            location: Some(0),
        };
        assert_eq!(h.to_string(), "bestPathCost(@S,min<C>)");
    }

    #[test]
    fn agg_func_parsing_and_properties() {
        assert_eq!(AggFunc::from_name("MIN"), Some(AggFunc::Min));
        assert_eq!(AggFunc::from_name("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("median"), None);
        assert!(AggFunc::Min.is_monotonic_selection());
        assert!(AggFunc::Max.is_monotonic_selection());
        assert!(!AggFunc::Count.is_monotonic_selection());
        assert!(!AggFunc::Sum.is_monotonic_selection());
    }
}
