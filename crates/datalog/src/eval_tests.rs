use super::*;
use crate::parser::parse_program;
use dr_types::{Cost, NodeId, PathVector};

fn node(i: u32) -> Value {
    Value::Node(NodeId::new(i))
}

fn link(s: u32, d: u32, c: f64) -> Tuple {
    Tuple::new("link", vec![node(s), node(d), Value::from(c)])
}

/// The 5-node example network of the paper's Figure 3:
/// a->b, a->c, b->d, c->d, d->e (undirected in the figure; we insert
/// both directions where needed by the test).
fn figure3_links(db: &mut Database) {
    for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
        db.insert(link(s, d, 1.0));
    }
}

const NETWORK_REACHABILITY: &str = r#"
    NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
    NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
         C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
    Query: path(@S,D,P,C).
"#;

const BEST_PATH: &str = r#"
    NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
    NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
         C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
    BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
    BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
    Query: bestPath(@S,D,P,C).
"#;

#[test]
fn bindings_bind_and_conflict() {
    let mut b = Bindings::new();
    assert!(b.is_empty());
    assert!(b.bind("X", Value::Int(1)));
    assert!(b.bind("X", Value::Int(1)));
    assert!(!b.bind("X", Value::Int(2)));
    assert!(b.is_bound("X"));
    assert!(!b.is_bound("Y"));
    assert_eq!(b.len(), 1);
    assert_eq!(b.get("X"), Some(&Value::Int(1)));
}

#[test]
fn expr_evaluation() {
    let builtins = Builtins::standard();
    let mut b = Bindings::new();
    b.bind("C1", Value::from(2.0));
    b.bind("C2", Value::from(3.0));
    let e = Expr::BinOp {
        op: crate::ast::ArithOp::Add,
        lhs: Box::new(Expr::var("C1")),
        rhs: Box::new(Expr::var("C2")),
    };
    assert_eq!(eval_expr(&e, &b, &builtins).unwrap(), Value::from(5.0));
    assert!(eval_expr(&Expr::var("missing"), &b, &builtins).is_err());
    let call = Expr::call("f_sum", vec![Expr::var("C1"), Expr::constant(1.0)]);
    assert_eq!(eval_expr(&call, &b, &builtins).unwrap(), Value::from(3.0));
}

#[test]
fn network_reachability_computes_transitive_closure() {
    let program = parse_program(NETWORK_REACHABILITY).unwrap();
    let eval = Evaluator::new(program).unwrap();
    let mut db = Database::new();
    figure3_links(&mut db);
    let stats = eval.run(&mut db).unwrap();
    assert!(stats.tuples_derived > 0);
    assert!(stats.iterations >= 2);

    let paths = db.tuples("path");
    // a (0) reaches e (4) via b-d and c-d: both 3-hop paths must exist.
    let a_to_e: Vec<&Tuple> = paths
        .iter()
        .filter(|t| t.node_at(0) == Some(NodeId::new(0)) && t.node_at(1) == Some(NodeId::new(4)))
        .collect();
    assert_eq!(a_to_e.len(), 2, "expected two distinct a->e paths, got {a_to_e:?}");
    for t in &a_to_e {
        assert_eq!(t.field(3).and_then(Value::as_cost), Some(Cost::new(3.0)));
    }
    // no cyclic paths anywhere
    for t in &paths {
        let p = t.field(2).and_then(Value::as_path).unwrap();
        assert!(!p.has_cycle(), "cyclic path derived: {t}");
    }
}

#[test]
fn paper_figure3_tuple_is_derived() {
    // p(a,d,[a,c,d],2) from the worked example in §3.4.
    let program = parse_program(NETWORK_REACHABILITY).unwrap();
    let eval = Evaluator::new(program).unwrap();
    let mut db = Database::new();
    figure3_links(&mut db);
    eval.run(&mut db).unwrap();
    let expected = Tuple::new(
        "path",
        vec![
            node(0),
            node(3),
            Value::Path(PathVector::from_nodes(vec![
                NodeId::new(0),
                NodeId::new(2),
                NodeId::new(3),
            ])),
            Value::from(2.0),
        ],
    );
    assert!(db.contains(&expected));
}

#[test]
fn best_path_selects_minimum_cost() {
    let program = parse_program(BEST_PATH).unwrap();
    let eval = Evaluator::new(program).unwrap();
    let mut db = Database::new();
    // Two routes 0->2: direct cost 10, via 1 cost 2+3=5.
    db.insert(link(0, 2, 10.0));
    db.insert(link(0, 1, 2.0));
    db.insert(link(1, 2, 3.0));
    eval.run(&mut db).unwrap();

    let best: Vec<Tuple> = db
        .tuples("bestPath")
        .into_iter()
        .filter(|t| t.node_at(0) == Some(NodeId::new(0)) && t.node_at(1) == Some(NodeId::new(2)))
        .collect();
    assert_eq!(best.len(), 1);
    assert_eq!(best[0].field(3).and_then(Value::as_cost), Some(Cost::new(5.0)));
    let p = best[0].field(2).and_then(Value::as_path).unwrap();
    assert_eq!(p.nodes(), &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
}

#[test]
fn aggregate_selections_prune_but_preserve_best_paths() {
    let program = parse_program(BEST_PATH).unwrap();
    let cfg = EvalConfig { aggregate_selections: true, ..EvalConfig::default() };
    let eval_opt = Evaluator::with_config(parse_program(BEST_PATH).unwrap(), cfg).unwrap();
    let eval_base = Evaluator::new(program).unwrap();

    let mut db_base = Database::new();
    let mut db_opt = Database::new();
    for db in [&mut db_base, &mut db_opt] {
        figure3_links(db);
        // extra expensive parallel edges to give the optimizer something to prune
        db.insert(link(0, 3, 10.0));
        db.insert(link(1, 4, 20.0));
    }
    let s_base = eval_base.run(&mut db_base).unwrap();
    let s_opt = eval_opt.run(&mut db_opt).unwrap();

    assert!(s_opt.tuples_pruned > 0, "optimizer never pruned anything");
    assert!(s_opt.tuples_derived <= s_base.tuples_derived);

    // Best-path answers agree.
    let mut base_best = db_base.sorted_tuples("bestPathCost");
    let mut opt_best = db_opt.sorted_tuples("bestPathCost");
    base_best.sort();
    opt_best.sort();
    assert_eq!(base_best, opt_best);
}

#[test]
fn naive_and_semi_naive_agree() {
    let naive_cfg = EvalConfig { semi_naive: false, ..EvalConfig::default() };
    let e_naive =
        Evaluator::with_config(parse_program(NETWORK_REACHABILITY).unwrap(), naive_cfg).unwrap();
    let e_semi = Evaluator::new(parse_program(NETWORK_REACHABILITY).unwrap()).unwrap();

    let mut db1 = Database::new();
    let mut db2 = Database::new();
    figure3_links(&mut db1);
    figure3_links(&mut db2);
    let s1 = e_naive.run(&mut db1).unwrap();
    let s2 = e_semi.run(&mut db2).unwrap();
    assert_eq!(db1.sorted_tuples("path"), db2.sorted_tuples("path"));
    // naive mode performs at least as many rule firings
    assert!(s1.rule_firings >= s2.rule_firings);
}

#[test]
fn non_terminating_query_is_caught() {
    // Reachability *without* the cycle check on a cyclic graph would
    // grow paths forever; the iteration cap turns that into an error.
    let src = r#"
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2).
    "#;
    let cfg = EvalConfig { max_iterations: 20, ..EvalConfig::default() };
    let eval = Evaluator::with_config(parse_program(src).unwrap(), cfg).unwrap();
    let mut db = Database::new();
    db.insert(link(0, 1, 1.0));
    db.insert(link(1, 0, 1.0));
    assert!(eval.run(&mut db).is_err());
}

#[test]
fn facts_are_inserted() {
    let src = r#"
        magicSources(#1).
        magicSources(#2).
        out(@S) :- magicSources(@S).
    "#;
    let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
    let mut db = Database::new();
    eval.run(&mut db).unwrap();
    assert_eq!(db.count("magicSources"), 2);
    assert_eq!(db.count("out"), 2);
}

#[test]
fn negation_filters_matches() {
    let src = r#"
        r1: candidate(@S,D) :- link(@S,D,C).
        r2: allowed(@S,D) :- candidate(@S,D), !excludeNode(@S,D).
    "#;
    let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
    let mut db = Database::new();
    db.insert(link(0, 1, 1.0));
    db.insert(link(0, 2, 1.0));
    db.insert(Tuple::new("excludeNode", vec![node(0), node(2)]));
    eval.run(&mut db).unwrap();
    let allowed = db.sorted_tuples("allowed");
    assert_eq!(allowed.len(), 1);
    assert_eq!(allowed[0].node_at(1), Some(NodeId::new(1)));
}

#[test]
fn negation_with_wildcard_fields() {
    // !cache(S, D, P, C) where P and C are not bound elsewhere: the
    // negation fails if *any* cache entry exists for (S, D).
    let src = r#"
        r1: need(@S,D) :- request(@S,D), !cache(@S,D,P,C).
    "#;
    let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
    let mut db = Database::new();
    db.insert(Tuple::new("request", vec![node(1), node(2)]));
    db.insert(Tuple::new("request", vec![node(1), node(3)]));
    db.insert(Tuple::new(
        "cache",
        vec![node(1), node(2), Value::Path(PathVector::nil()), Value::from(1.0)],
    ));
    eval.run(&mut db).unwrap();
    let need = db.sorted_tuples("need");
    assert_eq!(need.len(), 1);
    assert_eq!(need[0].node_at(1), Some(NodeId::new(3)));
}

#[test]
fn comparison_constraints_filter() {
    let src = r#"
        r1: cheap(@S,D,C) :- link(@S,D,C), C < 5.
        r2: notself(@S,D) :- link(@S,D,C), S != D.
    "#;
    let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
    let mut db = Database::new();
    db.insert(link(0, 1, 2.0));
    db.insert(link(0, 2, 9.0));
    db.insert(link(3, 3, 1.0));
    eval.run(&mut db).unwrap();
    assert_eq!(db.count("cheap"), 2); // (0,1) and (3,3)
    assert_eq!(db.count("notself"), 2); // (0,1) and (0,2)
}

#[test]
fn unsafe_rule_reports_error() {
    // Head variable X never bound.
    let src = "r1: out(@X,Y) :- q(@X), Y = Z + 1.";
    let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
    let mut db = Database::new();
    db.insert(Tuple::new("q", vec![node(0)]));
    assert!(eval.run(&mut db).is_err());
}

#[test]
fn apply_aggregate_groups_correctly() {
    let head = Head {
        relation: "shortest".into(),
        terms: vec![
            HeadTerm::Plain(Term::var("S")),
            HeadTerm::Plain(Term::var("D")),
            HeadTerm::Agg(AggFunc::Min, "C".into()),
        ],
        location: Some(0),
    };
    let raw = vec![
        Tuple::new("shortest", vec![node(0), node(1), Value::from(5.0)]),
        Tuple::new("shortest", vec![node(0), node(1), Value::from(3.0)]),
        Tuple::new("shortest", vec![node(0), node(2), Value::from(7.0)]),
    ];
    let mut out = apply_aggregate(&head, RelId::intern(&head.relation), &raw).unwrap();
    out.sort();
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].field(2).and_then(Value::as_cost), Some(Cost::new(3.0)));
    assert_eq!(out[1].field(2).and_then(Value::as_cost), Some(Cost::new(7.0)));

    // count and sum
    let head_count = Head {
        relation: "deg".into(),
        terms: vec![HeadTerm::Plain(Term::var("S")), HeadTerm::Agg(AggFunc::Count, "D".into())],
        location: Some(0),
    };
    let raw =
        vec![Tuple::new("deg", vec![node(0), node(1)]), Tuple::new("deg", vec![node(0), node(2)])];
    let out = apply_aggregate(&head_count, RelId::intern(&head_count.relation), &raw).unwrap();
    assert_eq!(out[0].field(1), Some(&Value::Int(2)));

    let head_sum = Head {
        relation: "total".into(),
        terms: vec![HeadTerm::Plain(Term::var("S")), HeadTerm::Agg(AggFunc::Sum, "C".into())],
        location: Some(0),
    };
    let raw = vec![
        Tuple::new("total", vec![node(0), Value::from(1.5)]),
        Tuple::new("total", vec![node(0), Value::from(2.5)]),
    ];
    let out = apply_aggregate(&head_sum, RelId::intern(&head_sum.relation), &raw).unwrap();
    assert_eq!(out[0].field(1).and_then(Value::as_cost), Some(Cost::new(4.0)));
}

#[test]
fn evaluate_rule_with_delta_limits_matches() {
    let program = parse_program(NETWORK_REACHABILITY).unwrap();
    let builtins = Builtins::standard();
    let mut db = Database::new();
    figure3_links(&mut db);
    // Seed with one-hop paths.
    let nr1 = program.rule("NR1").unwrap();
    let one_hop = evaluate_rule(nr1, &builtins, &db, None).unwrap();
    assert_eq!(one_hop.len(), 5);
    for t in &one_hop {
        db.insert(t.clone());
    }
    // Delta = only the path starting at node 3 (d->e).
    let delta: Vec<Tuple> =
        one_hop.iter().filter(|t| t.node_at(0) == Some(NodeId::new(3))).cloned().collect();
    let nr2 = program.rule("NR2").unwrap();
    // positive atom occurrence 1 is `path(@Z,D,P2,C2)`
    let derived = evaluate_rule(nr2, &builtins, &db, Some((1, &delta))).unwrap();
    // Only extensions of d->e are derived: b->d->e and c->d->e.
    assert_eq!(derived.len(), 2);
    for t in &derived {
        assert_eq!(t.node_at(1), Some(NodeId::new(4)));
    }
}

#[test]
fn traced_evaluation_records_firings_without_changing_results() {
    let program = parse_program(NETWORK_REACHABILITY).unwrap();
    let builtins = Builtins::standard();
    let mut db = Database::new();
    figure3_links(&mut db);
    let nr1 = RuleEval::new(program.rule("NR1").unwrap());
    let one_hop = nr1.evaluate(&builtins, &db, None).unwrap();
    for t in &one_hop {
        db.insert(t.clone());
    }

    let nr2 = RuleEval::new(program.rule("NR2").unwrap());
    let plain = nr2.evaluate(&builtins, &db, None).unwrap();
    let mut log = FiringLog::new();
    let traced = nr2.evaluate_traced(&builtins, &db, None, &mut log).unwrap();
    assert_eq!(plain, traced, "tracing must not perturb evaluation");
    assert_eq!(log.firings.len(), traced.len(), "one firing per emitted head");

    for (firing, head) in log.firings.iter().zip(&traced) {
        assert_eq!(&firing.head, head);
        // NR2 joins exactly one link and one path tuple.
        assert_eq!(firing.body.len(), 2, "NR2 has two positive atoms: {firing:?}");
        let rels: Vec<&str> = firing.body.iter().map(|t| t.relation()).collect();
        assert!(rels.contains(&"link") && rels.contains(&"path"), "{rels:?}");
        // The firing is re-derivable: evaluating the rule against only the
        // body tuples re-produces the head.
        let mut tiny = Database::new();
        for t in &firing.body {
            tiny.insert(t.clone());
        }
        let again = nr2.evaluate(&builtins, &tiny, None).unwrap();
        assert!(again.contains(head), "body {:?} must re-derive {head}", firing.body);
    }

    // Delta-restricted tracing records only delta-driven firings.
    let delta: Vec<Tuple> =
        one_hop.iter().filter(|t| t.node_at(0) == Some(NodeId::new(3))).cloned().collect();
    let mut log = FiringLog::new();
    let narrowed = nr2.evaluate_traced(&builtins, &db, Some((1, &delta)), &mut log).unwrap();
    assert_eq!(narrowed.len(), 2);
    assert_eq!(log.firings.len(), 2);
    for firing in &log.firings {
        assert!(
            firing.body.iter().any(|t| delta.contains(t)),
            "every delta firing joins a delta tuple: {firing:?}"
        );
    }
}

#[test]
fn distance_vector_rules_produce_next_hops() {
    let src = r#"
        #key(nextHop, 0, 1).
        DV1: path(@S,D,D,C) :- link(@S,D,C).
        DV2: path(@S,D,Z,C) :- link(@S,Z,C1), path(@Z,D,W,C2), C = C1 + C2, W != S, C < 100.
        DV3: shortestCost(@S,D,min<C>) :- path(@S,D,Z,C).
        DV4: nextHop(@S,D,Z,C) :- path(@S,D,Z,C), shortestCost(@S,D,C).
        Query: nextHop(@S,D,Z,C).
    "#;
    let eval = Evaluator::new(parse_program(src).unwrap()).unwrap();
    let mut db = Database::new();
    // triangle with a shortcut: 0-1 cost 1, 1-2 cost 1, 0-2 cost 5
    for (s, d, c) in [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0), (0, 2, 5.0), (2, 0, 5.0)]
    {
        db.insert(link(s, d, c));
    }
    eval.run(&mut db).unwrap();
    let hops: Vec<Tuple> = db
        .tuples("nextHop")
        .into_iter()
        .filter(|t| t.node_at(0) == Some(NodeId::new(0)) && t.node_at(1) == Some(NodeId::new(2)))
        .collect();
    assert_eq!(hops.len(), 1, "nextHop should be keyed on (S,D): {hops:?}");
    // best next hop from 0 to 2 is via 1 at cost 2
    assert_eq!(hops[0].node_at(2), Some(NodeId::new(1)));
    assert_eq!(hops[0].field(3).and_then(Value::as_cost), Some(Cost::new(2.0)));
}

// --- compiled-plan tests -----------------------------------------------

#[test]
fn join_plan_exposes_order_probes_and_frame() {
    let program = parse_program(NETWORK_REACHABILITY).unwrap();
    let nr2 = program.rule("NR2").unwrap();
    let compiled = RuleEval::new(nr2);
    let plan = compiled.plan();
    assert_eq!(plan.atom_order(), &[0, 1]);
    assert_eq!(plan.probes(), &[None, Some(0)]);
    assert!(!plan.used_stats());
    assert_eq!(plan.to_string(), "link ⋈ path[0]");
    // Frame layout: body variables in first-occurrence order.
    assert_eq!(plan.slot_names(), &["S", "Z", "C1", "D", "P2", "C2", "C", "P"]);
    assert_eq!(plan.slot_count(), 8);
}

#[test]
fn planner_pins_link_state_orderings() {
    // The flooding and local-route rules from dr-protocols' link-state
    // program (inlined: dr-protocols depends on this crate).
    let src = r#"
        LS2: floodLink(@M,S,D,C,N) :- link(@N,M,C1), floodLink(@N,S,D,C,W), M != W.
        LSP2: lsPath(@M,D,P,C) :- lsPath(@M,Z,P1,C1), floodLink(@M,Z,D,C2,W2),
              C = C1 + C2, P = f_append(P1,D), f_inPath(P1,D) = false.
    "#;
    let program = parse_program(src).unwrap();

    // LS2: `link` has fewer unbound variables, so it leads; the recursive
    // `floodLink` is then probed on field 0 with the shared N binding.
    let ls2 = RuleEval::new(program.rule("LS2").unwrap());
    assert_eq!(ls2.plan().atom_order(), &[0, 1]);
    assert_eq!(ls2.plan().probes(), &[None, Some(0)]);
    assert_eq!(ls2.plan().to_string(), "link ⋈ floodLink[0]");

    // LSP2 statically keeps body order for the same reason.
    let lsp2 = RuleEval::new(program.rule("LSP2").unwrap());
    assert_eq!(lsp2.plan().atom_order(), &[0, 1]);
    assert_eq!(lsp2.plan().probes(), &[None, Some(0)]);
}

#[test]
fn planner_reorders_with_stats() {
    // With cardinalities the planner flips LSP2: scanning the small
    // floodLink table and probing the large lsPath table beats the static
    // body order.
    let src = r#"
        LSP2: lsPath(@M,D,P,C) :- lsPath(@M,Z,P1,C1), floodLink(@M,Z,D,C2,W2),
              C = C1 + C2, P = f_append(P1,D), f_inPath(P1,D) = false.
    "#;
    let program = parse_program(src).unwrap();
    let mut stats = CardStats::new();
    stats.set_rows("lsPath", 10_000);
    stats.set_rows("floodLink", 50);
    let plan = RuleEval::with_stats(program.rule("LSP2").unwrap(), &stats);
    assert!(plan.plan().used_stats());
    assert_eq!(plan.plan().atom_order(), &[1, 0]);
    assert_eq!(plan.plan().to_string(), "floodLink ⋈ lsPath[0]");
    // The flipped plan still computes the same tuples.
    let static_plan = RuleEval::new(program.rule("LSP2").unwrap());
    let mut db = Database::new();
    for (m, z, c) in [(0u32, 1u32, 1.0), (1, 2, 1.0)] {
        db.insert(Tuple::new(
            "floodLink",
            vec![node(m), node(z), node(z), Value::from(c), node(m)],
        ));
        db.insert(Tuple::new(
            "lsPath",
            vec![
                node(m),
                node(z),
                Value::Path(PathVector::from_nodes(vec![NodeId::new(m), NodeId::new(z)])),
                Value::from(c),
            ],
        ));
    }
    let builtins = Builtins::standard();
    let mut a = plan.evaluate(&builtins, &db, None).unwrap();
    let mut b = static_plan.evaluate(&builtins, &db, None).unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn planner_uses_key_probes_for_upsert_keyed_relations() {
    // DV4 of the distance-vector protocol: `shortestCost` is keyed on
    // (0,1) = (S,D), both bound once `path` is scanned — the planner must
    // serve it from the upsert map (at most one hit) instead of scanning
    // it first and probing the huge `path` table.
    let src = "DV4: nextHop(@S,D,Z,C) :- path(@S,D,Z,C), shortestCost(@S,D,C), S != D.";
    let program = parse_program(src).unwrap();
    let mut stats = CardStats::new();
    stats.set_key("shortestCost", vec![0, 1]);
    let plan = RuleEval::with_stats(program.rule("DV4").unwrap(), &stats);
    assert_eq!(plan.plan().atom_order(), &[0, 1]);
    assert_eq!(plan.plan().key_probes(), &[None, Some(vec![0, 1])]);
    assert_eq!(plan.plan().to_string(), "path ⋈ shortestCost[0,1]");

    // A key-probed plan computes the same tuples as the static plan, both
    // in full and when driven by a delta on the keyed atom.
    let static_plan = RuleEval::new(program.rule("DV4").unwrap());
    let mut db = Database::new();
    db.declare_key("shortestCost", vec![0, 1]);
    for (s, d, z, c) in [(0u32, 2u32, 1u32, 2.0), (0, 2, 3, 4.0), (1, 2, 2, 1.0), (2, 2, 2, 0.0)] {
        db.insert(Tuple::new("path", vec![node(s), node(d), node(z), Value::from(c)]));
    }
    let costs: Vec<Tuple> = [(0u32, 2u32, 2.0), (1, 2, 1.0), (2, 2, 0.0)]
        .iter()
        .map(|&(s, d, c)| Tuple::new("shortestCost", vec![node(s), node(d), Value::from(c)]))
        .collect();
    for t in &costs {
        db.insert(t.clone());
    }
    let builtins = Builtins::standard();
    let mut a = plan.evaluate(&builtins, &db, None).unwrap();
    let mut b = static_plan.evaluate(&builtins, &db, None).unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(!a.is_empty());
    let mut da = plan.evaluate(&builtins, &db, Some((1, &costs))).unwrap();
    let mut db_ = static_plan.evaluate(&builtins, &db, Some((1, &costs))).unwrap();
    da.sort();
    db_.sort();
    assert_eq!(da, db_);
    assert_eq!(da, a);
}

#[test]
fn planner_joins_constant_probes_first() {
    // `start` can be probed on its constant first field before anything is
    // bound, so the planner hoists it ahead of the scan of `hop`.
    let src = "r: out(@D) :- hop(@Z,D), start(#5,Z).";
    let program = parse_program(src).unwrap();
    let plan = RuleEval::new(&program.rules[0]);
    assert_eq!(plan.plan().atom_order(), &[1, 0]);
    assert_eq!(plan.plan().probes(), &[Some(0), Some(0)]);
    assert_eq!(plan.plan().to_string(), "start[0] ⋈ hop[0]");

    let mut db = Database::new();
    db.insert(Tuple::new("start", vec![node(5), node(1)]));
    db.insert(Tuple::new("start", vec![node(6), node(2)]));
    db.insert(Tuple::new("hop", vec![node(1), node(7)]));
    db.insert(Tuple::new("hop", vec![node(2), node(8)]));
    let builtins = Builtins::standard();
    let out = plan.evaluate(&builtins, &db, None).unwrap();
    assert_eq!(out, vec![Tuple::new("out", vec![node(7)])]);
}

#[test]
fn compiled_and_reference_paths_agree() {
    let program = parse_program(NETWORK_REACHABILITY).unwrap();
    let builtins = Builtins::standard();
    let mut db = Database::new();
    figure3_links(&mut db);
    let nr1 = program.rule("NR1").unwrap();
    let one_hop = evaluate_rule(nr1, &builtins, &db, None).unwrap();
    for t in &one_hop {
        db.insert(t.clone());
    }
    let nr2 = program.rule("NR2").unwrap();
    // Full evaluation and every delta occurrence must agree with the
    // name-keyed reference implementation.
    for delta in [None, Some((0usize, &one_hop[..2])), Some((1usize, &one_hop[..3]))] {
        let mut fast = evaluate_rule(nr2, &builtins, &db, delta).unwrap();
        let mut slow = evaluate_rule_reference(nr2, &builtins, &db, delta).unwrap();
        fast.sort();
        slow.sort();
        assert_eq!(fast, slow);
    }
}

#[test]
fn evaluator_exposes_compiled_plans() {
    let program = parse_program(BEST_PATH).unwrap();
    let eval = Evaluator::new(program).unwrap();
    // One plan per program rule, in program order.
    assert_eq!(eval.plans().len(), eval.program().rules.len());
    let nr2 = eval.plans().iter().find(|p| p.rule().name.as_deref() == Some("NR2")).unwrap();
    assert_eq!(nr2.plan().to_string(), "link ⋈ path[0]");
}
