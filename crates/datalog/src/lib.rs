//! # dr-datalog
//!
//! The Datalog dialect used by the declarative routing system: abstract
//! syntax, a parser for the paper's concrete syntax, a library of built-in
//! functions (`f_*`), a stratified semi-naïve fixpoint evaluator, static
//! safety / termination analysis (paper §6), and the query rewrites of
//! paper §7 (magic sets, left/right recursion, aggregate selections).
//!
//! This crate is *centralized*: it evaluates programs against a single
//! [`database::Database`]. The distributed execution model of the paper
//! (per-node processors exchanging tuples) lives in `dr-core`, which reuses
//! the rule evaluator and catalog defined here.
//!
//! ## Dialect
//!
//! The concrete syntax follows the paper closely:
//!
//! ```text
//! NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
//! NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
//!                        C = C1 + C2, P = f_prepend(S,P2),
//!                        f_inPath(P2,S) = false.
//! BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
//! Query: bestPath(@S,D,P,C).
//! ```
//!
//! Differences from the paper's informal notation are documented in
//! [`parser`]: location fields are written with a leading `@` rather than an
//! underline, and `f_concatPath(link(S,Z,C),P2)` is written as the equivalent
//! `f_prepend(S,P2)` (the link's contribution to the path vector is its
//! source node).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod catalog;
pub mod database;
pub mod eval;
pub mod parser;
pub mod rewrite;
pub mod safety;
pub mod stratify;

pub use ast::{AggFunc, Atom, CompareOp, Expr, Head, HeadTerm, Literal, Program, Rule, Term};
pub use builtins::Builtins;
pub use catalog::{Catalog, RelationInfo};
pub use database::{CardStats, Database, Scan, Table};
pub use eval::{EvalStats, Evaluator, Firing, FiringLog, FiringSink, JoinPlan, NoTrace, RuleEval};
pub use parser::parse_program;
pub use safety::{check_safety, SafetyReport};
