//! Parser for the declarative routing Datalog dialect.
//!
//! ## Concrete syntax
//!
//! ```text
//! // comments run to end of line; % also starts a comment (Prolog style)
//! NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
//! NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
//!      C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
//! BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
//! PBR1: permitPath(@S,D,P,C) :- path(@S,D,P,C), excludeNode(@S,W),
//!       f_inPath(P,W) = false.
//! DV5:  path(@S,D,Z,infinity) :- link(@S,Z,C1), path(@Z,D,S,C2).
//! magicSources(#2).
//! #key(nextHop, 0, 1).
//! Query: bestPath(@S,D,P,C).
//! ```
//!
//! * Identifiers starting with an upper-case letter are **variables**;
//!   `_` is an anonymous variable (each occurrence is fresh).
//! * `@` before an argument marks the relation's location attribute
//!   (the paper's underlined field).
//! * `#<int>` is a node-address constant, numbers are int/cost constants,
//!   `infinity`/`inf` is the infinite cost, `true`/`false` are booleans,
//!   `nil` is the empty path vector, `"..."` is a string constant, and any
//!   other lower-case identifier is a symbolic (string) constant — matching
//!   the paper's use of `a`, `b`, `gid` as constants.
//! * A rule may be prefixed by a label (`NR1:`). The reserved label `Query`
//!   introduces a query atom instead of a rule.
//! * `#key(rel, i, j, ...)` declares the primary key of a relation by field
//!   positions.
//! * Negated atoms are written with a leading `!` (the paper's `¬`).

use crate::ast::{
    AggFunc, ArithOp, Atom, CompareOp, Expr, Head, HeadTerm, Literal, Program, Rule, Term,
};
use dr_types::{Cost, Error, NodeId, PathVector, Result, Value};

/// Parse a complete program from source text.
pub fn parse_program(src: &str) -> Result<Program> {
    let program = Parser::new(src)?.parse_program()?;
    // Produce an *interned* program: every relation the program names gets
    // its dense `RelId` minted here, so downstream plan-time interning
    // (catalog construction, rule compilation, localization) is a pure
    // lookup and the runtime never interns on a hot path.
    for rel in program.all_relations() {
        dr_types::RelId::intern(rel);
    }
    for (rel, _) in &program.key_pragmas {
        dr_types::RelId::intern(rel);
    }
    Ok(program)
}

/// Parse a single rule (without trailing rules); convenience for tests and
/// programmatic rule construction.
pub fn parse_rule(src: &str) -> Result<Rule> {
    let program = parse_program(src)?;
    program.rules.into_iter().next().ok_or_else(|| Error::parse("expected exactly one rule"))
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String), // foo, Bar, f_concatPath
    Int(i64),      // 42
    Float(f64),    // 1.5
    Str(String),   // "abc"
    NodeLit(u32),  // #3
    LParen,
    RParen,
    Comma,
    Dot,
    ColonDash, // :-
    Colon,
    At,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Plus,
    Minus,
    Star,
    Slash,
    Hash, // for #key pragma
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().peekable(), line: 1, col: 1 }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(ch) = c {
            if ch == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::parse(format!("{} at line {}, column {}", msg.into(), self.line, self.col))
    }

    fn tokenize(mut self) -> Result<Vec<SpannedTok>> {
        let mut out = Vec::new();
        loop {
            // skip whitespace and comments
            loop {
                match self.chars.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('/') => {
                        // Only a comment when followed by another '/'.
                        let mut clone = self.chars.clone();
                        clone.next();
                        if clone.peek() == Some(&'/') {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        } else {
                            break;
                        }
                    }
                    Some('%') => {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let c = match self.chars.peek() {
                None => break,
                Some(c) => *c,
            };
            let tok = match c {
                '(' => {
                    self.bump();
                    Tok::LParen
                }
                ')' => {
                    self.bump();
                    Tok::RParen
                }
                ',' => {
                    self.bump();
                    Tok::Comma
                }
                '.' => {
                    self.bump();
                    Tok::Dot
                }
                '@' => {
                    self.bump();
                    Tok::At
                }
                '+' => {
                    self.bump();
                    Tok::Plus
                }
                '-' => {
                    self.bump();
                    Tok::Minus
                }
                '*' => {
                    self.bump();
                    Tok::Star
                }
                '/' => {
                    self.bump();
                    Tok::Slash
                }
                ':' => {
                    self.bump();
                    if self.chars.peek() == Some(&'-') {
                        self.bump();
                        Tok::ColonDash
                    } else {
                        Tok::Colon
                    }
                }
                '!' => {
                    self.bump();
                    if self.chars.peek() == Some(&'=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        Tok::Bang
                    }
                }
                '<' => {
                    self.bump();
                    if self.chars.peek() == Some(&'=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.chars.peek() == Some(&'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                '=' => {
                    self.bump();
                    Tok::Eq
                }
                '"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some('"') => break,
                            Some(ch) => s.push(ch),
                            None => return Err(self.err("unterminated string literal")),
                        }
                    }
                    Tok::Str(s)
                }
                '#' => {
                    self.bump();
                    // #123 node literal, or #ident pragma (e.g. #key)
                    match self.chars.peek() {
                        Some(d) if d.is_ascii_digit() => {
                            let mut n: u32 = 0;
                            while let Some(d) = self.chars.peek() {
                                if let Some(dig) = d.to_digit(10) {
                                    n = n.saturating_mul(10).saturating_add(dig);
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                            Tok::NodeLit(n)
                        }
                        Some(a) if a.is_ascii_alphabetic() => Tok::Hash,
                        _ => return Err(self.err("expected digits or identifier after '#'")),
                    }
                }
                c if c.is_ascii_digit() => {
                    let mut s = String::new();
                    let mut is_float = false;
                    while let Some(&d) = self.chars.peek() {
                        if d.is_ascii_digit() {
                            s.push(d);
                            self.bump();
                        } else if d == '.' {
                            // Lookahead: "1." followed by non-digit is int + Dot.
                            let mut clone = self.chars.clone();
                            clone.next();
                            match clone.peek() {
                                Some(d2) if d2.is_ascii_digit() => {
                                    is_float = true;
                                    s.push('.');
                                    self.bump();
                                }
                                _ => break,
                            }
                        } else {
                            break;
                        }
                    }
                    if is_float {
                        Tok::Float(s.parse().map_err(|_| self.err("bad float literal"))?)
                    } else {
                        Tok::Int(s.parse().map_err(|_| self.err("bad integer literal"))?)
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&d) = self.chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            s.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(s)
                }
                other => return Err(self.err(format!("unexpected character '{other}'"))),
            };
            out.push(SpannedTok { tok, line, col });
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    anon_counter: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser { toks: Lexer::new(src).tokenize()?, pos: 0, anon_counter: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> Error {
        match self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))) {
            Some(t) => Error::parse(format!("{} at line {}, column {}", msg.into(), t.line, t.col)),
            None => Error::parse(format!("{} at end of input", msg.into())),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if self.peek() == Some(&tok) {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}")))
        }
    }

    fn parse_program(&mut self) -> Result<Program> {
        let mut program = Program::new();
        while self.peek().is_some() {
            if self.peek() == Some(&Tok::Hash) {
                self.parse_pragma(&mut program)?;
                continue;
            }
            self.parse_statement(&mut program)?;
        }
        Ok(program)
    }

    fn parse_pragma(&mut self, program: &mut Program) -> Result<()> {
        self.expect(Tok::Hash, "'#'")?;
        let name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            _ => return Err(self.err_here("expected pragma name after '#'")),
        };
        match name.as_str() {
            "key" => {
                self.expect(Tok::LParen, "'('")?;
                let rel = match self.bump() {
                    Some(Tok::Ident(s)) => s,
                    _ => return Err(self.err_here("expected relation name in #key")),
                };
                let mut fields = Vec::new();
                while self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    match self.bump() {
                        Some(Tok::Int(i)) if i >= 0 => fields.push(i as usize),
                        _ => return Err(self.err_here("expected field position in #key")),
                    }
                }
                self.expect(Tok::RParen, "')'")?;
                self.expect(Tok::Dot, "'.'")?;
                program.key_pragmas.push((rel, fields));
                Ok(())
            }
            other => Err(self.err_here(format!("unknown pragma #{other}"))),
        }
    }

    /// Parse one rule, fact, or query statement.
    fn parse_statement(&mut self, program: &mut Program) -> Result<()> {
        // Optional label: `Ident :` not followed by `-` (that would be `:-`).
        let mut label: Option<String> = None;
        if let (Some(Tok::Ident(name)), Some(Tok::Colon)) = (self.peek(), self.peek2()) {
            let name = name.clone();
            self.bump();
            self.bump();
            if name == "Query" || name == "query" {
                let atom = self.parse_atom()?;
                self.expect(Tok::Dot, "'.' after query atom")?;
                program.queries.push(atom);
                return Ok(());
            }
            label = Some(name);
        }

        let head = self.parse_head()?;
        let body = if self.peek() == Some(&Tok::ColonDash) {
            self.bump();
            self.parse_body()?
        } else {
            Vec::new()
        };
        self.expect(Tok::Dot, "'.' at end of rule")?;
        program.rules.push(Rule { name: label, head, body });
        Ok(())
    }

    fn parse_head(&mut self) -> Result<Head> {
        let relation = match self.bump() {
            Some(Tok::Ident(s)) => s,
            _ => return Err(self.err_here("expected relation name in rule head")),
        };
        self.expect(Tok::LParen, "'(' after head relation")?;
        let mut terms = Vec::new();
        let mut location = None;
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let mut at = false;
                if self.peek() == Some(&Tok::At) {
                    self.bump();
                    at = true;
                }
                let term = self.parse_head_term()?;
                if at {
                    if location.is_some() {
                        return Err(self.err_here("multiple '@' annotations in head"));
                    }
                    location = Some(terms.len());
                }
                terms.push(term);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')' after head arguments")?;
        Ok(Head { relation, terms, location })
    }

    fn parse_head_term(&mut self) -> Result<HeadTerm> {
        // Aggregate form: ident '<' Var '>'
        if let (Some(Tok::Ident(name)), Some(Tok::Lt)) = (self.peek(), self.peek2()) {
            if let Some(agg) = AggFunc::from_name(name) {
                self.bump();
                self.bump();
                let var = match self.bump() {
                    Some(Tok::Ident(v)) if starts_upper(&v) => v,
                    _ => return Err(self.err_here("expected variable inside aggregate <...>")),
                };
                self.expect(Tok::Gt, "'>' closing aggregate")?;
                return Ok(HeadTerm::Agg(agg, var));
            }
        }
        Ok(HeadTerm::Plain(self.parse_term()?))
    }

    fn parse_body(&mut self) -> Result<Vec<Literal>> {
        let mut body = Vec::new();
        loop {
            body.push(self.parse_literal()?);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(body)
    }

    fn parse_literal(&mut self) -> Result<Literal> {
        // Negated atom
        if self.peek() == Some(&Tok::Bang) {
            self.bump();
            let atom = self.parse_atom()?;
            return Ok(Literal::NegAtom(atom));
        }
        // Positive atom: Ident '(' ... but NOT a function call used in a
        // comparison (functions start with f_ by convention) and not an
        // aggregate. We decide by trying: if the identifier is followed by
        // '(' and is not a registered-function-style name appearing in a
        // comparison context, we must look ahead for a comparison operator
        // after the closing paren.
        if let (Some(Tok::Ident(_)), Some(Tok::LParen)) = (self.peek(), self.peek2()) {
            // Tentatively parse as an expression (handles `f_foo(...) = X`).
            // If that fails (e.g. because the arguments use `@` location
            // annotations) or the call is not followed by a comparison
            // operator, re-parse from the snapshot as a plain atom.
            let snapshot = self.pos;
            match self.parse_expr() {
                Ok(expr) => match self.peek() {
                    Some(Tok::Eq) | Some(Tok::Ne) | Some(Tok::Lt) | Some(Tok::Le)
                    | Some(Tok::Gt) | Some(Tok::Ge) => {
                        let op = self.parse_compare_op()?;
                        let rhs = self.parse_expr()?;
                        return Ok(Literal::Compare { op, lhs: expr, rhs });
                    }
                    _ => {
                        self.pos = snapshot;
                        let atom = self.parse_atom()?;
                        return Ok(Literal::Atom(atom));
                    }
                },
                Err(_) => {
                    self.pos = snapshot;
                    let atom = self.parse_atom()?;
                    return Ok(Literal::Atom(atom));
                }
            }
        }
        // Otherwise: an assignment/comparison starting with a term.
        let lhs = self.parse_expr()?;
        let op = self.parse_compare_op()?;
        let rhs = self.parse_expr()?;
        if op == CompareOp::Eq {
            if let Expr::Term(Term::Var(v)) = &lhs {
                return Ok(Literal::Assign { var: v.clone(), expr: rhs });
            }
        }
        Ok(Literal::Compare { op, lhs, rhs })
    }

    fn parse_compare_op(&mut self) -> Result<CompareOp> {
        let op = match self.peek() {
            Some(Tok::Eq) => CompareOp::Eq,
            Some(Tok::Ne) => CompareOp::Ne,
            Some(Tok::Lt) => CompareOp::Lt,
            Some(Tok::Le) => CompareOp::Le,
            Some(Tok::Gt) => CompareOp::Gt,
            Some(Tok::Ge) => CompareOp::Ge,
            _ => return Err(self.err_here("expected comparison operator")),
        };
        self.bump();
        Ok(op)
    }

    fn parse_atom(&mut self) -> Result<Atom> {
        let relation = match self.bump() {
            Some(Tok::Ident(s)) => s,
            _ => return Err(self.err_here("expected relation name")),
        };
        self.expect(Tok::LParen, "'(' after relation name")?;
        let mut terms = Vec::new();
        let mut location = None;
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let mut at = false;
                if self.peek() == Some(&Tok::At) {
                    self.bump();
                    at = true;
                }
                let term = self.parse_term()?;
                if at {
                    if location.is_some() {
                        return Err(self.err_here("multiple '@' annotations in atom"));
                    }
                    location = Some(terms.len());
                }
                terms.push(term);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')' after atom arguments")?;
        Ok(Atom { relation, terms, location })
    }

    fn parse_term(&mut self) -> Result<Term> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(self.ident_to_term(s)),
            Some(Tok::Int(i)) => Ok(Term::Const(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(Term::Const(Value::Cost(Cost::new(f)))),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::str(s))),
            Some(Tok::NodeLit(n)) => Ok(Term::Const(Value::Node(NodeId::new(n)))),
            _ => Err(self.err_here("expected term")),
        }
    }

    fn ident_to_term(&mut self, s: String) -> Term {
        if s == "_" {
            self.anon_counter += 1;
            return Term::Var(format!("_anon{}", self.anon_counter));
        }
        if starts_upper(&s) || s.starts_with('_') {
            return Term::Var(s);
        }
        match s.as_str() {
            "nil" => Term::Const(Value::Path(PathVector::nil())),
            "infinity" | "inf" => Term::Const(Value::Cost(Cost::INFINITY)),
            "true" => Term::Const(Value::Bool(true)),
            "false" => Term::Const(Value::Bool(false)),
            _ => Term::Const(Value::str(s)),
        }
    }

    /// Expressions: term | f_name(args) | expr (+|-|*|/) expr  (left assoc,
    /// no precedence — the paper never mixes operators in one expression).
    fn parse_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_primary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Slash) => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_primary_expr()?;
            lhs = Expr::BinOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_primary_expr(&mut self) -> Result<Expr> {
        // Function call?
        if let (Some(Tok::Ident(_)), Some(Tok::LParen)) = (self.peek(), self.peek2()) {
            let name = match self.bump() {
                Some(Tok::Ident(s)) => s,
                _ => unreachable!("peeked an identifier"),
            };
            self.expect(Tok::LParen, "'('")?;
            let mut args = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen, "')' closing call")?;
            return Ok(Expr::Call { func: name, args });
        }
        Ok(Expr::Term(self.parse_term()?))
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_network_reachability() {
        let src = r#"
            // Network-Reachability query (paper section 3.2)
            NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
            NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
                 C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
            Query: path(@S,D,P,C).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.queries.len(), 1);
        let nr1 = p.rule("NR1").unwrap();
        assert_eq!(nr1.head.relation, "path");
        assert_eq!(nr1.head.location, Some(0));
        assert_eq!(nr1.body.len(), 2);
        let nr2 = p.rule("NR2").unwrap();
        assert_eq!(nr2.body.len(), 5);
        assert!(nr2.is_directly_recursive());
        // last literal is the cycle check comparison
        match &nr2.body[4] {
            Literal::Compare { op, lhs, rhs } => {
                assert_eq!(*op, CompareOp::Eq);
                assert!(matches!(lhs, Expr::Call { func, .. } if func == "f_inPath"));
                assert_eq!(rhs, &Expr::constant(false));
            }
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn parses_aggregates_in_head() {
        let src = "BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).";
        let p = parse_program(src).unwrap();
        let head = &p.rules[0].head;
        assert!(head.has_aggregate());
        let (f, v, i) = head.aggregate().unwrap();
        assert_eq!(f, AggFunc::Min);
        assert_eq!(v, "C");
        assert_eq!(i, 2);
    }

    #[test]
    fn parses_negation_and_inequality() {
        let src = r#"
            BPPS1: path(@S,D,P,C) :- magicDst(@D3), path(@S,Z,P1,C1), link(@Z,D,C2),
                   !bestPathCache(@Z,D3,P3,C3), C = C1 + C2, P = f_append(P1,D).
            DV2: path(@S,D,Z,C) :- link(@S,Z,C1), path(@Z,D,W,C2), C = C1 + C2, W != S.
        "#;
        let p = parse_program(src).unwrap();
        let bpps1 = p.rule("BPPS1").unwrap();
        assert!(bpps1
            .body
            .iter()
            .any(|l| matches!(l, Literal::NegAtom(a) if a.relation == "bestPathCache")));
        let dv2 = p.rule("DV2").unwrap();
        assert!(dv2.body.iter().any(|l| matches!(l, Literal::Compare { op: CompareOp::Ne, .. })));
    }

    #[test]
    fn parses_constants() {
        let src = r#"
            magicSources(#2).
            magicSources(#3).
            f1: p(@X,C) :- q(@X), C = 5.
            f2: r(@X,C) :- q(@X), C = 2.5.
            f3: s(@X,P) :- q(@X), P = nil.
            f4: t(@X,C) :- q(@X), C = infinity.
            f5: u(@X,G) :- q(@X), G = "group1".
            f6: v(@X,G) :- q(@X), G = gid.
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 8);
        assert!(p.rules[0].is_fact());
        assert_eq!(
            p.rules[0].head.terms[0],
            HeadTerm::Plain(Term::Const(Value::Node(NodeId::new(2))))
        );
        let c5 = p.rule("f1").unwrap();
        assert!(matches!(
            &c5.body[1],
            Literal::Assign { expr: Expr::Term(Term::Const(Value::Int(5))), .. }
        ));
        let f4 = p.rule("f4").unwrap();
        assert!(matches!(
            &f4.body[1],
            Literal::Assign { expr: Expr::Term(Term::Const(Value::Cost(c))), .. } if c.is_infinite()
        ));
        let f5 = p.rule("f5").unwrap();
        assert!(matches!(
            &f5.body[1],
            Literal::Assign { expr: Expr::Term(Term::Const(Value::Str(_))), .. }
        ));
        let f6 = p.rule("f6").unwrap();
        assert!(matches!(
            &f6.body[1],
            Literal::Assign { expr: Expr::Term(Term::Const(Value::Str(_))), .. }
        ));
    }

    #[test]
    fn parses_key_pragma() {
        let src = r#"
            #key(nextHop, 0, 1).
            #key(link, 0, 1).
            DV4: nextHop(@S,D,Z,C) :- path(@S,D,Z,C), shortestCost(@S,D,C).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.key_pragmas.len(), 2);
        assert_eq!(p.key_pragmas[0], ("nextHop".to_string(), vec![0, 1]));
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let src = "r1: out(@X) :- q(@X,_,_).";
        let p = parse_program(src).unwrap();
        let atom = p.rules[0].body[0].as_atom().unwrap();
        let v1 = atom.terms[1].as_var().unwrap();
        let v2 = atom.terms[2].as_var().unwrap();
        assert_ne!(v1, v2);
    }

    #[test]
    fn arithmetic_chains_are_left_associative() {
        let src = "r1: p(@X,C) :- q(@X,A,B), C = A + B + 1.";
        let p = parse_program(src).unwrap();
        match &p.rules[0].body[1] {
            Literal::Assign { expr: Expr::BinOp { op: ArithOp::Add, lhs, .. }, .. } => {
                assert!(matches!(**lhs, Expr::BinOp { op: ArithOp::Add, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn query_statement_is_captured() {
        let p = parse_program("Query: nextHop(@S,D,Z,C).").unwrap();
        assert!(p.rules.is_empty());
        assert_eq!(p.queries.len(), 1);
        assert_eq!(p.queries[0].relation, "nextHop");
        assert_eq!(p.queries[0].location, Some(0));
    }

    #[test]
    fn query_with_bound_constant() {
        let p = parse_program("Query: path(@#7, D, P, C).").unwrap();
        assert_eq!(p.queries[0].terms[0], Term::Const(Value::Node(NodeId::new(7))));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("r1: p(@X) :- q(@X)").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line"), "got: {msg}");

        assert!(parse_program("r1: p(@X :- q(@X).").is_err());
        assert!(parse_program("r1: p(@X) :- .").is_err());
        assert!(parse_program("#bogus(p).").is_err());
        assert!(parse_program("r1: p(@X) :- q(@X), $.").is_err());
        assert!(parse_program(r#"r1: p(@X) :- q(@X), Y = "unterminated."#).is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let src = r#"
            % prolog style comment
            // C style comment
            r1: p(@X) :- q(@X). // trailing comment
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn parse_rule_helper() {
        let r = parse_rule("DV1: path(@S,D,D,C) :- link(@S,D,C).").unwrap();
        assert_eq!(r.name.as_deref(), Some("DV1"));
        assert_eq!(r.head.arity(), 4);
        assert!(parse_rule("// nothing").is_err());
    }

    #[test]
    fn display_roundtrip_reparses() {
        let src = r#"
            NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
            NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
                 C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
            BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
            BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
            Query: bestPath(@S,D,P,C).
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1.rules.len(), p2.rules.len());
        assert_eq!(p1.queries, p2.queries);
        for (a, b) in p1.rules.iter().zip(p2.rules.iter()) {
            assert_eq!(a.head, b.head);
            assert_eq!(a.body.len(), b.body.len());
        }
    }

    #[test]
    fn multiple_at_annotations_rejected() {
        assert!(parse_program("r1: p(@X,@Y) :- q(@X,Y).").is_err());
        assert!(parse_program("r1: p(X,Y) :- q(@X,@Y).").is_err());
    }
}
