//! Typed views over result tuples.
//!
//! Distributed queries return streams of [`Tuple`]s whose shapes are fixed
//! by the protocol that produced them: `bestPath(@S,D,P,C)` is always
//! (node, node, path, cost), `bestPathCost(@S,D,C)` is always (node, node,
//! cost), and so on. Decoding those tuples by field position at every call
//! site (`t.node_at(0)`, `t.field(3)`) is fragile — a malformed tuple
//! silently turns into `None`s, and an arity change breaks consumers one
//! `unwrap` at a time.
//!
//! The [`FromTuple`] trait centralizes positional decoding in one audited
//! place per result shape. Consumers work with the typed views
//! ([`RouteEntry`], [`CostEntry`], [`ReachEntry`], [`TreeEdge`]) and get a
//! [`crate::Error::Decode`] instead of a silent `None` when a tuple does not
//! match the expected shape.

use crate::cost::Cost;
use crate::error::{Error, Result};
use crate::node::NodeId;
use crate::tuple::Tuple;
use crate::value::{PathVector, Value};

/// Decode a typed view from a result tuple.
///
/// Implementations validate the tuple's arity and field types and return
/// [`Error::Decode`] on any mismatch; they never guess. This is the only
/// place in the workspace where positional field access on *result* tuples
/// is legitimate.
pub trait FromTuple: Sized {
    /// Decode `tuple` into this view, or explain why its shape is wrong.
    fn from_tuple(tuple: &Tuple) -> Result<Self>;
}

/// A view that carries a route cost, enabling finite-cost filtering and
/// cost averaging generically (the paper's AvgPathRTT metric).
pub trait CostView: FromTuple {
    /// The cost field of the result.
    fn cost(&self) -> Cost;
}

/// Shorthand: the field at `i` must exist, with a shape-specific error.
fn want<'t>(tuple: &'t Tuple, i: usize, view: &str) -> Result<&'t Value> {
    tuple.field(i).ok_or_else(|| {
        Error::decode(format!(
            "{view}: {relation}/{arity} tuple has no field {i}: {tuple}",
            relation = tuple.relation(),
            arity = tuple.arity(),
        ))
    })
}

fn want_node(tuple: &Tuple, i: usize, view: &str) -> Result<NodeId> {
    let v = want(tuple, i, view)?;
    v.as_node().ok_or_else(|| type_error(tuple, i, view, "node", v))
}

fn want_cost(tuple: &Tuple, i: usize, view: &str) -> Result<Cost> {
    let v = want(tuple, i, view)?;
    v.as_cost().ok_or_else(|| type_error(tuple, i, view, "cost", v))
}

fn want_path(tuple: &Tuple, i: usize, view: &str) -> Result<PathVector> {
    let v = want(tuple, i, view)?;
    v.as_path().cloned().ok_or_else(|| type_error(tuple, i, view, "path", v))
}

fn want_str(tuple: &Tuple, i: usize, view: &str) -> Result<String> {
    let v = want(tuple, i, view)?;
    v.as_str().map(str::to_owned).ok_or_else(|| type_error(tuple, i, view, "str", v))
}

fn type_error(tuple: &Tuple, i: usize, view: &str, wanted: &str, got: &Value) -> Error {
    Error::decode(format!(
        "{view}: field {i} of {relation} must be a {wanted}, got {got_ty}: {tuple}",
        relation = tuple.relation(),
        got_ty = got.type_name(),
    ))
}

fn want_arity(tuple: &Tuple, arity: usize, view: &str) -> Result<()> {
    if tuple.arity() == arity {
        Ok(())
    } else {
        Err(Error::decode(format!(
            "{view}: expected a {arity}-ary tuple, got {relation}/{got}: {tuple}",
            relation = tuple.relation(),
            got = tuple.arity(),
        )))
    }
}

/// One route of a path-shaped result: `bestPath(@S,D,P,C)` and its
/// relatives (`path`, `lsBest`, `bestPermitted`, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteEntry {
    /// Source node (the node that stores the result).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The path vector from `src` to `dst`.
    pub path: PathVector,
    /// Total path cost (AvgPathRTT's unit when link costs are RTTs).
    pub cost: Cost,
}

impl RouteEntry {
    /// The canonical relation name used by [`RouteEntry::to_tuple`].
    pub const RELATION: &'static str = "bestPath";

    /// Encode back into a `bestPath(@S,D,P,C)` tuple.
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(
            Self::RELATION,
            vec![
                Value::Node(self.src),
                Value::Node(self.dst),
                Value::Path(self.path.clone()),
                Value::Cost(self.cost),
            ],
        )
    }

    /// Number of hops (edges) of the route.
    pub fn hops(&self) -> usize {
        self.path.hops()
    }

    /// True when the route traverses `node` anywhere on its path.
    pub fn traverses(&self, node: NodeId) -> bool {
        self.path.contains(node)
    }
}

impl FromTuple for RouteEntry {
    fn from_tuple(tuple: &Tuple) -> Result<Self> {
        want_arity(tuple, 4, "RouteEntry")?;
        Ok(RouteEntry {
            src: want_node(tuple, 0, "RouteEntry")?,
            dst: want_node(tuple, 1, "RouteEntry")?,
            path: want_path(tuple, 2, "RouteEntry")?,
            cost: want_cost(tuple, 3, "RouteEntry")?,
        })
    }
}

impl CostView for RouteEntry {
    fn cost(&self) -> Cost {
        self.cost
    }
}

impl From<RouteEntry> for Tuple {
    fn from(entry: RouteEntry) -> Tuple {
        entry.to_tuple()
    }
}

/// One row of a cost-shaped result: `bestPathCost(@S,D,C)`,
/// `lsBestCost(@M,D,C)`, and relatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEntry {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Best known cost from `src` to `dst`.
    pub cost: Cost,
}

impl CostEntry {
    /// The canonical relation name used by [`CostEntry::to_tuple`].
    pub const RELATION: &'static str = "bestPathCost";

    /// Encode back into a `bestPathCost(@S,D,C)` tuple.
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(
            Self::RELATION,
            vec![Value::Node(self.src), Value::Node(self.dst), Value::Cost(self.cost)],
        )
    }
}

impl FromTuple for CostEntry {
    fn from_tuple(tuple: &Tuple) -> Result<Self> {
        want_arity(tuple, 3, "CostEntry")?;
        Ok(CostEntry {
            src: want_node(tuple, 0, "CostEntry")?,
            dst: want_node(tuple, 1, "CostEntry")?,
            cost: want_cost(tuple, 2, "CostEntry")?,
        })
    }
}

impl CostView for CostEntry {
    fn cost(&self) -> Cost {
        self.cost
    }
}

impl From<CostEntry> for Tuple {
    fn from(entry: CostEntry) -> Tuple {
        entry.to_tuple()
    }
}

/// The (holder, destination) projection of a reachability-shaped result.
///
/// Decodes any tuple whose first two fields are node addresses — the exact
/// shape of `reachable(@S,D)`, and a faithful projection of wider results
/// whose leading fields follow the paper's (location, destination)
/// convention (e.g. `floodLink(@M,S,...)`: "node `M` knows about a link
/// from `S`").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReachEntry {
    /// The node that stores the result.
    pub src: NodeId,
    /// The node it can reach (or knows about).
    pub dst: NodeId,
}

impl ReachEntry {
    /// The canonical relation name used by [`ReachEntry::to_tuple`].
    pub const RELATION: &'static str = "reachable";

    /// Encode back into a `reachable(@S,D)` tuple.
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(Self::RELATION, vec![Value::Node(self.src), Value::Node(self.dst)])
    }
}

impl FromTuple for ReachEntry {
    fn from_tuple(tuple: &Tuple) -> Result<Self> {
        if tuple.arity() < 2 {
            return Err(Error::decode(format!(
                "ReachEntry: expected at least 2 fields, got {relation}/{got}: {tuple}",
                relation = tuple.relation(),
                got = tuple.arity(),
            )));
        }
        Ok(ReachEntry {
            src: want_node(tuple, 0, "ReachEntry")?,
            dst: want_node(tuple, 1, "ReachEntry")?,
        })
    }
}

impl From<ReachEntry> for Tuple {
    fn from(entry: ReachEntry) -> Tuple {
        entry.to_tuple()
    }
}

/// One edge of a multicast dissemination tree: `forwardState(@I,J,S,G)` —
/// node `I` forwards traffic of group `G` rooted at source `S` to `J`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TreeEdge {
    /// The forwarding node (tree-internal vertex).
    pub node: NodeId,
    /// The child the node forwards to.
    pub child: NodeId,
    /// The multicast source the tree is rooted at.
    pub source: NodeId,
    /// The group identifier.
    pub group: String,
}

impl TreeEdge {
    /// The canonical relation name used by [`TreeEdge::to_tuple`].
    pub const RELATION: &'static str = "forwardState";

    /// Encode back into a `forwardState(@I,J,S,G)` tuple.
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(
            Self::RELATION,
            vec![
                Value::Node(self.node),
                Value::Node(self.child),
                Value::Node(self.source),
                Value::str(&self.group),
            ],
        )
    }
}

impl FromTuple for TreeEdge {
    fn from_tuple(tuple: &Tuple) -> Result<Self> {
        want_arity(tuple, 4, "TreeEdge")?;
        Ok(TreeEdge {
            node: want_node(tuple, 0, "TreeEdge")?,
            child: want_node(tuple, 1, "TreeEdge")?,
            source: want_node(tuple, 2, "TreeEdge")?,
            group: want_str(tuple, 3, "TreeEdge")?,
        })
    }
}

impl From<TreeEdge> for Tuple {
    fn from(edge: TreeEdge) -> Tuple {
        edge.to_tuple()
    }
}

/// Decode every tuple of `tuples`, failing on the first malformed one.
pub fn decode_all<T: FromTuple>(tuples: &[Tuple]) -> Result<Vec<T>> {
    tuples.iter().map(T::from_tuple).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn route_tuple(relation: &str) -> Tuple {
        Tuple::new(
            relation,
            vec![
                Value::Node(n(0)),
                Value::Node(n(4)),
                Value::Path(PathVector::from_nodes(vec![n(0), n(3), n(4)])),
                Value::Cost(Cost::new(2.0)),
            ],
        )
    }

    #[test]
    fn route_entry_decodes_any_path_shaped_relation() {
        for relation in ["bestPath", "path", "lsBest", "bestPermitted"] {
            let e = RouteEntry::from_tuple(&route_tuple(relation)).unwrap();
            assert_eq!(e.src, n(0));
            assert_eq!(e.dst, n(4));
            assert_eq!(e.path.nodes(), &[n(0), n(3), n(4)]);
            assert_eq!(e.cost, Cost::new(2.0));
            assert_eq!(e.hops(), 2);
            assert!(e.traverses(n(3)));
            assert!(!e.traverses(n(9)));
        }
    }

    #[test]
    fn route_entry_round_trips_through_its_canonical_tuple() {
        let e = RouteEntry::from_tuple(&route_tuple("path")).unwrap();
        let t = e.to_tuple();
        assert_eq!(t.relation(), RouteEntry::RELATION);
        assert_eq!(RouteEntry::from_tuple(&t).unwrap(), e);
    }

    #[test]
    fn route_entry_rejects_wrong_arity() {
        let t = Tuple::new("bestPath", vec![Value::Node(n(0)), Value::Node(n(1))]);
        let err = RouteEntry::from_tuple(&t).unwrap_err();
        assert!(matches!(err, Error::Decode(_)), "{err}");
        assert!(err.to_string().contains("4-ary"), "{err}");
    }

    #[test]
    fn route_entry_rejects_non_cost_last_field() {
        // The Fig. 6-9 inflation bug: a tuple whose last field is not a cost
        // must be an error, not a silently-"finite" route.
        let t = Tuple::new(
            "forwardState",
            vec![Value::Node(n(0)), Value::Node(n(1)), Value::Node(n(2)), Value::str("video")],
        );
        let err = RouteEntry::from_tuple(&t).unwrap_err();
        assert!(matches!(err, Error::Decode(_)), "{err}");
        assert!(err.to_string().contains("path"), "{err}");
    }

    #[test]
    fn route_entry_accepts_integer_costs() {
        // Literal costs written in query text are integers; they convert
        // losslessly (Value::as_cost).
        let t = Tuple::new(
            "bestPath",
            vec![
                Value::Node(n(0)),
                Value::Node(n(1)),
                Value::Path(PathVector::from_nodes(vec![n(0), n(1)])),
                Value::Int(3),
            ],
        );
        assert_eq!(RouteEntry::from_tuple(&t).unwrap().cost, Cost::new(3.0));
    }

    #[test]
    fn cost_entry_decodes_and_round_trips() {
        let t = Tuple::new(
            "bestPathCost",
            vec![Value::Node(n(1)), Value::Node(n(2)), Value::Cost(Cost::new(7.5))],
        );
        let e = CostEntry::from_tuple(&t).unwrap();
        assert_eq!(e, CostEntry { src: n(1), dst: n(2), cost: Cost::new(7.5) });
        assert_eq!(CostEntry::from_tuple(&e.to_tuple()).unwrap(), e);
        assert_eq!(e.cost(), Cost::new(7.5));
    }

    #[test]
    fn cost_entry_rejects_route_shaped_tuples() {
        let err = CostEntry::from_tuple(&route_tuple("bestPath")).unwrap_err();
        assert!(matches!(err, Error::Decode(_)), "{err}");
    }

    #[test]
    fn reach_entry_projects_leading_node_fields() {
        let e = ReachEntry::from_tuple(&route_tuple("path")).unwrap();
        assert_eq!(e, ReachEntry { src: n(0), dst: n(4) });
        let bare = Tuple::new("reachable", vec![Value::Node(n(3)), Value::Node(n(5))]);
        let e2 = ReachEntry::from_tuple(&bare).unwrap();
        assert_eq!(ReachEntry::from_tuple(&e2.to_tuple()).unwrap(), e2);
        // but a non-node leading field is an error, not a guess
        let bad = Tuple::new("x", vec![Value::Int(1), Value::Node(n(2))]);
        assert!(matches!(ReachEntry::from_tuple(&bad), Err(Error::Decode(_))));
        let short = Tuple::new("x", vec![Value::Node(n(1))]);
        assert!(matches!(ReachEntry::from_tuple(&short), Err(Error::Decode(_))));
    }

    #[test]
    fn tree_edge_decodes_forward_state() {
        let t = Tuple::new(
            "forwardState",
            vec![Value::Node(n(1)), Value::Node(n(4)), Value::Node(n(0)), Value::str("video")],
        );
        let e = TreeEdge::from_tuple(&t).unwrap();
        assert_eq!(e.node, n(1));
        assert_eq!(e.child, n(4));
        assert_eq!(e.source, n(0));
        assert_eq!(e.group, "video");
        assert_eq!(TreeEdge::from_tuple(&e.to_tuple()).unwrap(), e);
        // A route-shaped tuple is not a tree edge.
        assert!(matches!(TreeEdge::from_tuple(&route_tuple("bestPath")), Err(Error::Decode(_))));
    }

    #[test]
    fn decode_all_propagates_the_first_error() {
        let good = route_tuple("bestPath");
        let bad = Tuple::new("bestPath", vec![Value::Node(n(0))]);
        let ok: Vec<RouteEntry> = decode_all(&[good.clone(), good.clone()]).unwrap();
        assert_eq!(ok.len(), 2);
        assert!(decode_all::<RouteEntry>(&[good, bad]).is_err());
    }

    #[test]
    fn tuple_from_impls_match_to_tuple() {
        let route = RouteEntry::from_tuple(&route_tuple("bestPath")).unwrap();
        assert_eq!(Tuple::from(route.clone()), route.to_tuple());
        let reach = ReachEntry { src: n(1), dst: n(2) };
        assert_eq!(Tuple::from(reach), reach.to_tuple());
    }
}
