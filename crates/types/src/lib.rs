//! # dr-types
//!
//! Foundational types shared by every crate of the declarative-routing
//! workspace: node addresses, link/path costs, the dynamically-typed
//! [`Value`] used by the Datalog engine, relational [`Tuple`]s, and the
//! common error type.
//!
//! The paper ("Declarative Routing: Extensible Routing with Declarative
//! Queries", SIGCOMM 2005) models the routing infrastructure as a directed
//! graph whose nodes run a query processor over *base tuples* (e.g. `link`)
//! and *derived tuples* (e.g. `path`, `bestPath`, `nextHop`). These types are
//! the vocabulary those tuples are made of.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod node;
pub mod rel;
pub mod tuple;
pub mod value;
pub mod view;

pub use cost::Cost;
pub use error::{Error, Result};
pub use node::NodeId;
pub use rel::{RelCatalog, RelId};
pub use tuple::{Tuple, TupleId, TupleKey};
pub use value::{PathVector, Value};
pub use view::{CostEntry, CostView, FromTuple, ReachEntry, RouteEntry, TreeEdge};
