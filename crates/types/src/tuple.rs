//! Relational tuples.
//!
//! Tuples are the unit of storage and communication in the declarative
//! routing system: base tuples such as `link(@S,D,C)` live in a node's local
//! tables, derived tuples such as `path(@S,D,P,C)` are produced by rule
//! evaluation, and both are shipped between nodes during distributed query
//! execution.

use crate::node::NodeId;
use crate::rel::{RelId, WIRE_TAG_BYTES};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply-cloneable tuple: an interned relation id plus field
/// values.
///
/// The relation is carried as a [`RelId`] — comparing, hashing, and cloning
/// a tuple never touches the relation *name*; resolution back to a string
/// only happens for `Display`, debugging, and the typed views. The
/// relation's *location attribute* (which field holds the storing node's
/// address) is schema information kept by the catalog in `dr-datalog`, not
/// by the tuple itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    relation: RelId,
    fields: Arc<Vec<Value>>,
}

impl Tuple {
    /// Build a tuple for `relation` with the given field values, interning
    /// the relation name. Hot paths that already hold a [`RelId`] should use
    /// [`Tuple::from_rel`] and skip the intern lookup.
    pub fn new(relation: impl AsRef<str>, fields: Vec<Value>) -> Self {
        Tuple { relation: RelId::intern(relation.as_ref()), fields: Arc::new(fields) }
    }

    /// Build a tuple for an already-interned relation. This is the zero-
    /// hashing constructor every hot path uses (rule heads, cache tuples,
    /// link updates).
    pub fn from_rel(relation: RelId, fields: Vec<Value>) -> Self {
        Tuple { relation, fields: Arc::new(fields) }
    }

    /// The interned id of the relation this tuple belongs to.
    pub fn rel(&self) -> RelId {
        self.relation
    }

    /// The name of the relation (table) this tuple belongs to.
    pub fn relation(&self) -> &'static str {
        self.relation.name()
    }

    /// All field values, in declaration order.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Field at position `i`, if within arity.
    pub fn field(&self, i: usize) -> Option<&Value> {
        self.fields.get(i)
    }

    /// The node address stored in field `i`, if that field is a node value.
    pub fn node_at(&self, i: usize) -> Option<NodeId> {
        self.fields.get(i).and_then(Value::as_node)
    }

    /// A rough estimate of the tuple's serialized size in bytes, used by the
    /// simulator to charge bandwidth for shipped tuples (paper's per-node
    /// communication overhead metric).
    pub fn wire_size(&self) -> usize {
        // fixed-width interned relation tag + per-field cost
        let mut size = WIRE_TAG_BYTES + 4;
        for f in self.fields.iter() {
            size += match f {
                Value::Node(_) => 4,
                Value::Cost(_) => 8,
                Value::Int(_) => 8,
                Value::Bool(_) => 1,
                Value::Str(s) => s.len() + 2,
                Value::Path(p) => 4 * p.len() + 2,
            };
        }
        size
    }

    /// Project the listed field positions into a key for keyed upserts.
    pub fn key(&self, key_fields: &[usize]) -> TupleKey {
        TupleKey {
            relation: self.relation,
            key: key_fields.iter().filter_map(|&i| self.fields.get(i).cloned()).collect(),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A stable identifier of a stored tuple within one relation's storage.
///
/// Ids are handed out by the storage layer (`dr-datalog`'s `Table`) and are
/// what its secondary indexes point at, so that an index probe never has to
/// clone or re-hash the tuples it selects. An id stays valid until the
/// owning table compacts (which rebuilds every index atomically); ids are
/// never meaningful across tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(u32);

impl TupleId {
    /// Build an id from a storage slot index.
    pub fn new(index: usize) -> TupleId {
        TupleId(index as u32)
    }

    /// The storage slot index this id names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The primary-key projection of a tuple, used to implement the paper's
/// "replacement of existing base tuples that have the same unique key".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TupleKey {
    relation: RelId,
    key: Vec<Value>,
}

impl TupleKey {
    /// Build a key directly from an interned relation and key values —
    /// the way to probe a keyed store (`Database::get_by_key`) without
    /// having a candidate tuple in hand.
    pub fn new(relation: RelId, key: Vec<Value>) -> TupleKey {
        TupleKey { relation, key }
    }

    /// The interned relation this key belongs to.
    pub fn rel(&self) -> RelId {
        self.relation
    }

    /// The name of the relation this key belongs to.
    pub fn relation(&self) -> &'static str {
        self.relation.name()
    }

    /// The key values.
    pub fn values(&self) -> &[Value] {
        &self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use crate::value::PathVector;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
    }

    #[test]
    fn basic_accessors() {
        let t = link(1, 2, 3.0);
        assert_eq!(t.relation(), "link");
        assert_eq!(t.arity(), 3);
        assert_eq!(t.node_at(0), Some(n(1)));
        assert_eq!(t.node_at(2), None);
        assert_eq!(t.field(2).and_then(Value::as_cost), Some(Cost::new(3.0)));
        assert!(t.field(5).is_none());
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(link(1, 2, 3.0), link(1, 2, 3.0));
        assert_ne!(link(1, 2, 3.0), link(1, 2, 4.0));
        assert_ne!(
            link(1, 2, 3.0),
            Tuple::new("path", vec![Value::Node(n(1)), Value::Node(n(2)), Value::from(3.0)])
        );
    }

    #[test]
    fn key_projection_ignores_non_key_fields() {
        let a = link(1, 2, 3.0);
        let b = link(1, 2, 99.0);
        assert_eq!(a.key(&[0, 1]), b.key(&[0, 1]));
        // A directly-constructed key equals the projection of any tuple
        // with the same relation and key values.
        let direct = TupleKey::new(a.rel(), vec![Value::Node(n(1)), Value::Node(n(2))]);
        assert_eq!(direct, a.key(&[0, 1]));
        assert_eq!(direct.rel(), a.rel());
        assert_ne!(a.key(&[0, 1]), link(1, 3, 3.0).key(&[0, 1]));
        assert_eq!(a.key(&[0, 1]).relation(), "link");
        assert_eq!(a.key(&[0, 1]).values().len(), 2);
    }

    #[test]
    fn wire_size_scales_with_path_length() {
        let short = Tuple::new(
            "path",
            vec![
                Value::Node(n(1)),
                Value::Node(n(2)),
                Value::Path(PathVector::from_nodes(vec![n(1), n(2)])),
                Value::from(1.0),
            ],
        );
        let long = Tuple::new(
            "path",
            vec![
                Value::Node(n(1)),
                Value::Node(n(9)),
                Value::Path(PathVector::from_nodes((1..=9).map(n).collect())),
                Value::from(8.0),
            ],
        );
        assert!(long.wire_size() > short.wire_size());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(link(1, 2, 3.0).to_string(), "link(n1,n2,3)");
    }
}
