//! The workspace-wide error type.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the Datalog engine, the planner, and the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The query text could not be parsed; carries a human-readable message
    /// including line/column information.
    Parse(String),
    /// The program failed a static safety / termination check (paper §6).
    Safety(String),
    /// The program could not be localized into per-node dataflows (paper §3.3).
    Planning(String),
    /// A runtime evaluation error (bad arity, type mismatch, unknown function).
    Eval(String),
    /// A simulator misuse error (unknown node, message to a failed node, ...).
    Sim(String),
    /// Catch-all for configuration problems in workloads / experiments.
    Config(String),
    /// A result tuple did not match the typed view that tried to decode it
    /// (wrong arity or field type) — see [`crate::view::FromTuple`].
    Decode(String),
}

impl Error {
    /// Shorthand constructor for parse errors.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }
    /// Shorthand constructor for safety errors.
    pub fn safety(msg: impl Into<String>) -> Self {
        Error::Safety(msg.into())
    }
    /// Shorthand constructor for planning errors.
    pub fn planning(msg: impl Into<String>) -> Self {
        Error::Planning(msg.into())
    }
    /// Shorthand constructor for evaluation errors.
    pub fn eval(msg: impl Into<String>) -> Self {
        Error::Eval(msg.into())
    }
    /// Shorthand constructor for simulator errors.
    pub fn sim(msg: impl Into<String>) -> Self {
        Error::Sim(msg.into())
    }
    /// Shorthand constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }
    /// Shorthand constructor for result-decoding errors.
    pub fn decode(msg: impl Into<String>) -> Self {
        Error::Decode(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Safety(m) => write!(f, "safety error: {m}"),
            Error::Planning(m) => write!(f, "planning error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Sim(m) => write!(f, "simulator error: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Decode(m) => write!(f, "decode error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(Error::parse("bad token").to_string(), "parse error: bad token");
        assert_eq!(Error::safety("loops").to_string(), "safety error: loops");
        assert_eq!(Error::eval("arity").to_string(), "evaluation error: arity");
    }

    #[test]
    fn constructors_build_matching_variants() {
        assert!(matches!(Error::planning("x"), Error::Planning(_)));
        assert!(matches!(Error::sim("x"), Error::Sim(_)));
        assert!(matches!(Error::config("x"), Error::Config(_)));
        assert!(matches!(Error::decode("x"), Error::Decode(_)));
        assert_eq!(Error::decode("bad shape").to_string(), "decode error: bad shape");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(Error::eval("x"));
    }
}
