//! Interned relation identity.
//!
//! Every layer of the system names relations — rule heads, localized ship
//! specs, stored tables, shipped tuple batches — and naming them with heap
//! strings makes every hot path pay for hashing, cloning, and comparing
//! those strings per tuple. Instead, relation names are interned once into
//! a dense [`RelId`] and every layer carries the 4-byte id:
//!
//! * [`Tuple`](crate::Tuple) stores a `RelId` (name resolution only happens
//!   for `Display` and debugging),
//! * `dr-datalog`'s `Database` is a dense `Vec<Table>` indexed by `RelId`,
//! * semi-naïve delta maps and compiled rule plans are `RelId`-indexed,
//! * the wire format ships the fixed-width id instead of the name
//!   (see [`WIRE_TAG_BYTES`]).
//!
//! # Process-wide interning vs. per-query catalogs
//!
//! The process-wide intern table (behind [`RelId::intern`]) is the identity
//! substrate: it guarantees that, within one process, equal names are equal
//! ids — which is also why the simulated wire can ship the interned id
//! directly. Distributed deployments additionally need every *node* to
//! agree on ids without negotiation; that is the job of the per-query
//! [`RelCatalog`] built at plan/localize time. Because the catalog is
//! derived by a deterministic traversal of the query program, every node
//! that localizes the same program derives the identical name↔id binding
//! (conceptually carried by the query's `Install` message). Today's
//! receivers validate each shipped id against the catalog and reject
//! unbound ones; a multi-process transport must go one step further and
//! translate ids to the catalog's dense *wire tags* on encode and through
//! [`RelCatalog::decode`] on receive, because raw interner ids are only
//! meaningful within one process. `wire_tag`/`decode` are that contract,
//! property-tested even though the in-process simulation never needs the
//! translation.
//!
//! ```
//! use dr_types::rel::{RelCatalog, RelId};
//!
//! // Two nodes build catalogs from the same program text → same bindings.
//! let mut a = RelCatalog::new();
//! let mut b = RelCatalog::new();
//! for rel in ["link", "path", "bestPathCost"] {
//!     a.intern(rel);
//!     b.intern(rel);
//! }
//! assert_eq!(a.bindings(), b.bindings());
//!
//! // Wire tags are dense per-query and round-trip through decode.
//! let path = RelId::intern("path");
//! let tag = a.wire_tag(path).expect("path is bound");
//! assert_eq!(a.decode(tag).unwrap(), path);
//!
//! // A stale/unknown tag is a decode error, not a silent misroute.
//! assert!(a.decode(999).is_err());
//! ```

use crate::error::{Error, Result};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// Number of bytes a relation tag occupies on the wire: the fixed-width
/// `RelId` replaces the variable-length relation name in shipped tuple
/// batches (the paper's per-node communication overhead metric, Figs. 10/11).
pub const WIRE_TAG_BYTES: usize = 4;

/// The process-wide intern table. Names are leaked exactly once, so a
/// resolved name is a `&'static str` and tuples can hand out borrowed names
/// without lifetime gymnastics. The set of distinct relation names in a
/// process is small and bounded by the programs it runs, so the leak is a
/// constant.
struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner { names: Vec::new(), ids: HashMap::new() }))
}

/// A dense, process-wide interned relation identifier.
///
/// `RelId` is the identity of a relation everywhere a name used to be: in
/// [`Tuple`](crate::Tuple)s, storage, compiled rule plans, ship specs, and
/// the wire format. Comparing, hashing, and copying it costs the same as a
/// `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u32);

impl RelId {
    /// Intern `name`, returning its dense id (allocating one on first use).
    pub fn intern(name: &str) -> RelId {
        if let Some(id) = RelId::lookup(name) {
            return id;
        }
        let mut table = interner().write().expect("relation interner poisoned");
        // Re-check under the write lock: another thread may have interned
        // the name between our read and write.
        if let Some(&id) = table.ids.get(name) {
            return RelId(id);
        }
        let id = u32::try_from(table.names.len()).expect("relation intern table overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        table.names.push(leaked);
        table.ids.insert(leaked, id);
        RelId(id)
    }

    /// The id of `name` if it has been interned, without interning it.
    pub fn lookup(name: &str) -> Option<RelId> {
        interner().read().expect("relation interner poisoned").ids.get(name).copied().map(RelId)
    }

    /// The interned name this id stands for.
    pub fn name(self) -> &'static str {
        interner().read().expect("relation interner poisoned").names[self.0 as usize]
    }

    /// The dense index of this id (used by `Vec`-backed storage).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw wire representation of this id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<&str> for RelId {
    fn from(name: &str) -> RelId {
        RelId::intern(name)
    }
}

impl From<&String> for RelId {
    fn from(name: &String) -> RelId {
        RelId::intern(name)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The deterministic per-query symbol catalog: the name↔id bindings of every
/// relation a query can store or ship.
///
/// Built at plan/localize time by traversing the query program in a fixed
/// order, so every node derives the identical catalog from the same program
/// — no negotiation. The catalog is what travels (conceptually) with the
/// query's `Install` message. Receivers validate every shipped relation id
/// against it ([`RelCatalog::contains`]); its dense position doubles as the
/// relation's *wire tag*, the encoding a multi-process transport must ship
/// and turn back into a [`RelId`] via [`RelCatalog::decode`] — which turns
/// stale or unknown tags into typed decode errors instead of misroutes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelCatalog {
    /// Binding order: wire tag → interned id.
    entries: Vec<RelId>,
    /// Reverse map: interned id → wire tag.
    tags: HashMap<RelId, u32>,
}

impl RelCatalog {
    /// An empty catalog.
    pub fn new() -> RelCatalog {
        RelCatalog::default()
    }

    /// Intern `name` process-wide and bind it in this catalog (appending a
    /// fresh wire tag when the name is new to the catalog).
    pub fn intern(&mut self, name: &str) -> RelId {
        let rel = RelId::intern(name);
        self.bind(rel);
        rel
    }

    /// Bind an already-interned id in this catalog. Idempotent.
    pub fn bind(&mut self, rel: RelId) {
        if !self.tags.contains_key(&rel) {
            let tag = u32::try_from(self.entries.len()).expect("relation catalog overflow");
            self.tags.insert(rel, tag);
            self.entries.push(rel);
        }
    }

    /// True when `rel` is bound in this catalog.
    pub fn contains(&self, rel: RelId) -> bool {
        self.tags.contains_key(&rel)
    }

    /// The dense wire tag of `rel`, if bound.
    pub fn wire_tag(&self, rel: RelId) -> Option<u32> {
        self.tags.get(&rel).copied()
    }

    /// Decode a wire tag back into a [`RelId`].
    ///
    /// A tag outside the catalog — a stale binding from an older query
    /// version, or garbage — is an [`Error::Decode`].
    pub fn decode(&self, tag: u32) -> Result<RelId> {
        self.entries.get(tag as usize).copied().ok_or_else(|| {
            Error::decode(format!(
                "unknown relation wire tag {tag} (catalog binds {} relations)",
                self.entries.len()
            ))
        })
    }

    /// The bindings in wire-tag order, as `(tag, id, name)` triples. Two
    /// nodes agree on a query's wire format iff their catalogs' bindings
    /// are equal.
    pub fn bindings(&self) -> Vec<(u32, RelId, &'static str)> {
        self.entries.iter().enumerate().map(|(i, &r)| (i as u32, r, r.name())).collect()
    }

    /// Number of bound relations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let a = RelId::intern("relid_test_alpha");
        let b = RelId::intern("relid_test_beta");
        assert_ne!(a, b);
        assert_eq!(a, RelId::intern("relid_test_alpha"));
        assert_eq!(a.name(), "relid_test_alpha");
        assert_eq!(RelId::lookup("relid_test_alpha"), Some(a));
        assert_eq!(a.to_string(), "relid_test_alpha");
        assert_eq!(a.index(), a.raw() as usize);
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(RelId::lookup("relid_test_never_interned_xyzzy"), None);
    }

    #[test]
    fn from_str_interns() {
        let id: RelId = "relid_test_from".into();
        assert_eq!(id, RelId::intern("relid_test_from"));
        let owned = String::from("relid_test_from");
        let via_ref: RelId = (&owned).into();
        assert_eq!(via_ref, id);
    }

    #[test]
    fn catalog_binds_in_order_and_decodes() {
        let mut cat = RelCatalog::new();
        let link = cat.intern("relid_test_cat_link");
        let path = cat.intern("relid_test_cat_path");
        // Re-interning does not mint a new tag.
        assert_eq!(cat.intern("relid_test_cat_link"), link);
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.wire_tag(link), Some(0));
        assert_eq!(cat.wire_tag(path), Some(1));
        assert_eq!(cat.decode(0).unwrap(), link);
        assert_eq!(cat.decode(1).unwrap(), path);
        assert!(cat.contains(path));
        assert!(!cat.is_empty());
    }

    #[test]
    fn unknown_tag_is_a_decode_error() {
        let mut cat = RelCatalog::new();
        cat.intern("relid_test_cat_only");
        let err = cat.decode(7).unwrap_err();
        assert!(matches!(err, Error::Decode(_)), "{err}");
        let unbound = RelId::intern("relid_test_cat_unbound");
        assert_eq!(cat.wire_tag(unbound), None);
        assert!(!cat.contains(unbound));
    }

    #[test]
    fn identical_build_order_yields_identical_bindings() {
        let names = ["relid_test_det_a", "relid_test_det_b", "relid_test_det_c"];
        let mut one = RelCatalog::new();
        let mut two = RelCatalog::new();
        for n in names {
            one.intern(n);
        }
        for n in names {
            two.intern(n);
        }
        assert_eq!(one.bindings(), two.bindings());
        assert_eq!(one, two);
    }
}
