//! Node addresses.
//!
//! The paper addresses every tuple with the network location that stores it
//! (the underlined field in the paper's notation, the `@`-annotated field in
//! our concrete syntax). A [`NodeId`] is that address: an opaque, dense
//! integer handle assigned by the simulator / topology generator.

use std::fmt;

/// Address of a routing-infrastructure node (router or overlay node).
///
/// `NodeId`s are small dense integers so they can index per-node vectors in
/// the simulator. They order and hash cheaply, which matters because every
/// tuple carries at least one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Construct a node id from a raw index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index backing this id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Convenience for indexing `Vec`s keyed by node id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<usize> for NodeId {
    fn from(raw: usize) -> Self {
        NodeId(raw as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(n.raw(), 42);
        assert_eq!(n.index(), 42);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(NodeId::from(42usize), n);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }

    #[test]
    fn ordering_follows_raw_index() {
        let mut v = vec![NodeId::new(3), NodeId::new(1), NodeId::new(2)];
        v.sort();
        assert_eq!(v, vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn hashes_distinctly() {
        let set: HashSet<NodeId> = (0..100).map(NodeId::new).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}
