//! Link and path costs.
//!
//! Costs in the paper are link metrics (delay, loss rate, bandwidth, hop
//! count) combined along a path by an `f_compute` function and aggregated by
//! `min`/`max`. Link failures are modelled by *infinite* cost (rule NR3 /
//! the DV poison-reverse rule DV5), so the cost domain must have a proper
//! `+∞` that is absorbing under addition and maximal under comparison.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Add;

/// A routing cost: a non-negative finite number or `+∞`.
///
/// Internally a wrapper around `f64` with total ordering (NaN is normalised
/// to `+∞` on construction so `Eq`/`Ord` are safe).
#[derive(Debug, Clone, Copy)]
pub struct Cost(f64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0.0);
    /// Infinite cost, used to poison unreachable routes (paper §8, rule NR3).
    pub const INFINITY: Cost = Cost(f64::INFINITY);

    /// Construct a cost; negative and NaN inputs are normalised.
    ///
    /// Negative inputs (and `-0.0`) are clamped to `+0.0` (costs are metrics,
    /// never credits); NaN becomes `+∞` so the total order stays meaningful
    /// and `Hash` agrees with `Eq`.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            Cost(f64::INFINITY)
        } else if v <= 0.0 {
            Cost(0.0)
        } else {
            Cost(v)
        }
    }

    /// The raw floating point value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// True when this cost is `+∞`.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// True when this cost is finite.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Saturating addition: anything plus `+∞` is `+∞`.
    pub fn saturating_add(self, other: Cost) -> Cost {
        Cost::new(self.0 + other.0)
    }

    /// The minimum of two costs.
    pub fn min(self, other: Cost) -> Cost {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two costs.
    pub fn max(self, other: Cost) -> Cost {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Cost {
    fn default() -> Self {
        Cost::ZERO
    }
}

impl PartialEq for Cost {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 || (self.0.is_infinite() && other.0.is_infinite())
    }
}

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> Ordering {
        // `new` guarantees no NaN, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

impl std::hash::Hash for Cost {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // `new` normalises NaN and -0.0, so bit-hashing agrees with `Eq`.
        self.0.to_bits().hash(state);
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        self.saturating_add(rhs)
    }
}

impl From<f64> for Cost {
    fn from(v: f64) -> Self {
        Cost::new(v)
    }
}

impl From<u32> for Cost {
    fn from(v: u32) -> Self {
        Cost::new(v as f64)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_nan_and_negative() {
        assert!(Cost::new(f64::NAN).is_infinite());
        assert_eq!(Cost::new(-3.0), Cost::ZERO);
    }

    #[test]
    fn infinity_is_absorbing_under_addition() {
        assert!(Cost::INFINITY.saturating_add(Cost::new(5.0)).is_infinite());
        assert!((Cost::new(5.0) + Cost::INFINITY).is_infinite());
    }

    #[test]
    fn ordering_places_infinity_last() {
        let mut v = [Cost::INFINITY, Cost::new(2.0), Cost::new(1.0)];
        v.sort();
        assert_eq!(v[0], Cost::new(1.0));
        assert!(v[2].is_infinite());
    }

    #[test]
    fn min_max_behave() {
        assert_eq!(Cost::new(1.0).min(Cost::new(2.0)), Cost::new(1.0));
        assert_eq!(Cost::new(1.0).max(Cost::new(2.0)), Cost::new(2.0));
        assert_eq!(Cost::INFINITY.min(Cost::new(9.0)), Cost::new(9.0));
    }

    #[test]
    fn display_formats_infinity() {
        assert_eq!(Cost::INFINITY.to_string(), "inf");
        assert_eq!(Cost::new(1.5).to_string(), "1.5");
    }
}
