//! Dynamically-typed values carried by tuples.
//!
//! The paper's Datalog dialect manipulates node addresses, numeric link
//! metrics, path vectors (lists of node addresses, built by `f_concatPath`
//! and inspected by `f_inPath` / `f_head` / `f_tail` / `f_isEmpty`), strings
//! (group identifiers such as `gid`), and booleans (results of predicate
//! functions). [`Value`] is the sum of those.

use crate::cost::Cost;
use crate::node::NodeId;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A path vector: an ordered list of node addresses, e.g. `[a, c, d]`.
///
/// Path vectors are immutable and shared (`Arc`) because the same vector is
/// referenced by many derived tuples during query evaluation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PathVector {
    nodes: Arc<Vec<NodeId>>,
}

impl PathVector {
    /// The empty path (`nil` in the paper's rules).
    pub fn nil() -> Self {
        PathVector { nodes: Arc::new(Vec::new()) }
    }

    /// Build a path vector from a list of node ids.
    pub fn from_nodes(nodes: Vec<NodeId>) -> Self {
        PathVector { nodes: Arc::new(nodes) }
    }

    /// The single-node path `[n]`.
    pub fn singleton(n: NodeId) -> Self {
        PathVector::from_nodes(vec![n])
    }

    /// Number of nodes in the path vector.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the path vector holds no nodes (paper's `f_isEmpty`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes of the path, in order from source to destination.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The first node of the path (paper's `f_head`), if any.
    pub fn head(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// The last node of the path, if any.
    pub fn last(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// The path with the first node removed (paper's `f_tail`).
    pub fn tail(&self) -> PathVector {
        if self.nodes.is_empty() {
            self.clone()
        } else {
            PathVector::from_nodes(self.nodes[1..].to_vec())
        }
    }

    /// True when `n` appears anywhere in the path (paper's `f_inPath`).
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }

    /// Prepend a node to the front of the path.
    ///
    /// This is the building block of the right-recursive `f_concatPath(link,
    /// P2)`: the link's source is prepended to the already-computed suffix.
    pub fn prepend(&self, n: NodeId) -> PathVector {
        let mut v = Vec::with_capacity(self.nodes.len() + 1);
        v.push(n);
        v.extend_from_slice(&self.nodes);
        PathVector::from_nodes(v)
    }

    /// Append a node to the back of the path (left-recursive DSR variant).
    pub fn append(&self, n: NodeId) -> PathVector {
        let mut v = Vec::with_capacity(self.nodes.len() + 1);
        v.extend_from_slice(&self.nodes);
        v.push(n);
        PathVector::from_nodes(v)
    }

    /// Concatenate two path vectors, dropping a duplicated junction node if
    /// the first ends where the second starts (used by the sharing rule
    /// BPPS2 which splices a cached best path onto a prefix).
    pub fn join(&self, other: &PathVector) -> PathVector {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut v = self.nodes.as_ref().clone();
        let skip_first = self.last() == other.head();
        let start = usize::from(skip_first);
        v.extend_from_slice(&other.nodes[start..]);
        PathVector::from_nodes(v)
    }

    /// True when the path visits some node more than once.
    pub fn has_cycle(&self) -> bool {
        for (i, a) in self.nodes.iter().enumerate() {
            if self.nodes[i + 1..].contains(a) {
                return true;
            }
        }
        false
    }

    /// Number of hops (edges) the path represents.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

impl fmt::Display for PathVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<NodeId> for PathVector {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        PathVector::from_nodes(iter.into_iter().collect())
    }
}

/// A dynamically-typed value stored in a tuple field.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A node address (the paper's underlined location fields, sources,
    /// destinations and next hops).
    Node(NodeId),
    /// A numeric cost / link metric.
    Cost(Cost),
    /// A signed integer (counters, group sizes, thresholds).
    Int(i64),
    /// A boolean (result of predicate functions such as `f_inPath`).
    Bool(bool),
    /// An interned string (multicast group ids, metric names, labels).
    Str(Arc<str>),
    /// A path vector.
    Path(PathVector),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Interpret the value as a node id, if it is one.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Value::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// Interpret the value as a cost. Integer values convert losslessly so
    /// that literal costs written in query text (e.g. `C < 10`) compare
    /// against measured metrics.
    pub fn as_cost(&self) -> Option<Cost> {
        match self {
            Value::Cost(c) => Some(*c),
            Value::Int(i) => Some(Cost::new(*i as f64)),
            _ => None,
        }
    }

    /// Interpret the value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret the value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret the value as a path vector, if it is one.
    pub fn as_path(&self) -> Option<&PathVector> {
        match self {
            Value::Path(p) => Some(p),
            _ => None,
        }
    }

    /// Interpret the value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is an infinite cost — the ∞ tombstones of the
    /// paper's §8 route-invalidation rules. Both pruning layers (the
    /// centralized evaluator's aggregate selections and the distributed
    /// processor's tombstone admission) share this predicate.
    pub fn is_infinite_cost(&self) -> bool {
        self.as_cost().map(|c| c.is_infinite()).unwrap_or(false)
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Node(_) => "node",
            Value::Cost(_) => "cost",
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::Path(_) => "path",
        }
    }

    /// Numeric comparison that treats `Cost` and `Int` uniformly; other
    /// types fall back to the derived structural ordering.
    pub fn compare_numeric(&self, other: &Value) -> Ordering {
        match (self.as_cost(), other.as_cost()) {
            (Some(a), Some(b)) => a.cmp(&b),
            _ => self.cmp(other),
        }
    }
}

impl From<NodeId> for Value {
    fn from(n: NodeId) -> Self {
        Value::Node(n)
    }
}

impl From<Cost> for Value {
    fn from(c: Cost) -> Self {
        Value::Cost(c)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Cost(Cost::new(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<PathVector> for Value {
    fn from(p: PathVector) -> Self {
        Value::Path(p)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Node(n) => write!(f, "{n}"),
            Value::Cost(c) => write!(f, "{c}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Path(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn path_vector_basics() {
        let p = PathVector::from_nodes(vec![n(1), n(2), n(3)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.hops(), 2);
        assert_eq!(p.head(), Some(n(1)));
        assert_eq!(p.last(), Some(n(3)));
        assert!(p.contains(n(2)));
        assert!(!p.contains(n(9)));
        assert!(!p.is_empty());
        assert!(PathVector::nil().is_empty());
    }

    #[test]
    fn path_vector_tail_and_head_match_paper_functions() {
        let p = PathVector::from_nodes(vec![n(1), n(2), n(3)]);
        assert_eq!(p.tail().nodes(), &[n(2), n(3)]);
        assert_eq!(p.tail().tail().tail().nodes(), &[] as &[NodeId]);
        assert_eq!(PathVector::nil().head(), None);
        assert_eq!(PathVector::nil().tail(), PathVector::nil());
    }

    #[test]
    fn prepend_matches_right_recursive_concat() {
        // f_concatPath(link(a, b), [b, d]) = [a, b, d]
        let suffix = PathVector::from_nodes(vec![n(2), n(4)]);
        assert_eq!(suffix.prepend(n(1)).nodes(), &[n(1), n(2), n(4)]);
    }

    #[test]
    fn append_matches_left_recursive_concat() {
        // f_concatPath([a, b], link(b, d)) = [a, b, d]
        let prefix = PathVector::from_nodes(vec![n(1), n(2)]);
        assert_eq!(prefix.append(n(4)).nodes(), &[n(1), n(2), n(4)]);
    }

    #[test]
    fn join_deduplicates_junction_node() {
        let a = PathVector::from_nodes(vec![n(1), n(2)]);
        let b = PathVector::from_nodes(vec![n(2), n(3)]);
        assert_eq!(a.join(&b).nodes(), &[n(1), n(2), n(3)]);
        let c = PathVector::from_nodes(vec![n(5), n(6)]);
        assert_eq!(a.join(&c).nodes(), &[n(1), n(2), n(5), n(6)]);
        assert_eq!(PathVector::nil().join(&a), a);
        assert_eq!(a.join(&PathVector::nil()), a);
    }

    #[test]
    fn cycle_detection() {
        assert!(!PathVector::from_nodes(vec![n(1), n(2), n(3)]).has_cycle());
        assert!(PathVector::from_nodes(vec![n(1), n(2), n(1)]).has_cycle());
        assert!(!PathVector::nil().has_cycle());
        assert!(!PathVector::singleton(n(1)).has_cycle());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Node(n(1)).as_node(), Some(n(1)));
        assert_eq!(Value::from(3.5).as_cost(), Some(Cost::new(3.5)));
        assert_eq!(Value::Int(4).as_cost(), Some(Cost::new(4.0)));
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("gid").as_str(), Some("gid"));
        assert!(Value::Node(n(1)).as_cost().is_none());
        assert!(Value::Bool(false).as_node().is_none());
    }

    #[test]
    fn numeric_comparison_mixes_int_and_cost() {
        assert_eq!(Value::Int(2).compare_numeric(&Value::from(3.0)), Ordering::Less);
        assert_eq!(Value::from(5.0).compare_numeric(&Value::Int(5)), Ordering::Equal);
    }

    #[test]
    fn display_round_trips_visually() {
        let p = PathVector::from_nodes(vec![n(1), n(2)]);
        assert_eq!(Value::Path(p).to_string(), "[n1,n2]");
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert_eq!(Value::Node(n(3)).to_string(), "n3");
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(Value::Node(n(0)).type_name(), "node");
        assert_eq!(Value::from(1.0).type_name(), "cost");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::Bool(true).type_name(), "bool");
        assert_eq!(Value::str("s").type_name(), "str");
        assert_eq!(Value::Path(PathVector::nil()).type_name(), "path");
    }
}
