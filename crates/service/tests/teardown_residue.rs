//! Regression: the issue → teardown → issue cycle leaves zero residue in
//! the engine. Teardown is not bookkeeping — it must unwind stored
//! tuples, pending delta buffers, prune state, shared cache relations,
//! and the query library on every node, and a subsequent identical query
//! must behave exactly like the first.

use std::collections::BTreeMap;

use dr_service::protocol::{IssueOptions, Response, WireTuple, WireValue};
use dr_service::service::default_topology;
use dr_service::transport::InProcHub;
use dr_service::{Client, ServiceConfig, BEST_PATH_PROGRAM};

const NODES: usize = 10;
const CYCLES: usize = 3;

/// Run one issue → converge → snapshot → teardown → settle cycle and
/// return (result rows streamed, footprint line after teardown).
fn one_cycle(
    client: &mut Client<dr_service::transport::InProcConn>,
) -> (BTreeMap<String, usize>, u64) {
    // Record provenance throughout, so teardown also has derivation
    // bindings to unwind — the prov_records axis of the footprint pin.
    let options = IssueOptions { record_provenance: true, ..IssueOptions::default() };
    let qid = client.issue(BEST_PATH_PROGRAM, options).expect("issue");
    client.subscribe(qid).expect("subscribe");
    client.advance(15_000).expect("converge");

    let mut rows: BTreeMap<String, usize> = BTreeMap::new();
    let mut streamed: u64 = 0;
    let mut explainable: Option<WireTuple> = None;
    for push in client.poll_pushed().expect("poll") {
        if let Response::Delta { added, removed, .. } = push {
            streamed += (added.len() + removed.len()) as u64;
            for t in added {
                if explainable.is_none()
                    && t.values.iter().any(|v| matches!(v, WireValue::Cost(c) if c.is_finite()))
                {
                    explainable = Some(t.clone());
                }
                *rows.entry(format!("{t:?}")).or_insert(0) += 1;
            }
            for t in removed {
                let key = format!("{t:?}");
                let n = rows.get_mut(&key).expect("removed unseen row");
                *n -= 1;
                if *n == 0 {
                    rows.remove(&key);
                }
            }
        }
    }
    // Exercise the explain path while the query lives: resolving remote
    // provenance pointers caches fetched records, which teardown must also
    // discard for the residue pin below to hold.
    let route = explainable.expect("a finite route to explain");
    let nodes = client.explain(qid, route).expect("explain");
    assert!(!nodes.is_empty(), "explanation must carry at least the root");
    client.teardown(qid).expect("teardown");
    client.advance(15_000).expect("settle");
    client.poll_pushed().expect("drain teardown deltas");
    (rows, streamed)
}

#[test]
fn issue_teardown_issue_leaves_no_residue() {
    let hub = InProcHub::new(default_topology(NODES), ServiceConfig::default());
    let mut client = Client::connect(hub.connect(), "cycler").expect("connect");

    // Baseline: an idle deployment holds no engine state at all.
    let baseline = hub.with_service(|svc| svc.harness().state_footprint());
    assert!(baseline.is_empty(), "seed deployment must start empty: {baseline:?}");

    let mut first_rows = None;
    for cycle in 0..CYCLES {
        let (rows, streamed) = one_cycle(&mut client);
        assert!(streamed > 0, "cycle {cycle}: convergence must stream deltas");
        assert!(!rows.is_empty(), "cycle {cycle}: best-path must produce routes");

        // Every cycle computes the identical result set: no residue from
        // the previous cycle (stale caches, leftover pending tuples)
        // contaminates the next deployment.
        match &first_rows {
            None => first_rows = Some(rows),
            Some(first) => assert_eq!(
                first, &rows,
                "cycle {cycle}: result set differs from cycle 0 — residue detected"
            ),
        }

        // The counter pin: after teardown the deployment-wide footprint is
        // *exactly* zero on every axis, not merely "small".
        hub.with_service(|svc| {
            let f = svc.harness().state_footprint();
            assert_eq!(f.instances, 0, "cycle {cycle}: instances leaked");
            assert_eq!(f.stored_tuples, 0, "cycle {cycle}: stored tuples leaked");
            assert_eq!(f.pending_tuples, 0, "cycle {cycle}: pending buffers leaked");
            assert_eq!(f.prune_entries, 0, "cycle {cycle}: prune entries leaked");
            assert_eq!(f.shared_relations, 0, "cycle {cycle}: shared relations leaked");
            assert_eq!(f.shared_tuples, 0, "cycle {cycle}: shared cache tuples leaked");
            assert_eq!(f.prov_records, 0, "cycle {cycle}: provenance records leaked");
            assert_eq!(svc.harness().library().len(), 0, "cycle {cycle}: library spec leaked");
            assert_eq!(svc.live_queries(), 0, "cycle {cycle}: service believes a query lives");
        });
    }

    // Lifecycle counters agree with what we did.
    hub.with_service(|svc| {
        let c = svc.counters();
        assert_eq!(c.queries_issued, CYCLES as u64);
        assert_eq!(c.queries_torn_down, CYCLES as u64);
        assert_eq!(c.errors, 0);
    });
}

/// The same invariant holds when sharing is on: the shared cache relation
/// is dropped with its last user and rebuilt cleanly by the next query.
#[test]
fn shared_cache_queries_unwind_completely_too() {
    let hub = InProcHub::new(default_topology(NODES), ServiceConfig::default());
    let mut client = Client::connect(hub.connect(), "sharer").expect("connect");

    for cycle in 0..2 {
        let qid = client
            .issue(
                BEST_PATH_PROGRAM,
                IssueOptions { share_results: true, ..IssueOptions::default() },
            )
            .expect("issue");
        client.advance(15_000).expect("converge");
        hub.with_service(|svc| {
            assert!(
                svc.harness().state_footprint().shared_relations > 0,
                "cycle {cycle}: sharing must declare the cache relation"
            );
        });
        client.teardown(qid).expect("teardown");
        client.advance(15_000).expect("settle");
        hub.with_service(|svc| {
            let f = svc.harness().state_footprint();
            assert!(f.is_empty(), "cycle {cycle}: shared-cache deployment left residue: {f:?}");
        });
    }
}
