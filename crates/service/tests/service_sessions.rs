//! Service-level integration: many concurrent sessions multiplexed over
//! one resident deployment, compared against a single-harness oracle
//! driven with the identical schedule, plus the backpressure contract.

use std::collections::BTreeMap;

use dr_core::{ResultCursor, RoutingHarness};
use dr_netsim::{EventSource, SimDuration, SimTime};
use dr_service::protocol::{IssueOptions, Response, WireTuple, WireValue};
use dr_service::service::default_topology;
use dr_service::transport::InProcHub;
use dr_service::{Client, ServiceConfig, BEST_PATH_PROGRAM};
use dr_types::Tuple;
use dr_workloads::ChurnSchedule;

const NODES: usize = 8;
const SESSIONS: usize = 100;
const STEP_MS: u64 = 500;
const STEPS: usize = 40; // 20 s simulated, past the churn schedule's end
const TEARDOWN_AT_STEP: usize = 10;
const TORN_SESSIONS: usize = 20;

fn churn() -> ChurnSchedule {
    // Fail 20% of the 8 nodes at 2 s, rejoin at 5 s, again at 8 s / 11 s.
    ChurnSchedule::alternating(
        NODES,
        0.2,
        SimTime::from_millis(2_000),
        SimDuration::from_millis(3_000),
        2,
        5,
    )
}

fn apply_delta(mirror: &mut BTreeMap<Tuple, usize>, added: &[WireTuple], removed: &[WireTuple]) {
    for t in added {
        *mirror.entry(t.to_tuple()).or_insert(0) += 1;
    }
    for t in removed {
        let tuple = t.to_tuple();
        match mirror.get_mut(&tuple) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                mirror.remove(&tuple);
            }
            None => panic!("delta removed a tuple the mirror never saw: {tuple:?}"),
        }
    }
}

fn multiset(tuples: Vec<Tuple>) -> BTreeMap<Tuple, usize> {
    let mut out = BTreeMap::new();
    for t in tuples {
        *out.entry(t).or_insert(0) += 1;
    }
    out
}

/// One hundred concurrent sessions issue, subscribe, and (some) tear down
/// while the deployment churns. Every session's streamed mirror must end
/// equal to what a single harness, driven with the identical schedule,
/// computes for the corresponding query.
#[test]
fn hundred_sessions_under_churn_match_single_harness_oracle() {
    let hub = InProcHub::new(default_topology(NODES), ServiceConfig::default());
    hub.with_service(|svc| {
        let topology = svc.harness().sim().topology().clone();
        for event in churn().events_for(&topology) {
            event.schedule(svc.harness_mut().sim_mut());
        }
    });

    // The oracle: same topology, same churn, same issue schedule, one
    // harness driven directly.
    let mut oracle = RoutingHarness::new(default_topology(NODES));
    {
        let topology = oracle.sim().topology().clone();
        for event in churn().events_for(&topology) {
            event.schedule(oracle.sim_mut());
        }
    }

    let mut driver = Client::connect(hub.connect(), "driver").expect("driver connects");
    let mut clients = Vec::with_capacity(SESSIONS);
    let mut qids = Vec::with_capacity(SESSIONS);
    let mut oracle_qids = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS {
        let mut client = Client::connect(hub.connect(), &format!("s{i}")).expect("connect");
        let issuer = (i % NODES) as u32;
        let qid = client
            .issue(
                BEST_PATH_PROGRAM,
                IssueOptions { issuer, name: format!("q{i}"), ..IssueOptions::default() },
            )
            .expect("issue");
        client.subscribe(qid).expect("subscribe");
        qids.push(qid);
        clients.push(client);

        let at = oracle.now();
        let handle = oracle
            .issue(dr_datalog::parse_program(BEST_PATH_PROGRAM).expect("parse"))
            .from(dr_types::NodeId::new(issuer))
            .at(at)
            .named(format!("q{i}"))
            .submit()
            .expect("oracle issue");
        oracle_qids.push(handle.id());
    }
    assert_eq!(qids, oracle_qids, "service and oracle must allocate identical query ids");

    let mut mirrors: Vec<BTreeMap<Tuple, usize>> = vec![BTreeMap::new(); SESSIONS];
    for step in 0..STEPS {
        if step == TEARDOWN_AT_STEP {
            for i in 0..TORN_SESSIONS {
                clients[i].teardown(qids[i]).expect("teardown");
                let at = oracle.now();
                oracle.teardown(qids[i], at);
            }
        }
        driver.advance(STEP_MS).expect("advance");
        oracle.run_until(SimTime::from_millis((step as u64 + 1) * STEP_MS));
        for (i, client) in clients.iter_mut().enumerate() {
            for push in client.poll_pushed().expect("poll") {
                match push {
                    Response::Delta { added, removed, .. } => {
                        apply_delta(&mut mirrors[i], &added, &removed);
                    }
                    Response::Lagged { .. } => {
                        panic!("default queue cap must not lag this workload")
                    }
                    other => panic!("unexpected push {other:?}"),
                }
            }
        }
    }

    for (i, mirror) in mirrors.iter().enumerate() {
        let expected = multiset(ResultCursor::new(oracle_qids[i]).poll(&oracle).added);
        if i < TORN_SESSIONS {
            assert!(
                mirror.is_empty() && expected.is_empty(),
                "session {i}: torn-down query must stream down to nothing \
                 (mirror {} rows, oracle {} rows)",
                mirror.len(),
                expected.len()
            );
        } else {
            assert_eq!(
                mirror, &expected,
                "session {i}: streamed mirror diverged from the oracle harness"
            );
            assert!(!mirror.is_empty(), "session {i}: converged query cannot be empty");
        }
    }

    // The service really multiplexed: one deployment, 101 sessions, and
    // the engine's footprint matches the oracle's exactly.
    hub.with_service(|svc| {
        assert_eq!(svc.session_count(), SESSIONS + 1);
        assert_eq!(svc.live_queries(), SESSIONS - TORN_SESSIONS);
        assert_eq!(svc.harness().state_footprint(), oracle.state_footprint());
        let c = svc.counters();
        assert_eq!(c.queries_issued, SESSIONS as u64);
        assert_eq!(c.queries_torn_down, TORN_SESSIONS as u64);
    });
}

/// A subscriber that stops reading gets bounded buffering and an explicit
/// `Lagged` notice once it catches up — not an unbounded queue.
#[test]
fn slow_subscriber_is_bounded_and_told_it_lagged() {
    const CAP: usize = 2;
    let hub = InProcHub::new(
        default_topology(NODES),
        ServiceConfig { subscriber_queue_cap: CAP, ..ServiceConfig::default() },
    );
    let mut driver = Client::connect(hub.connect(), "driver").expect("driver connects");
    let mut slow = Client::connect(hub.connect(), "slow").expect("slow connects");
    // The driver owns the query and keeps its routes moving; the slow
    // session only subscribes — and then goes completely silent, so
    // nothing drains its push queue.
    let qid = driver.issue(BEST_PATH_PROGRAM, IssueOptions::default()).expect("issue");
    slow.subscribe(qid).expect("subscribe");
    driver.advance(10_000).expect("converge");

    let slow_sid = slow.session();
    for round in 0..30u64 {
        let cost = if round % 2 == 0 { 6.0 } else { 1.0 };
        let fact = WireTuple {
            relation: "link".to_string(),
            values: vec![WireValue::Node(0), WireValue::Node(1), WireValue::Cost(cost)],
        };
        driver.inject_facts(qid, 0, vec![fact]).expect("inject");
        driver.advance(1_000).expect("advance");
        // Memory bound: the session outbox never exceeds its cap no matter
        // how long the subscriber stays silent.
        hub.with_service(|svc| {
            assert!(svc.outbox_len(slow_sid) <= CAP, "outbox exceeded its cap at round {round}");
        });
    }

    // Catch up: drain everything buffered, then provoke one more delta.
    let first_drain = slow.poll_pushed().expect("drain");
    assert!(
        first_drain.len() <= 2 * CAP + 2,
        "a lagging subscriber must not accumulate unbounded pushes, got {}",
        first_drain.len()
    );
    let fact = WireTuple {
        relation: "link".to_string(),
        values: vec![WireValue::Node(0), WireValue::Node(1), WireValue::Cost(9.0)],
    };
    driver.inject_facts(qid, 0, vec![fact]).expect("inject");
    driver.advance(2_000).expect("advance");
    let caught_up = slow.poll_pushed().expect("drain");
    let missed = caught_up.iter().find_map(|r| match r {
        Response::Lagged { missed, .. } => Some(*missed),
        _ => None,
    });
    assert!(
        missed.is_some_and(|m| m > 0),
        "the service must report how many delta rounds were coalesced; got {caught_up:?}"
    );
}

/// Dropping a client connection closes its session and really unwinds its
/// queries from the deployment.
#[test]
fn dropped_connection_tears_down_its_queries() {
    let hub = InProcHub::new(default_topology(NODES), ServiceConfig::default());
    let mut driver = Client::connect(hub.connect(), "driver").expect("driver connects");
    {
        let mut ephemeral = Client::connect(hub.connect(), "ephemeral").expect("connect");
        ephemeral.issue(BEST_PATH_PROGRAM, IssueOptions::default()).expect("issue");
        driver.advance(5_000).expect("converge");
        hub.with_service(|svc| {
            assert_eq!(svc.live_queries(), 1);
            assert!(!svc.harness().state_footprint().is_empty());
        });
    } // drop closes the connection

    driver.advance(10_000).expect("let the teardown flood settle");
    hub.with_service(|svc| {
        assert_eq!(svc.live_queries(), 0);
        assert!(
            svc.harness().state_footprint().is_empty(),
            "a dropped session must not leak engine state"
        );
        assert_eq!(svc.harness().library().len(), 0);
    });
}
