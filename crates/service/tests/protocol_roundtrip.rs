//! Property tests for the service wire protocol: every encodable message
//! round-trips bit-exactly, and no malformed or truncated input can do
//! anything except return a typed [`ProtoError`].

use proptest::prelude::*;

use dr_service::protocol::{
    frame, FrameBuf, IssueOptions, ProtoError, Request, Response, WireDerivation, WireTuple,
    WireValue,
};
use dr_service::ErrorCode;

fn wire_value() -> impl Strategy<Value = WireValue> {
    (
        0u32..6,
        0u32..100_000,
        -1.0e6f64..1.0e6,
        "[a-zA-Z0-9_ ]{0,12}",
        collection::vec(0u32..512, 0..6),
    )
        .prop_map(|(tag, n, f, s, path)| match tag {
            0 => WireValue::Node(n),
            1 => WireValue::Cost(if n % 7 == 0 { f64::INFINITY } else { f }),
            2 => WireValue::Int(i64::from(n) - 50_000),
            3 => WireValue::Bool(n % 2 == 0),
            4 => WireValue::Str(s),
            _ => WireValue::Path(path),
        })
}

fn wire_tuple() -> impl Strategy<Value = WireTuple> {
    ("[a-z][a-zA-Z0-9]{0,10}", collection::vec(wire_value(), 0..5))
        .prop_map(|(relation, values)| WireTuple { relation, values })
}

fn issue_options() -> impl Strategy<Value = IssueOptions> {
    (
        "[a-z][a-z0-9-]{0,8}",
        0u32..64,
        collection::vec("[a-z][a-zA-Z]{0,8}", 0..3),
        0u32..4,
        "[a-z][a-zA-Z]{0,10}",
        collection::vec(wire_tuple(), 0..3),
    )
        .prop_map(|(name, issuer, replicated, flags, cache_relation, facts)| IssueOptions {
            name,
            issuer,
            replicated,
            aggregate_selections: flags & 1 != 0,
            share_results: flags & 2 != 0,
            cache_relation,
            facts,
            record_provenance: flags & 4 != 0,
        })
}

fn wire_derivation() -> impl Strategy<Value = WireDerivation> {
    // The codec round-trips any structure; validity (child indexes forming
    // a tree) is `tree_from_flat`'s concern, tested in the unit tests.
    (
        0u32..4,
        wire_tuple(),
        "[A-Z]{0,4}[0-9]{0,2}",
        0u32..64,
        0u32..1_000,
        collection::vec(0u32..32, 0..4),
    )
        .prop_map(|(kind, tuple, rule, node, prov_id, children)| WireDerivation {
            kind: kind as u8,
            tuple,
            rule,
            node,
            prov_id,
            children,
        })
}

fn request() -> impl Strategy<Value = Request> {
    (
        0u32..9,
        "[ -~]{0,40}",
        issue_options(),
        0u64..1_000,
        0u32..64,
        collection::vec(wire_tuple(), 0..4),
        wire_tuple(),
    )
        .prop_map(|(tag, text, options, qid, node, facts, tuple)| match tag {
            0 => Request::Connect { client: text },
            1 => Request::IssueQuery { program: text, options },
            2 => Request::TeardownQuery { qid },
            3 => Request::InjectFacts { qid, node, facts },
            4 => Request::Subscribe { qid },
            5 => Request::Stats,
            6 => Request::Advance { millis: qid },
            7 => Request::Shutdown,
            _ => Request::Explain { qid, tuple },
        })
}

fn response() -> impl Strategy<Value = Response> {
    (
        0u32..12,
        0u64..1_000,
        0u32..64,
        collection::vec(wire_tuple(), 0..4),
        collection::vec("[ -~]{0,30}", 0..4),
        "[ -~]{0,40}",
        collection::vec(wire_derivation(), 0..4),
    )
        .prop_map(|(tag, qid, n, tuples, lines, text, nodes)| match tag {
            0 => Response::Connected { session: qid, nodes: n, now_millis: qid * 3 },
            1 => Response::Issued { qid },
            2 => Response::TornDown { qid },
            3 => Response::Injected { qid, count: n },
            4 => Response::Subscribed { qid },
            5 => {
                Response::Delta { qid, now_millis: qid * 7, added: tuples.clone(), removed: tuples }
            }
            6 => Response::Lagged { qid, missed: qid + 1 },
            7 => Response::Stats { lines },
            8 => Response::Advanced { now_millis: qid },
            9 => Response::Error {
                code: match n % 6 {
                    0 => ErrorCode::Parse,
                    1 => ErrorCode::QuotaExceeded,
                    2 => ErrorCode::UnknownQuery,
                    3 => ErrorCode::NotOwner,
                    4 => ErrorCode::BadRequest,
                    _ => ErrorCode::NotConnected,
                },
                message: text,
            },
            10 => Response::ShuttingDown,
            _ => Response::Explanation { qid, nodes },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_encode_decode_round_trips(req in request()) {
        let mut payload = Vec::new();
        req.encode(&mut payload);
        prop_assert_eq!(Request::decode(&payload), Ok(req));
    }

    #[test]
    fn response_encode_decode_round_trips(resp in response()) {
        let mut payload = Vec::new();
        resp.encode(&mut payload);
        prop_assert_eq!(Response::decode(&payload), Ok(resp));
    }

    #[test]
    fn truncated_request_is_a_typed_error_not_a_panic(req in request(), cut in 0usize..10_000) {
        let mut payload = Vec::new();
        req.encode(&mut payload);
        // Every strict prefix must fail cleanly. (Decoding never panics;
        // running this under the harness proves it.)
        let cut = cut % payload.len().max(1);
        if cut < payload.len() {
            prop_assert!(Request::decode(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(resp in response(), extra in 1usize..9) {
        let mut payload = Vec::new();
        resp.encode(&mut payload);
        payload.extend(std::iter::repeat_n(0xA5u8, extra));
        prop_assert_eq!(Response::decode(&payload), Err(ProtoError::TrailingBytes { extra }));
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in collection::vec(0u32..256, 0..64)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        // Either a valid message or a typed error — the point is that the
        // call always returns instead of panicking or allocating wildly.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn frame_stream_reassembles_under_any_chunking(
        reqs in collection::vec(request(), 1..5),
        chunks in collection::vec(1usize..17, 1..64),
    ) {
        let mut stream = Vec::new();
        for req in &reqs {
            let mut payload = Vec::new();
            req.encode(&mut payload);
            stream.extend(frame(&payload));
        }
        let mut fb = FrameBuf::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut chunk_idx = 0;
        while offset < stream.len() {
            let size = chunks[chunk_idx % chunks.len()].min(stream.len() - offset);
            chunk_idx += 1;
            fb.extend(&stream[offset..offset + size]);
            offset += size;
            while let Some(payload) = fb.next_frame().unwrap() {
                decoded.push(Request::decode(&payload).unwrap());
            }
        }
        prop_assert_eq!(decoded, reqs);
        prop_assert_eq!(fb.buffered(), 0);
    }
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocating() {
    let mut fb = FrameBuf::new();
    fb.extend(&u32::MAX.to_le_bytes());
    match fb.next_frame() {
        Err(ProtoError::FrameTooLarge { declared }) => {
            assert_eq!(declared, u32::MAX as usize);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}
