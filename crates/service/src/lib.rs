//! # dr-service
//!
//! A long-lived routing service over the declarative-routing engine: one
//! resident topology and query deployment ([`RoutingService`] wrapping a
//! `dr_core::RoutingHarness`), multiplexed across client *sessions* that
//! issue queries, tear them down, inject facts, subscribe to result
//! streams, and read a metrics snapshot — the paper's vision of routing
//! *as a service* (§2) made operational.
//!
//! The pieces:
//!
//! * [`protocol`] — the framed wire protocol: length-prefixed frames
//!   carrying tagged [`Request`]/[`Response`] payloads. Decoding is total;
//!   malformed bytes produce typed [`protocol::ProtoError`]s, never panics.
//! * [`service`] — sessions, per-session query quotas, drop-time teardown
//!   (a disconnecting session's queries are really unwound across the
//!   deployment, not leaked), bounded subscriber queues with explicit
//!   [`Response::Lagged`] notices, and the line-oriented JSON stats
//!   endpoint.
//! * [`transport`] — two carriers for the same frames: a deterministic
//!   single-threaded in-process hub for tests and benchmarks, and a
//!   blocking TCP stream for the daemon.
//! * [`server`] — the `std::net` thread-per-connection engine behind
//!   `dr-serviced`.
//! * [`client`] — a typed client that works over either transport.
//! * [`backoff`] — bounded exponential retry for dialing a daemon that is
//!   still coming up (or briefly away): refused connections follow a
//!   deterministic doubling-and-capped schedule instead of failing the
//!   run on the first refusal.
//! * [`load`] — the seeded issue/teardown/inject mix behind `dr-load` and
//!   the `sustained_churn_qps` benchmark.
//!
//! ## Example: an in-process service session
//!
//! ```
//! use dr_service::protocol::IssueOptions;
//! use dr_service::service::{default_topology, ServiceConfig};
//! use dr_service::transport::InProcHub;
//! use dr_service::{Client, BEST_PATH_PROGRAM};
//!
//! // A resident 8-node deployment, exposed in-process.
//! let hub = InProcHub::new(default_topology(8), ServiceConfig::default());
//!
//! // Connect a session, issue the paper's Best-Path query, subscribe.
//! let mut session = Client::connect(hub.connect(), "example").unwrap();
//! let qid = session.issue(BEST_PATH_PROGRAM, IssueOptions::default()).unwrap();
//! session.subscribe(qid).unwrap();
//!
//! // Advance simulated time; routes converge and arrive as deltas.
//! session.advance(10_000).unwrap();
//! let pushed = session.poll_pushed().unwrap();
//! assert!(!pushed.is_empty(), "convergence must produce result deltas");
//!
//! // Tear the query down: the deployment unwinds to its baseline state.
//! session.teardown(qid).unwrap();
//! session.advance(10_000).unwrap();
//! let stats = session.stats().unwrap();
//! assert!(stats.iter().any(|l| l.contains("\"live_queries\":0")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod client;
pub mod load;
pub mod protocol;
pub mod server;
pub mod service;
pub mod transport;

pub use backoff::Backoff;
pub use client::{Client, ClientError};
pub use load::{LoadOptions, LoadReport};
pub use protocol::{ErrorCode, IssueOptions, ProtoError, Request, Response};
pub use server::{serve, ServerConfig, ServerHandle};
pub use service::{default_topology, RoutingService, ServiceConfig};
pub use transport::{InProcHub, TcpTransport, Transport, TransportError};

/// The paper's continuous Best-Path program (§5.1 with the §8 maintenance
/// rule NR3): the canonical query `dr-load`, the benchmarks, and the
/// examples issue.
pub const BEST_PATH_PROGRAM: &str = r#"
    #key(link, 0, 1).
    #key(path, 0, 1, 2).
    #key(bestPathCost, 0, 1).
    #key(bestPath, 0, 1).
    NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
    NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
         C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
    NR3: path(@S,D,P,C) :- link(@S,W,C1), path(@S,D,P,C2),
         f_inPath(P,W) = true, C1 = infinity, C = infinity.
    BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
    BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
    Query: bestPath(@S,D,P,C).
"#;
