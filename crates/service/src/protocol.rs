//! The service's framed wire protocol.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload
//! length followed by that many payload bytes. The payload is a tagged
//! binary encoding of one [`Request`] or [`Response`] — tag byte, then the
//! variant's fields with fixed-width integers (LE), length-prefixed UTF-8
//! strings, and length-prefixed vectors. Relation identity crosses the
//! service boundary as the relation *name*: interned [`dr_types::RelId`]s
//! are process-local (see the `NetMsg::Tuples` wire notes in dr-core), so
//! tuples are (de)interned at the edge.
//!
//! Decoding is total: malformed input — truncated payloads, unknown tags,
//! invalid UTF-8, oversized frames, trailing garbage — yields a typed
//! [`ProtoError`], never a panic, so a confused or hostile peer cannot take
//! the server down. [`FrameBuf`] is the incremental reassembler for stream
//! transports, where one `read` may carry half a frame or three.

use dr_types::{Cost, NodeId, PathVector, Tuple, Value};

/// Hard upper bound on a frame's payload size (16 MiB). A length prefix
/// above this is rejected before any allocation, so a hostile peer cannot
/// make the server reserve arbitrary memory with four bytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the structure it encodes did.
    Truncated,
    /// A frame's length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// The declared payload length.
        declared: usize,
    },
    /// An unknown tag byte for the structure being decoded.
    BadTag {
        /// What was being decoded (e.g. `"Request"`, `"Value"`).
        kind: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The payload decoded fully but bytes were left over — a framing bug
    /// or corruption, rejected rather than silently ignored.
    TrailingBytes {
        /// How many bytes were left.
        extra: usize,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::FrameTooLarge { declared } => {
                write!(f, "frame of {declared} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            ProtoError::BadTag { kind, tag } => write!(f, "unknown {kind} tag {tag:#04x}"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete payload")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Machine-readable reason of a [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The submitted program failed to parse or localize.
    Parse = 0,
    /// The session hit its installed-query quota.
    QuotaExceeded = 1,
    /// The named query does not exist (never issued, or already torn down).
    UnknownQuery = 2,
    /// The query exists but belongs to another session.
    NotOwner = 3,
    /// The request is structurally valid but semantically unusable (e.g. a
    /// node id outside the topology).
    BadRequest = 4,
    /// The request must follow a successful `Connect` on this connection.
    NotConnected = 5,
}

impl ErrorCode {
    fn from_tag(tag: u8) -> Result<ErrorCode, ProtoError> {
        Ok(match tag {
            0 => ErrorCode::Parse,
            1 => ErrorCode::QuotaExceeded,
            2 => ErrorCode::UnknownQuery,
            3 => ErrorCode::NotOwner,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::NotConnected,
            tag => return Err(ProtoError::BadTag { kind: "ErrorCode", tag }),
        })
    }
}

/// Options of an `IssueQuery` request — the wire twin of the harness's
/// `IssueBuilder` knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct IssueOptions {
    /// Human-readable query name.
    pub name: String,
    /// The node that issues (floods) the query.
    pub issuer: u32,
    /// Relations replicated to every node during dissemination.
    pub replicated: Vec<String>,
    /// Aggregate-selections optimization (§7.1).
    pub aggregate_selections: bool,
    /// Multi-query result sharing (§7.3).
    pub share_results: bool,
    /// Cross-query cache relation used when sharing.
    pub cache_relation: String,
    /// Facts installed with the query.
    pub facts: Vec<WireTuple>,
    /// Record derivation provenance, enabling `Explain` requests against
    /// this query (costs memory proportional to the derivation count).
    pub record_provenance: bool,
}

impl Default for IssueOptions {
    fn default() -> IssueOptions {
        IssueOptions {
            name: "query".to_string(),
            issuer: 0,
            replicated: Vec::new(),
            aggregate_selections: true,
            share_results: false,
            cache_relation: "bestPathCache".to_string(),
            facts: Vec::new(),
            record_provenance: false,
        }
    }
}

/// One node of a derivation tree in the flat wire encoding of
/// [`Response::Explanation`].
///
/// Trees cross the wire as a vector of nodes with *child indexes* instead
/// of nesting, so decoding is depth-safe: no recursion, no
/// attacker-controlled stack growth. The root is index 0 and every child
/// index is strictly greater than its parent's, which rules out cycles and
/// lets [`tree_from_flat`] rebuild bottom-up in one reverse pass.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDerivation {
    /// Node kind: 0 = base fact, 1 = derived, 2 = missing (an unresolved
    /// remote pointer).
    pub kind: u8,
    /// The tuple this node proves.
    pub tuple: WireTuple,
    /// Label of the firing rule (derived nodes; empty otherwise).
    pub rule: String,
    /// The deriving node (derived), or the node that held the unresolved
    /// record (missing). Zero for base facts.
    pub node: u32,
    /// The provenance-arena id that failed to resolve (missing nodes only).
    pub prov_id: u32,
    /// Indexes of the children in the flat vector (derived nodes only).
    pub children: Vec<u32>,
}

/// A tuple as it crosses the service boundary: relation *name* plus values
/// (interner ids are meaningless outside the process).
#[derive(Debug, Clone, PartialEq)]
pub struct WireTuple {
    /// Relation name.
    pub relation: String,
    /// Field values.
    pub values: Vec<WireValue>,
}

impl WireTuple {
    /// Intern into an engine tuple.
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(&self.relation, self.values.iter().map(WireValue::to_value).collect())
    }

    /// Encode an engine tuple for the wire.
    pub fn from_tuple(t: &Tuple) -> WireTuple {
        WireTuple {
            relation: t.rel().name().to_string(),
            values: t.fields().iter().map(WireValue::from_value).collect(),
        }
    }
}

/// A value as it crosses the service boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// A node id.
    Node(u32),
    /// A link/path cost (∞ encodes as `f64::INFINITY`).
    Cost(f64),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A path vector.
    Path(Vec<u32>),
}

impl WireValue {
    /// Convert into an engine value.
    pub fn to_value(&self) -> Value {
        match self {
            WireValue::Node(n) => Value::Node(NodeId(*n)),
            WireValue::Cost(c) => Value::Cost(Cost::new(*c)),
            WireValue::Int(i) => Value::Int(*i),
            WireValue::Bool(b) => Value::Bool(*b),
            WireValue::Str(s) => Value::str(s),
            WireValue::Path(nodes) => {
                Value::Path(PathVector::from_nodes(nodes.iter().map(|&n| NodeId(n)).collect()))
            }
        }
    }

    /// Convert from an engine value.
    pub fn from_value(v: &Value) -> WireValue {
        match v {
            Value::Node(n) => WireValue::Node(n.0),
            Value::Cost(c) => WireValue::Cost(c.value()),
            Value::Int(i) => WireValue::Int(*i),
            Value::Bool(b) => WireValue::Bool(*b),
            Value::Str(s) => WireValue::Str(s.to_string()),
            Value::Path(p) => WireValue::Path(p.nodes().iter().map(|n| n.0).collect()),
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session. Must be the first request on a connection.
    Connect {
        /// Client name for logs and stats.
        client: String,
    },
    /// Parse, localize, and disseminate a query; the session owns it.
    IssueQuery {
        /// The query program (same dialect the harness accepts).
        program: String,
        /// Issue options.
        options: IssueOptions,
    },
    /// Tear the query down across the deployment (must be session-owned).
    TeardownQuery {
        /// The query to tear down.
        qid: u64,
    },
    /// Inject base-table facts at a node (e.g. link-metric updates).
    InjectFacts {
        /// Query whose dataflow receives the facts.
        qid: u64,
        /// Node the facts are delivered to.
        node: u32,
        /// The facts.
        facts: Vec<WireTuple>,
    },
    /// Stream result-set deltas of a query to this session.
    Subscribe {
        /// The query to observe.
        qid: u64,
    },
    /// Fetch the line-oriented JSON stats snapshot.
    Stats,
    /// Advance simulated time by `millis` (the in-process transport's
    /// deterministic clock; the TCP server also ticks on its own).
    Advance {
        /// Simulated milliseconds to advance.
        millis: u64,
    },
    /// Ask the server to shut down cleanly.
    Shutdown,
    /// Explain how a derived tuple came to be: materialize the distributed
    /// proof tree of `tuple` under the (provenance-recording) query `qid`.
    Explain {
        /// The query whose derivation is asked about.
        qid: u64,
        /// The derived tuple to explain.
        tuple: WireTuple,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session opened.
    Connected {
        /// The session id.
        session: u64,
        /// Number of nodes in the resident topology.
        nodes: u32,
        /// Current simulated time in ms.
        now_millis: u64,
    },
    /// Query issued and disseminating.
    Issued {
        /// The new query's id.
        qid: u64,
    },
    /// Teardown flood injected.
    TornDown {
        /// The torn-down query.
        qid: u64,
    },
    /// Facts injected.
    Injected {
        /// The receiving query.
        qid: u64,
        /// How many facts were delivered.
        count: u32,
    },
    /// Subscription registered; deltas follow as the clock advances.
    Subscribed {
        /// The observed query.
        qid: u64,
    },
    /// A batch of result-set changes for a subscribed query.
    Delta {
        /// The observed query.
        qid: u64,
        /// Simulated time of the snapshot.
        now_millis: u64,
        /// Result rows that appeared.
        added: Vec<WireTuple>,
        /// Result rows that disappeared.
        removed: Vec<WireTuple>,
    },
    /// The subscriber fell behind: `missed` delta rounds were coalesced
    /// into the next `Delta` instead of being queued unboundedly.
    Lagged {
        /// The observed query.
        qid: u64,
        /// Coalesced delta rounds.
        missed: u64,
    },
    /// Stats snapshot: one JSON object per line.
    Stats {
        /// The lines.
        lines: Vec<String>,
    },
    /// Simulated time advanced.
    Advanced {
        /// New simulated time in ms.
        now_millis: u64,
    },
    /// The request failed.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server acknowledges a `Shutdown` and is about to exit.
    ShuttingDown,
    /// The proof tree answering an `Explain` request, flat-encoded (root is
    /// index 0; see [`WireDerivation`]).
    Explanation {
        /// The explained query.
        qid: u64,
        /// The tree nodes; rebuild with [`tree_from_flat`].
        nodes: Vec<WireDerivation>,
    },
}

/// Flatten a derivation tree into the wire encoding: breadth-first, so the
/// root is index 0 and every child index is strictly greater than its
/// parent's.
pub fn flatten_tree(tree: &dr_core::DerivationTree) -> Vec<WireDerivation> {
    use dr_core::DerivationTree as T;
    let mut out: Vec<WireDerivation> = Vec::new();
    let mut queue: std::collections::VecDeque<&T> = std::collections::VecDeque::new();
    queue.push_back(tree);
    // First pass: assign indexes in BFS order.
    let mut order: Vec<&T> = Vec::new();
    while let Some(t) = queue.pop_front() {
        order.push(t);
        if let T::Derived { children, .. } = t {
            for c in children {
                queue.push_back(c);
            }
        }
    }
    // Second pass: emit nodes; children of the i-th BFS node occupy the
    // next free indexes after everything queued before them.
    let mut next_child = 1u32;
    for t in &order {
        match t {
            T::Base { tuple } => out.push(WireDerivation {
                kind: 0,
                tuple: WireTuple::from_tuple(tuple),
                rule: String::new(),
                node: 0,
                prov_id: 0,
                children: Vec::new(),
            }),
            T::Derived { tuple, rule, node, children } => {
                let ids: Vec<u32> = (next_child..next_child + children.len() as u32).collect();
                next_child += children.len() as u32;
                out.push(WireDerivation {
                    kind: 1,
                    tuple: WireTuple::from_tuple(tuple),
                    rule: rule.clone(),
                    node: node.0,
                    prov_id: 0,
                    children: ids,
                });
            }
            T::Missing { tuple, node, id } => out.push(WireDerivation {
                kind: 2,
                tuple: WireTuple::from_tuple(tuple),
                rule: String::new(),
                node: node.0,
                prov_id: id.0,
                children: Vec::new(),
            }),
        }
    }
    out
}

/// Rebuild a [`dr_core::DerivationTree`] from its flat wire encoding.
///
/// Returns `None` for structurally invalid encodings: an empty vector, a
/// child index out of bounds or not strictly greater than its parent's
/// (which would permit cycles), an unknown kind byte, or a child claimed
/// by two parents. Runs without recursion, so a hostile peer cannot
/// overflow the stack with a deep tree.
pub fn tree_from_flat(nodes: &[WireDerivation]) -> Option<dr_core::DerivationTree> {
    use dr_core::DerivationTree as T;
    if nodes.is_empty() {
        return None;
    }
    let mut claimed = vec![false; nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        for &c in &n.children {
            let c = c as usize;
            if c <= i || c >= nodes.len() || claimed[c] {
                return None;
            }
            claimed[c] = true;
        }
    }
    // Build bottom-up: children always live at higher indexes, so a single
    // reverse pass has every subtree ready when its parent needs it.
    let mut built: Vec<Option<T>> = (0..nodes.len()).map(|_| None).collect();
    for (i, n) in nodes.iter().enumerate().rev() {
        let tuple = n.tuple.to_tuple();
        let tree = match n.kind {
            0 => T::Base { tuple },
            1 => {
                let mut children = Vec::with_capacity(n.children.len());
                for &c in &n.children {
                    children.push(built[c as usize].take()?);
                }
                T::Derived { tuple, rule: n.rule.clone(), node: NodeId(n.node), children }
            }
            2 => T::Missing { tuple, node: NodeId(n.node), id: dr_core::ProvId(n.prov_id) },
            _ => return None,
        };
        built[i] = Some(tree);
    }
    built[0].take()
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, v as u8);
}

/// Borrowing reader over a payload. Every `take_*` checks remaining length;
/// running out is [`ProtoError::Truncated`].
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.bytes.len() < n {
            return Err(ProtoError::Truncated);
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        Ok(self.u8()? != 0)
    }

    /// A declared element count, sanity-bounded by the bytes actually
    /// remaining so a corrupt count cannot drive a huge pre-allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.bytes.len() {
            return Err(ProtoError::Truncated);
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes { extra: self.bytes.len() })
        }
    }
}

fn put_value(buf: &mut Vec<u8>, v: &WireValue) {
    match v {
        WireValue::Node(n) => {
            put_u8(buf, 0);
            put_u32(buf, *n);
        }
        WireValue::Cost(c) => {
            put_u8(buf, 1);
            put_f64(buf, *c);
        }
        WireValue::Int(i) => {
            put_u8(buf, 2);
            put_i64(buf, *i);
        }
        WireValue::Bool(b) => {
            put_u8(buf, 3);
            put_bool(buf, *b);
        }
        WireValue::Str(s) => {
            put_u8(buf, 4);
            put_str(buf, s);
        }
        WireValue::Path(nodes) => {
            put_u8(buf, 5);
            put_u32(buf, nodes.len() as u32);
            for n in nodes {
                put_u32(buf, *n);
            }
        }
    }
}

fn take_value(r: &mut Reader<'_>) -> Result<WireValue, ProtoError> {
    Ok(match r.u8()? {
        0 => WireValue::Node(r.u32()?),
        1 => WireValue::Cost(r.f64()?),
        2 => WireValue::Int(r.i64()?),
        3 => WireValue::Bool(r.bool()?),
        4 => WireValue::Str(r.string()?),
        5 => {
            let n = r.count(4)?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(r.u32()?);
            }
            WireValue::Path(nodes)
        }
        tag => return Err(ProtoError::BadTag { kind: "Value", tag }),
    })
}

fn put_wire_tuple(buf: &mut Vec<u8>, t: &WireTuple) {
    put_str(buf, &t.relation);
    put_u32(buf, t.values.len() as u32);
    for v in &t.values {
        put_value(buf, v);
    }
}

fn take_wire_tuple(r: &mut Reader<'_>) -> Result<WireTuple, ProtoError> {
    let relation = r.string()?;
    let n = r.count(1)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(take_value(r)?);
    }
    Ok(WireTuple { relation, values })
}

fn put_tuples(buf: &mut Vec<u8>, tuples: &[WireTuple]) {
    put_u32(buf, tuples.len() as u32);
    for t in tuples {
        put_wire_tuple(buf, t);
    }
}

fn take_tuples(r: &mut Reader<'_>) -> Result<Vec<WireTuple>, ProtoError> {
    let n = r.count(5)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(take_wire_tuple(r)?);
    }
    Ok(out)
}

fn put_derivation(buf: &mut Vec<u8>, d: &WireDerivation) {
    put_u8(buf, d.kind);
    put_wire_tuple(buf, &d.tuple);
    put_str(buf, &d.rule);
    put_u32(buf, d.node);
    put_u32(buf, d.prov_id);
    put_u32(buf, d.children.len() as u32);
    for c in &d.children {
        put_u32(buf, *c);
    }
}

fn take_derivation(r: &mut Reader<'_>) -> Result<WireDerivation, ProtoError> {
    let kind = r.u8()?;
    let tuple = take_wire_tuple(r)?;
    let rule = r.string()?;
    let node = r.u32()?;
    let prov_id = r.u32()?;
    let n = r.count(4)?;
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        children.push(r.u32()?);
    }
    Ok(WireDerivation { kind, tuple, rule, node, prov_id, children })
}

fn put_derivations(buf: &mut Vec<u8>, nodes: &[WireDerivation]) {
    put_u32(buf, nodes.len() as u32);
    for d in nodes {
        put_derivation(buf, d);
    }
}

fn take_derivations(r: &mut Reader<'_>) -> Result<Vec<WireDerivation>, ProtoError> {
    let n = r.count(21)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(take_derivation(r)?);
    }
    Ok(out)
}

fn put_strings(buf: &mut Vec<u8>, items: &[String]) {
    put_u32(buf, items.len() as u32);
    for s in items {
        put_str(buf, s);
    }
}

fn take_strings(r: &mut Reader<'_>) -> Result<Vec<String>, ProtoError> {
    let n = r.count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.string()?);
    }
    Ok(out)
}

impl Request {
    /// Append this request's tagged payload to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Connect { client } => {
                put_u8(buf, 1);
                put_str(buf, client);
            }
            Request::IssueQuery { program, options } => {
                put_u8(buf, 2);
                put_str(buf, program);
                put_str(buf, &options.name);
                put_u32(buf, options.issuer);
                put_strings(buf, &options.replicated);
                put_bool(buf, options.aggregate_selections);
                put_bool(buf, options.share_results);
                put_str(buf, &options.cache_relation);
                put_tuples(buf, &options.facts);
                put_bool(buf, options.record_provenance);
            }
            Request::TeardownQuery { qid } => {
                put_u8(buf, 3);
                put_u64(buf, *qid);
            }
            Request::InjectFacts { qid, node, facts } => {
                put_u8(buf, 4);
                put_u64(buf, *qid);
                put_u32(buf, *node);
                put_tuples(buf, facts);
            }
            Request::Subscribe { qid } => {
                put_u8(buf, 5);
                put_u64(buf, *qid);
            }
            Request::Stats => put_u8(buf, 6),
            Request::Advance { millis } => {
                put_u8(buf, 7);
                put_u64(buf, *millis);
            }
            Request::Shutdown => put_u8(buf, 8),
            Request::Explain { qid, tuple } => {
                put_u8(buf, 9);
                put_u64(buf, *qid);
                put_wire_tuple(buf, tuple);
            }
        }
    }

    /// Decode one request from a complete payload.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtoError> {
        let mut r = Reader::new(bytes);
        let req = match r.u8()? {
            1 => Request::Connect { client: r.string()? },
            2 => {
                let program = r.string()?;
                let name = r.string()?;
                let issuer = r.u32()?;
                let replicated = take_strings(&mut r)?;
                let aggregate_selections = r.bool()?;
                let share_results = r.bool()?;
                let cache_relation = r.string()?;
                let facts = take_tuples(&mut r)?;
                let record_provenance = r.bool()?;
                Request::IssueQuery {
                    program,
                    options: IssueOptions {
                        name,
                        issuer,
                        replicated,
                        aggregate_selections,
                        share_results,
                        cache_relation,
                        facts,
                        record_provenance,
                    },
                }
            }
            3 => Request::TeardownQuery { qid: r.u64()? },
            4 => {
                Request::InjectFacts { qid: r.u64()?, node: r.u32()?, facts: take_tuples(&mut r)? }
            }
            5 => Request::Subscribe { qid: r.u64()? },
            6 => Request::Stats,
            7 => Request::Advance { millis: r.u64()? },
            8 => Request::Shutdown,
            9 => Request::Explain { qid: r.u64()?, tuple: take_wire_tuple(&mut r)? },
            tag => return Err(ProtoError::BadTag { kind: "Request", tag }),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Append this response's tagged payload to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Connected { session, nodes, now_millis } => {
                put_u8(buf, 1);
                put_u64(buf, *session);
                put_u32(buf, *nodes);
                put_u64(buf, *now_millis);
            }
            Response::Issued { qid } => {
                put_u8(buf, 2);
                put_u64(buf, *qid);
            }
            Response::TornDown { qid } => {
                put_u8(buf, 3);
                put_u64(buf, *qid);
            }
            Response::Injected { qid, count } => {
                put_u8(buf, 4);
                put_u64(buf, *qid);
                put_u32(buf, *count);
            }
            Response::Subscribed { qid } => {
                put_u8(buf, 5);
                put_u64(buf, *qid);
            }
            Response::Delta { qid, now_millis, added, removed } => {
                put_u8(buf, 6);
                put_u64(buf, *qid);
                put_u64(buf, *now_millis);
                put_tuples(buf, added);
                put_tuples(buf, removed);
            }
            Response::Lagged { qid, missed } => {
                put_u8(buf, 7);
                put_u64(buf, *qid);
                put_u64(buf, *missed);
            }
            Response::Stats { lines } => {
                put_u8(buf, 8);
                put_strings(buf, lines);
            }
            Response::Advanced { now_millis } => {
                put_u8(buf, 9);
                put_u64(buf, *now_millis);
            }
            Response::Error { code, message } => {
                put_u8(buf, 10);
                put_u8(buf, *code as u8);
                put_str(buf, message);
            }
            Response::ShuttingDown => put_u8(buf, 11),
            Response::Explanation { qid, nodes } => {
                put_u8(buf, 12);
                put_u64(buf, *qid);
                put_derivations(buf, nodes);
            }
        }
    }

    /// Decode one response from a complete payload.
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtoError> {
        let mut r = Reader::new(bytes);
        let resp = match r.u8()? {
            1 => Response::Connected { session: r.u64()?, nodes: r.u32()?, now_millis: r.u64()? },
            2 => Response::Issued { qid: r.u64()? },
            3 => Response::TornDown { qid: r.u64()? },
            4 => Response::Injected { qid: r.u64()?, count: r.u32()? },
            5 => Response::Subscribed { qid: r.u64()? },
            6 => Response::Delta {
                qid: r.u64()?,
                now_millis: r.u64()?,
                added: take_tuples(&mut r)?,
                removed: take_tuples(&mut r)?,
            },
            7 => Response::Lagged { qid: r.u64()?, missed: r.u64()? },
            8 => Response::Stats { lines: take_strings(&mut r)? },
            9 => Response::Advanced { now_millis: r.u64()? },
            10 => Response::Error { code: ErrorCode::from_tag(r.u8()?)?, message: r.string()? },
            11 => Response::ShuttingDown,
            12 => Response::Explanation { qid: r.u64()?, nodes: take_derivations(&mut r)? },
            tag => return Err(ProtoError::BadTag { kind: "Response", tag }),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Wrap a payload in a length-prefixed frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encode a request as a ready-to-send frame.
pub fn frame_request(req: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    req.encode(&mut payload);
    frame(&payload)
}

/// Encode a response as a ready-to-send frame.
pub fn frame_response(resp: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    resp.encode(&mut payload);
    frame(&payload)
}

/// Incremental frame reassembler for stream transports.
///
/// Feed it whatever byte chunks the socket yields; [`FrameBuf::next_frame`]
/// returns complete payloads as they become available. A declared length
/// beyond [`MAX_FRAME`] is rejected *before* buffering the body.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty reassembler.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Append raw bytes read from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame payload, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if declared > MAX_FRAME {
            return Err(ProtoError::FrameTooLarge { declared });
        }
        if self.buf.len() < 4 + declared {
            return Ok(None);
        }
        let payload = self.buf[4..4 + declared].to_vec();
        self.buf.drain(..4 + declared);
        Ok(Some(payload))
    }

    /// Bytes currently buffered (tests and diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Connect { client: "load-0".into() },
            Request::IssueQuery {
                program: "Query: path(@S,D,P,C).".into(),
                options: IssueOptions {
                    name: "bp".into(),
                    issuer: 3,
                    replicated: vec!["magicDsts".into()],
                    aggregate_selections: false,
                    share_results: true,
                    cache_relation: "latCache".into(),
                    facts: vec![WireTuple {
                        relation: "magicDsts".into(),
                        values: vec![WireValue::Node(7)],
                    }],
                    record_provenance: true,
                },
            },
            Request::TeardownQuery { qid: 42 },
            Request::InjectFacts {
                qid: 42,
                node: 5,
                facts: vec![WireTuple {
                    relation: "link".into(),
                    values: vec![
                        WireValue::Node(5),
                        WireValue::Node(6),
                        WireValue::Cost(f64::INFINITY),
                    ],
                }],
            },
            Request::Subscribe { qid: 42 },
            Request::Stats,
            Request::Advance { millis: 200 },
            Request::Shutdown,
            Request::Explain {
                qid: 42,
                tuple: WireTuple {
                    relation: "bestPath".into(),
                    values: vec![
                        WireValue::Node(0),
                        WireValue::Node(3),
                        WireValue::Path(vec![0, 1, 3]),
                        WireValue::Cost(2.0),
                    ],
                },
            },
        ];
        for req in reqs {
            let mut payload = Vec::new();
            req.encode(&mut payload);
            assert_eq!(Request::decode(&payload), Ok(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Connected { session: 1, nodes: 16, now_millis: 0 },
            Response::Issued { qid: 9 },
            Response::Delta {
                qid: 9,
                now_millis: 400,
                added: vec![WireTuple {
                    relation: "bestPath".into(),
                    values: vec![
                        WireValue::Node(0),
                        WireValue::Node(3),
                        WireValue::Path(vec![0, 1, 3]),
                        WireValue::Cost(2.0),
                    ],
                }],
                removed: vec![],
            },
            Response::Lagged { qid: 9, missed: 17 },
            Response::Stats { lines: vec!["{\"type\":\"service\"}".into()] },
            Response::Error { code: ErrorCode::QuotaExceeded, message: "quota".into() },
            Response::ShuttingDown,
            Response::Explanation {
                qid: 9,
                nodes: vec![
                    WireDerivation {
                        kind: 1,
                        tuple: WireTuple { relation: "bestPath".into(), values: vec![] },
                        rule: "BPR2".into(),
                        node: 0,
                        prov_id: 0,
                        children: vec![1, 2],
                    },
                    WireDerivation {
                        kind: 0,
                        tuple: WireTuple { relation: "link".into(), values: vec![] },
                        rule: String::new(),
                        node: 0,
                        prov_id: 0,
                        children: vec![],
                    },
                    WireDerivation {
                        kind: 2,
                        tuple: WireTuple { relation: "path".into(), values: vec![] },
                        rule: String::new(),
                        node: 3,
                        prov_id: 17,
                        children: vec![],
                    },
                ],
            },
        ];
        for resp in resps {
            let mut payload = Vec::new();
            resp.encode(&mut payload);
            assert_eq!(Response::decode(&payload), Ok(resp.clone()), "{resp:?}");
        }
    }

    #[test]
    fn derivation_tree_flattens_and_rebuilds() {
        use dr_core::DerivationTree as T;
        use dr_types::NodeId;
        let leaf = |rel: &str| T::Base { tuple: Tuple::new(rel, vec![Value::Int(1)]) };
        let tree = T::Derived {
            tuple: Tuple::new("bestPath", vec![Value::Int(0)]),
            rule: "BPR2".into(),
            node: NodeId(0),
            children: vec![
                T::Derived {
                    tuple: Tuple::new("path", vec![Value::Int(0)]),
                    rule: "NR2".into(),
                    node: NodeId(1),
                    children: vec![leaf("link"), leaf("link")],
                },
                T::Missing {
                    tuple: Tuple::new("path", vec![Value::Int(2)]),
                    node: NodeId(2),
                    id: dr_core::ProvId(9),
                },
            ],
        };
        let flat = flatten_tree(&tree);
        assert_eq!(flat.len(), 5);
        assert_eq!(tree_from_flat(&flat), Some(tree));

        // Structural garbage is rejected, not panicked on.
        assert_eq!(tree_from_flat(&[]), None);
        let mut cyclic = flat.clone();
        cyclic[0].children = vec![0]; // self-loop
        assert_eq!(tree_from_flat(&cyclic), None);
        let mut oob = flat.clone();
        oob[0].children = vec![99];
        assert_eq!(tree_from_flat(&oob), None);
        let mut shared = flat.clone();
        shared[0].children = vec![1, 1]; // one child, two parents
        assert_eq!(tree_from_flat(&shared), None);
        let mut badkind = flat;
        badkind[1].kind = 7;
        assert_eq!(tree_from_flat(&badkind), None);
    }

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let f1 = frame_request(&Request::Stats);
        let f2 = frame_request(&Request::Advance { millis: 7 });
        let stream: Vec<u8> = f1.iter().chain(&f2).copied().collect();
        let mut fb = FrameBuf::new();
        // Feed one byte at a time: frames must come out whole, in order.
        let mut frames = Vec::new();
        for b in stream {
            fb.extend(&[b]);
            while let Some(p) = fb.next_frame().unwrap() {
                frames.push(p);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(Request::decode(&frames[0]), Ok(Request::Stats));
        assert_eq!(Request::decode(&frames[1]), Ok(Request::Advance { millis: 7 }));
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn oversized_frame_is_rejected_before_buffering() {
        let mut fb = FrameBuf::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(ProtoError::FrameTooLarge { .. })));
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let mut payload = Vec::new();
        Request::Connect { client: "x".into() }.encode(&mut payload);
        for cut in 0..payload.len() {
            let err = Request::decode(&payload[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
        let mut trailing = payload.clone();
        trailing.push(0xFF);
        assert_eq!(Request::decode(&trailing), Err(ProtoError::TrailingBytes { extra: 1 }));
        assert!(matches!(
            Request::decode(&[0xEE]),
            Err(ProtoError::BadTag { kind: "Request", tag: 0xEE })
        ));
        // A corrupt element count larger than the remaining bytes must not
        // allocate or loop — it is Truncated.
        let mut bad = Vec::new();
        Request::InjectFacts { qid: 1, node: 0, facts: vec![] }.encode(&mut bad);
        let len = bad.len();
        bad[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&bad), Err(ProtoError::Truncated));
        // Invalid UTF-8 in a string field.
        let mut utf = vec![1u8]; // Connect tag
        utf.extend_from_slice(&2u32.to_le_bytes());
        utf.extend_from_slice(&[0xC0, 0x80]);
        assert_eq!(Request::decode(&utf), Err(ProtoError::BadUtf8));
    }
}
