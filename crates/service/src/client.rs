//! A typed client over any [`Transport`].
//!
//! [`Client`] speaks the request/response protocol and sorts incoming
//! frames into two streams: the *direct* response to the request in
//! flight, and *push* responses ([`Response::Delta`] / [`Response::Lagged`])
//! that subscriptions generate asynchronously. Pushes arriving while a
//! request waits for its response are stashed and surfaced later by
//! [`Client::poll_pushed`], so a subscriber never loses a delta to an
//! interleaved RPC.

use std::collections::VecDeque;

use crate::protocol::{ErrorCode, IssueOptions, Request, Response, WireDerivation, WireTuple};
use crate::transport::{Transport, TransportError};

/// A failed client call.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (closed, framing, i/o).
    Transport(TransportError),
    /// The server answered with [`Response::Error`].
    Server {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response of the wrong shape.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Server { code, message } => write!(f, "server: {code:?}: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> ClientError {
        ClientError::Transport(e)
    }
}

/// A connected session over transport `T`.
pub struct Client<T: Transport> {
    transport: T,
    session: u64,
    nodes: u32,
    pushed: VecDeque<Response>,
}

impl<T: Transport> Client<T> {
    /// Open a session named `client` over `transport`.
    pub fn connect(mut transport: T, client: &str) -> Result<Client<T>, ClientError> {
        let mut payload = Vec::new();
        Request::Connect { client: client.to_string() }.encode(&mut payload);
        transport.send_frame(&payload)?;
        let resp = Response::decode(&transport.recv_frame()?)
            .map_err(|e| ClientError::Transport(TransportError::Proto(e)))?;
        match resp {
            Response::Connected { session, nodes, .. } => {
                Ok(Client { transport, session, nodes, pushed: VecDeque::new() })
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Open a session over a freshly dialed transport, retrying refused or
    /// failed dials (and dropped handshakes) on the given
    /// [`Backoff`](crate::backoff::Backoff) schedule. A handshake the server itself *rejects* — an error or
    /// malformed `Connected` response — is authoritative and fails
    /// immediately: the server is up, it just said no.
    pub fn connect_with_backoff<D>(
        mut dial: D,
        client: &str,
        backoff: crate::backoff::Backoff,
    ) -> Result<Client<T>, ClientError>
    where
        D: FnMut() -> Result<T, TransportError>,
    {
        let mut attempt = 0;
        loop {
            let err =
                match dial().map_err(ClientError::from).and_then(|t| Client::connect(t, client)) {
                    Ok(session) => return Ok(session),
                    Err(e @ (ClientError::Server { .. } | ClientError::Unexpected(_))) => {
                        return Err(e)
                    }
                    Err(e) => e,
                };
            match backoff.delay_after(attempt) {
                Some(delay) => std::thread::sleep(delay),
                None => return Err(err),
            }
            attempt += 1;
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Nodes in the service's resident topology.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Send `req` and wait for its direct response, stashing any pushes
    /// that arrive in between.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut payload = Vec::new();
        req.encode(&mut payload);
        self.transport.send_frame(&payload)?;
        loop {
            let resp = Response::decode(&self.transport.recv_frame()?)
                .map_err(|e| ClientError::Transport(TransportError::Proto(e)))?;
            match resp {
                Response::Delta { .. } | Response::Lagged { .. } => self.pushed.push_back(resp),
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                direct => return Ok(direct),
            }
        }
    }

    /// Issue a query; returns its id.
    pub fn issue(&mut self, program: &str, options: IssueOptions) -> Result<u64, ClientError> {
        match self.request(&Request::IssueQuery { program: program.to_string(), options })? {
            Response::Issued { qid } => Ok(qid),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Tear down a query this session owns.
    pub fn teardown(&mut self, qid: u64) -> Result<(), ClientError> {
        match self.request(&Request::TeardownQuery { qid })? {
            Response::TornDown { .. } => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Inject facts into a query's dataflow at `node`.
    pub fn inject_facts(
        &mut self,
        qid: u64,
        node: u32,
        facts: Vec<WireTuple>,
    ) -> Result<u32, ClientError> {
        match self.request(&Request::InjectFacts { qid, node, facts })? {
            Response::Injected { count, .. } => Ok(count),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Subscribe to a query's result stream.
    pub fn subscribe(&mut self, qid: u64) -> Result<(), ClientError> {
        match self.request(&Request::Subscribe { qid })? {
            Response::Subscribed { .. } => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Explain how `tuple` was derived under query `qid`: returns the flat
    /// proof-tree nodes (root at index 0), ready for
    /// [`crate::protocol::tree_from_flat`].
    pub fn explain(
        &mut self,
        qid: u64,
        tuple: WireTuple,
    ) -> Result<Vec<WireDerivation>, ClientError> {
        match self.request(&Request::Explain { qid, tuple })? {
            Response::Explanation { nodes, .. } => Ok(nodes),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Advance simulated time by `millis`; returns the new time.
    pub fn advance(&mut self, millis: u64) -> Result<u64, ClientError> {
        match self.request(&Request::Advance { millis })? {
            Response::Advanced { now_millis } => Ok(now_millis),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the stats snapshot (line-oriented JSON).
    pub fn stats(&mut self) -> Result<Vec<String>, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats { lines } => Ok(lines),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to shut down cleanly.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Drain every push response currently available: previously stashed
    /// ones plus whatever the transport has queued.
    pub fn poll_pushed(&mut self) -> Result<Vec<Response>, ClientError> {
        while let Some(payload) = self.transport.try_recv_frame()? {
            let resp = Response::decode(&payload)
                .map_err(|e| ClientError::Transport(TransportError::Proto(e)))?;
            self.pushed.push_back(resp);
        }
        Ok(self.pushed.drain(..).collect())
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::backoff::Backoff;
    use crate::service::{default_topology, ServiceConfig};
    use crate::transport::InProcHub;

    fn quick_backoff() -> Backoff {
        Backoff { base: Duration::from_micros(10), cap: Duration::from_micros(40), max_attempts: 5 }
    }

    #[test]
    fn connect_with_backoff_rides_out_refused_dials() {
        let hub = InProcHub::new(default_topology(4), ServiceConfig::default());
        let mut refusals_left = 3;
        let mut dials = 0;
        let client = Client::connect_with_backoff(
            || {
                dials += 1;
                if refusals_left > 0 {
                    refusals_left -= 1;
                    Err(TransportError::Closed)
                } else {
                    Ok(hub.connect())
                }
            },
            "backoff-test",
            quick_backoff(),
        )
        .expect("connects once the server accepts");
        assert_eq!(dials, 4);
        assert_eq!(client.nodes(), 4);
    }

    #[test]
    fn connect_with_backoff_gives_up_after_budget() {
        let mut dials = 0u32;
        let result: Result<Client<crate::transport::InProcConn>, _> = Client::connect_with_backoff(
            || {
                dials += 1;
                Err(TransportError::Closed)
            },
            "backoff-test",
            quick_backoff(),
        );
        assert!(matches!(result, Err(ClientError::Transport(TransportError::Closed))));
        assert_eq!(dials, quick_backoff().max_attempts);
    }
}
