//! The TCP daemon: `dr-serviced`'s engine.
//!
//! Plain `std::net` with one reader and one writer thread per connection
//! and a single *engine* thread that owns the [`RoutingService`] — the
//! engine is the only thread that touches routing state, so the service
//! itself stays single-threaded and deterministic; concurrency lives
//! entirely at the byte boundary.
//!
//! The engine loop alternates between three duties: accepting connections
//! (non-blocking), applying decoded requests from the shared event queue,
//! and ticking — every `tick` of real time it advances simulated time by
//! `step` and drains session outboxes toward the writer threads. Writer
//! queues are bounded; when one is full the undelivered push is parked
//! (one frame per connection) and the session outbox backs up, which is
//! exactly the condition under which the service stops advancing that
//! subscriber's cursors and later emits `Lagged`.

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dr_netsim::{SimDuration, Topology};

use crate::protocol::{frame, ErrorCode, FrameBuf, Request, Response};
use crate::service::{RoutingService, ServiceConfig};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Service-level policy (quotas, queue caps).
    pub service: ServiceConfig,
    /// Real-time interval between engine ticks.
    pub tick: Duration,
    /// Simulated time advanced per tick.
    pub step: SimDuration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            service: ServiceConfig::default(),
            tick: Duration::from_millis(10),
            step: SimDuration::from_millis(200),
        }
    }
}

/// What a reader thread tells the engine.
enum ConnEvent {
    Request(u64, Request),
    Malformed(u64, String),
    Closed(u64),
}

struct ConnState {
    session: Option<u64>,
    writer: SyncSender<Vec<u8>>,
    /// A push frame the writer queue had no room for; retried before the
    /// outbox drains further so delta order is preserved.
    parked: Option<Vec<u8>>,
    stream: TcpStream,
}

/// A running server; dropping the handle does not stop it — use
/// [`ServerHandle::shutdown`] or send [`Request::Shutdown`] from a client.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    engine: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the engine to stop after its current tick.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the engine to exit (after [`ServerHandle::shutdown`] or a
    /// client-sent `Shutdown` request).
    pub fn join(mut self) {
        if let Some(engine) = self.engine.take() {
            engine.join().ok();
        }
    }
}

/// Bind `addr` and serve a routing deployment over `topology`.
pub fn serve(
    addr: &str,
    topology: Topology,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let engine = std::thread::Builder::new()
        .name("dr-service-engine".to_string())
        .spawn(move || engine_loop(listener, topology, config, stop2))
        .expect("spawn engine thread");
    Ok(ServerHandle { addr: local, stop, engine: Some(engine) })
}

fn engine_loop(
    listener: TcpListener,
    topology: Topology,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
) {
    let mut service = RoutingService::new(topology, config.service.clone());
    let queue_cap = config.service.subscriber_queue_cap.max(1);
    let (event_tx, event_rx): (mpsc::Sender<ConnEvent>, Receiver<ConnEvent>) = mpsc::channel();
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_conn: u64 = 1;
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    let mut writers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_tick = Instant::now() + config.tick;

    loop {
        // 1. Accept new connections.
        while let Ok((stream, _)) = listener.accept() {
            let id = next_conn;
            next_conn += 1;
            let (writer_tx, writer_rx) = mpsc::sync_channel::<Vec<u8>>(queue_cap);
            let write_stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            };
            writers.push(spawn_writer(id, write_stream, writer_rx));
            let read_stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            };
            readers.push(spawn_reader(id, read_stream, event_tx.clone()));
            conns.insert(id, ConnState { session: None, writer: writer_tx, parked: None, stream });
        }

        // 2. Apply decoded requests.
        while let Ok(event) = event_rx.try_recv() {
            match event {
                ConnEvent::Request(id, req) => {
                    let Some(conn) = conns.get_mut(&id) else { continue };
                    let resp = match (conn.session, req) {
                        (None, Request::Connect { client }) => {
                            let (sid, resp) = service.connect(&client);
                            conn.session = Some(sid);
                            resp
                        }
                        (None, _) => Response::Error {
                            code: ErrorCode::NotConnected,
                            message: "the first request must be Connect".to_string(),
                        },
                        (Some(sid), req) => service.apply(sid, req),
                    };
                    // Direct responses block on the writer queue: a client
                    // that issued a request is reading its socket.
                    let mut buf = Vec::new();
                    resp.encode(&mut buf);
                    conn.writer.send(frame(&buf)).ok();
                }
                ConnEvent::Malformed(id, message) => {
                    if let Some(conn) = conns.get(&id) {
                        let mut buf = Vec::new();
                        Response::Error { code: ErrorCode::BadRequest, message }.encode(&mut buf);
                        conn.writer.send(frame(&buf)).ok();
                    }
                }
                ConnEvent::Closed(id) => {
                    if let Some(conn) = conns.remove(&id) {
                        if let Some(sid) = conn.session {
                            service.disconnect(sid);
                        }
                    }
                }
            }
        }

        // 3. Tick: advance simulated time, push deltas outward.
        let now = Instant::now();
        if now >= next_tick {
            service.advance(config.step);
            while now >= next_tick {
                next_tick += config.tick;
            }
        }
        for conn in conns.values_mut() {
            let Some(sid) = conn.session else { continue };
            if let Some(parked) = conn.parked.take() {
                match conn.writer.try_send(parked) {
                    Ok(()) => {}
                    Err(TrySendError::Full(parked)) => {
                        conn.parked = Some(parked);
                        continue;
                    }
                    Err(TrySendError::Disconnected(_)) => continue,
                }
            }
            'drain: while service.outbox_len(sid) > 0 {
                for resp in service.drain_outbox(sid, 1) {
                    let mut buf = Vec::new();
                    resp.encode(&mut buf);
                    match conn.writer.try_send(frame(&buf)) {
                        Ok(()) => {}
                        Err(TrySendError::Full(f)) => {
                            conn.parked = Some(f);
                            break 'drain;
                        }
                        Err(TrySendError::Disconnected(_)) => break 'drain,
                    }
                }
            }
        }

        if stop.load(Ordering::SeqCst) || service.shutdown_requested() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // Shut only the *read* half so blocked reader threads wake up; the
    // write half must stay open until the writer threads drain their
    // queues, or the final response (the `ShuttingDown` ack) is lost.
    for conn in conns.values() {
        conn.stream.shutdown(std::net::Shutdown::Read).ok();
    }
    drop(conns); // drops the writer senders: writers drain, flush, exit
    for t in writers {
        t.join().ok();
    }
    for t in readers {
        t.join().ok();
    }
}

fn spawn_reader(id: u64, mut stream: TcpStream, tx: mpsc::Sender<ConnEvent>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dr-service-read-{id}"))
        .spawn(move || {
            let mut fb = FrameBuf::new();
            let mut scratch = [0u8; 64 * 1024];
            loop {
                match stream.read(&mut scratch) {
                    Ok(0) | Err(_) => {
                        tx.send(ConnEvent::Closed(id)).ok();
                        return;
                    }
                    Ok(n) => fb.extend(&scratch[..n]),
                }
                loop {
                    match fb.next_frame() {
                        Ok(Some(payload)) => match Request::decode(&payload) {
                            Ok(req) => {
                                tx.send(ConnEvent::Request(id, req)).ok();
                            }
                            Err(e) => {
                                tx.send(ConnEvent::Malformed(
                                    id,
                                    format!("malformed request: {e}"),
                                ))
                                .ok();
                            }
                        },
                        Ok(None) => break,
                        Err(e) => {
                            // Unrecoverable framing state (oversized
                            // length): report and close.
                            tx.send(ConnEvent::Malformed(id, format!("malformed frame: {e}"))).ok();
                            tx.send(ConnEvent::Closed(id)).ok();
                            return;
                        }
                    }
                }
            }
        })
        .expect("spawn reader thread")
}

fn spawn_writer(id: u64, mut stream: TcpStream, rx: Receiver<Vec<u8>>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dr-service-write-{id}"))
        .spawn(move || {
            use std::io::Write;
            for frame in rx {
                if stream.write_all(&frame).is_err() {
                    return;
                }
            }
        })
        .expect("spawn writer thread")
}
