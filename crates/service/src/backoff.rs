//! Bounded exponential backoff for client (re)connection.
//!
//! A freshly launched `dr-load` often races the daemon it is pointed at —
//! the first dial lands before the listener is up and is refused. Instead
//! of failing the whole run on that first refusal, connection attempts
//! follow a deterministic [`Backoff`] schedule: the delay doubles after
//! every failed attempt, is capped at a ceiling, and the attempt budget is
//! bounded, so a server that never comes up still fails the client in
//! bounded time with the last error observed.
//!
//! The schedule is pure data ([`Backoff::delay_after`]) and the waiting is
//! injected into [`Backoff::retry`], so tests assert the exact schedule
//! without sleeping.

use std::time::Duration;

/// A bounded exponential backoff schedule.
///
/// Attempt `n` (0-based) is followed, when it fails and budget remains, by
/// a wait of `base * 2^n` capped at `cap`. At most `max_attempts` attempts
/// are made in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay after the first failed attempt; doubles each further failure.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Total attempts (at least 1) before giving up.
    pub max_attempts: u32,
}

impl Default for Backoff {
    /// 200 ms doubling to a 5 s cap over 8 attempts — a touch over 15 s of
    /// total patience, enough to cover a daemon still binding its listener
    /// without masking a server that is genuinely absent.
    fn default() -> Backoff {
        Backoff { base: Duration::from_millis(200), cap: Duration::from_secs(5), max_attempts: 8 }
    }
}

impl Backoff {
    /// The wait after failed attempt `attempt` (0-based), or `None` when
    /// the attempt budget is spent and the caller must give up.
    pub fn delay_after(&self, attempt: u32) -> Option<Duration> {
        if attempt.saturating_add(1) >= self.max_attempts {
            return None;
        }
        let factor = 2u32.checked_pow(attempt).unwrap_or(u32::MAX);
        Some(self.base.saturating_mul(factor).min(self.cap))
    }

    /// The full sequence of waits between attempts (`max_attempts - 1`
    /// entries).
    pub fn schedule(&self) -> Vec<Duration> {
        (0..self.max_attempts.saturating_sub(1)).filter_map(|n| self.delay_after(n)).collect()
    }

    /// Run `op` until it succeeds or the attempt budget is spent, calling
    /// `sleep` with each scheduled delay between attempts. Returns the
    /// error of the final attempt when every attempt failed.
    ///
    /// `sleep` is injected rather than hard-coded so deterministic tests
    /// (and simulated clocks) can record or skip the waits.
    pub fn retry<R, E>(
        &self,
        mut op: impl FnMut() -> Result<R, E>,
        mut sleep: impl FnMut(Duration),
    ) -> Result<R, E> {
        let mut attempt = 0;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) => match self.delay_after(attempt) {
                    Some(delay) => sleep(delay),
                    None => return Err(e),
                },
            }
            attempt += 1;
        }
    }

    /// [`Backoff::retry`] with real waiting (`std::thread::sleep`).
    pub fn retry_blocking<R, E>(&self, op: impl FnMut() -> Result<R, E>) -> Result<R, E> {
        self.retry(op, std::thread::sleep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_doubles_and_caps() {
        let b = Backoff {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(800),
            max_attempts: 6,
        };
        let millis: Vec<u128> = b.schedule().iter().map(Duration::as_millis).collect();
        assert_eq!(millis, [100, 200, 400, 800, 800]);
    }

    #[test]
    fn default_schedule_is_bounded() {
        let b = Backoff::default();
        assert_eq!(b.schedule().len(), (b.max_attempts - 1) as usize);
        assert!(b.schedule().iter().all(|d| *d <= b.cap));
        // Monotone non-decreasing up to the cap.
        assert!(b.schedule().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn single_attempt_never_sleeps() {
        let b = Backoff { max_attempts: 1, ..Backoff::default() };
        assert_eq!(b.delay_after(0), None);
        let mut slept = Vec::new();
        let r: Result<(), &str> = b.retry(|| Err("refused"), |d| slept.push(d));
        assert_eq!(r, Err("refused"));
        assert!(slept.is_empty());
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let b = Backoff {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(800),
            max_attempts: 6,
        };
        let mut failures_left = 3;
        let mut slept = Vec::new();
        let r = b.retry(
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err("refused")
                } else {
                    Ok("connected")
                }
            },
            |d| slept.push(d.as_millis()),
        );
        assert_eq!(r, Ok("connected"));
        // Exactly the first three waits of the schedule, in order.
        assert_eq!(slept, [100, 200, 400]);
    }

    #[test]
    fn retry_exhausts_budget_with_last_error() {
        let b = Backoff {
            base: Duration::from_millis(50),
            cap: Duration::from_millis(100),
            max_attempts: 4,
        };
        let mut attempt = 0;
        let mut slept = Vec::new();
        let r: Result<(), String> = b.retry(
            || {
                attempt += 1;
                Err(format!("refused #{attempt}"))
            },
            |d| slept.push(d.as_millis()),
        );
        assert_eq!(attempt, 4);
        assert_eq!(r, Err("refused #4".to_string()));
        assert_eq!(slept, [50, 100, 100]);
    }
}
