//! Deterministic load generation against a running service.
//!
//! The driver behind `dr-load` and the `sustained_churn_qps` benchmark:
//! it opens N sessions over any [`Transport`], holds each at a target
//! number of live queries by continually issuing and tearing down, mixes
//! in link-metric fact updates, subscribes one stream per session, and
//! advances simulated time between rounds. Everything is seeded, so the
//! same options produce the same request sequence on every run.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dr_netsim::EventSource;
use dr_workloads::ChurnSchedule;

use crate::client::{Client, ClientError};
use crate::protocol::{IssueOptions, Response, WireTuple, WireValue};
use crate::service::{default_topology, ServiceConfig};
use crate::transport::{InProcHub, Transport, TransportError};
use crate::BEST_PATH_PROGRAM;

/// Knobs of one load run.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Rounds of work; each round does one operation per session and then
    /// advances simulated time.
    pub rounds: usize,
    /// Live queries each session tries to hold (issue up to the target,
    /// then alternate teardown/issue/inject).
    pub queries_per_session: usize,
    /// Simulated milliseconds advanced per round.
    pub step_millis: u64,
    /// Seed of the operation mix.
    pub seed: u64,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions { sessions: 8, rounds: 24, queries_per_session: 2, step_millis: 400, seed: 7 }
    }
}

/// What a load run did and observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Queries issued.
    pub issued: u64,
    /// Queries torn down.
    pub torn_down: u64,
    /// Facts injected.
    pub facts_injected: u64,
    /// Delta pushes received across all subscriptions.
    pub deltas: u64,
    /// Lagged notices received.
    pub lagged: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Simulated time covered, in ms.
    pub sim_millis: u64,
}

impl LoadReport {
    /// Query lifecycle operations (issue + teardown) per wall-clock second.
    pub fn queries_per_sec(&self) -> f64 {
        let ops = (self.issued + self.torn_down) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            ops / secs
        } else {
            0.0
        }
    }

    /// Human-readable summary lines (printed by `dr-load`).
    pub fn summary_lines(&self) -> Vec<String> {
        vec![
            format!(
                "issued {} torn_down {} facts {} deltas {} lagged {}",
                self.issued, self.torn_down, self.facts_injected, self.deltas, self.lagged
            ),
            format!(
                "elapsed {:.3}s sim {}ms sustained {:.1} queries/sec",
                self.elapsed.as_secs_f64(),
                self.sim_millis,
                self.queries_per_sec()
            ),
        ]
    }
}

/// Run the load mix over transports produced by `connect` (index = session
/// number). The first session doubles as the clock driver.
pub fn run<T, F>(opts: &LoadOptions, mut connect: F) -> Result<LoadReport, ClientError>
where
    T: Transport,
    F: FnMut(usize) -> Result<T, TransportError>,
{
    assert!(opts.sessions > 0, "load needs at least one session");
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut report = LoadReport::default();

    let mut clients: Vec<Client<T>> = Vec::with_capacity(opts.sessions);
    for i in 0..opts.sessions {
        clients.push(Client::connect(connect(i)?, &format!("load-{i}"))?);
    }
    let mut live: Vec<Vec<u64>> = vec![Vec::new(); opts.sessions];
    let mut subscribed: Vec<bool> = vec![false; opts.sessions];

    for _round in 0..opts.rounds {
        for (i, client) in clients.iter_mut().enumerate() {
            if live[i].len() < opts.queries_per_session {
                let qid = client.issue(BEST_PATH_PROGRAM, IssueOptions::default())?;
                live[i].push(qid);
                report.issued += 1;
                if !subscribed[i] {
                    client.subscribe(qid)?;
                    subscribed[i] = true;
                }
                continue;
            }
            match rng.gen_range(0..3u32) {
                0 => {
                    let qid = live[i].remove(0);
                    client.teardown(qid)?;
                    report.torn_down += 1;
                }
                1 => {
                    // Perturb the ring link 0→1 through the oldest live
                    // query's dataflow; costs alternate so routes actually
                    // move.
                    let qid = live[i][0];
                    let cost = if rng.gen_bool(0.5) { 4.0 } else { 1.0 };
                    let fact = WireTuple {
                        relation: "link".to_string(),
                        values: vec![WireValue::Node(0), WireValue::Node(1), WireValue::Cost(cost)],
                    };
                    report.facts_injected += u64::from(client.inject_facts(qid, 0, vec![fact])?);
                }
                _ => {
                    let qid = live[i].remove(0);
                    client.teardown(qid)?;
                    report.torn_down += 1;
                    let fresh = client.issue(BEST_PATH_PROGRAM, IssueOptions::default())?;
                    live[i].push(fresh);
                    report.issued += 1;
                }
            }
        }
        clients[0].advance(opts.step_millis)?;
        report.sim_millis += opts.step_millis;
        for client in clients.iter_mut() {
            for push in client.poll_pushed()? {
                match push {
                    Response::Delta { .. } => report.deltas += 1,
                    Response::Lagged { .. } => report.lagged += 1,
                    _ => {}
                }
            }
        }
    }

    // Drain the deployment: tear everything down and let the floods settle
    // so a post-run Stats snapshot shows an empty footprint.
    for (i, client) in clients.iter_mut().enumerate() {
        for qid in live[i].drain(..) {
            client.teardown(qid)?;
            report.torn_down += 1;
        }
    }
    clients[0].advance(opts.step_millis.max(1) * 20)?;
    report.sim_millis += opts.step_millis.max(1) * 20;
    for client in clients.iter_mut() {
        client.poll_pushed().ok();
    }

    report.elapsed = started.elapsed();
    Ok(report)
}

/// Issue a provenance-recording Best-Path query through `client`, wait for
/// a finite route to stream back, and ask the server to `Explain` it —
/// the end-to-end smoke of the provenance subsystem (`dr-load --explain`,
/// exercised by CI). Returns printable summary lines; the query is torn
/// down before returning.
pub fn explain_probe<T: Transport>(client: &mut Client<T>) -> Result<Vec<String>, ClientError> {
    use crate::protocol::tree_from_flat;
    let options = IssueOptions {
        name: "explain-probe".to_string(),
        record_provenance: true,
        ..IssueOptions::default()
    };
    let qid = client.issue(BEST_PATH_PROGRAM, options)?;
    client.subscribe(qid)?;
    let mut route: Option<WireTuple> = None;
    for _ in 0..50 {
        client.advance(400)?;
        for push in client.poll_pushed()? {
            if let Response::Delta { added, .. } = push {
                if route.is_none() {
                    route = added.into_iter().find(|t| {
                        t.values.iter().any(|v| matches!(v, WireValue::Cost(c) if c.is_finite()))
                    });
                }
            }
        }
        if route.is_some() {
            break;
        }
    }
    let Some(route) = route else {
        client.teardown(qid)?;
        return Err(ClientError::Unexpected("no finite route appeared to explain".to_string()));
    };
    let nodes = client.explain(qid, route)?;
    let tree = tree_from_flat(&nodes)
        .ok_or_else(|| ClientError::Unexpected("malformed explanation tree".to_string()))?;
    let steps = tree.steps();
    let mut rules: Vec<&str> = steps.iter().map(|s| s.rule.as_str()).collect();
    rules.dedup();
    let lines = vec![format!(
        "explain qid {qid}: proof has {} steps, depth {}, fully_resolved {}, rules [{}]",
        steps.len(),
        tree.depth(),
        tree.is_fully_resolved(),
        rules.join(" "),
    )];
    client.teardown(qid)?;
    Ok(lines)
}

/// Run the load mix against a fresh in-process service over an `nodes`-node
/// topology, optionally under a churn schedule (failed nodes exclude node
/// 0, which issues the queries). This is the benchmark entry point: fully
/// deterministic, no sockets, no threads.
pub fn run_inproc(nodes: usize, opts: &LoadOptions, churn: Option<&ChurnSchedule>) -> LoadReport {
    let hub = InProcHub::new(default_topology(nodes), ServiceConfig::default());
    if let Some(schedule) = churn {
        hub.with_service(|svc| {
            let topology = svc.harness().sim().topology().clone();
            for event in schedule.events_for(&topology) {
                event.schedule(svc.harness_mut().sim_mut());
            }
        });
    }
    run(opts, |_| Ok(hub.connect())).expect("in-process load run failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_netsim::{SimDuration, SimTime};

    #[test]
    fn explain_probe_reports_a_resolved_proof() {
        let hub = InProcHub::new(default_topology(8), ServiceConfig::default());
        let mut client = Client::connect(hub.connect(), "probe").expect("connect");
        let lines = explain_probe(&mut client).expect("probe succeeds");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("explain qid "), "got {:?}", lines[0]);
        assert!(lines[0].contains("fully_resolved true"), "got {:?}", lines[0]);
    }

    #[test]
    fn inproc_load_is_deterministic_and_unwinds() {
        let opts = LoadOptions { sessions: 4, rounds: 8, ..LoadOptions::default() };
        let churn = ChurnSchedule::alternating(
            12,
            0.25,
            SimTime::from_millis(500),
            SimDuration::from_millis(1_500),
            2,
            11,
        );
        let a = run_inproc(12, &opts, Some(&churn));
        let b = run_inproc(12, &opts, Some(&churn));
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.torn_down, b.torn_down);
        assert_eq!(a.facts_injected, b.facts_injected);
        assert_eq!(a.deltas, b.deltas);
        assert!(a.issued >= 8, "every session should have issued at least once");
        assert_eq!(a.issued, a.torn_down, "the final drain should retire every query");
    }
}
